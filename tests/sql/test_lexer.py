"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql.errors import SqlError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]  # drop EOF


class TestTokenize:
    def test_keywords_normalized(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        assert values("PartSupp ps") == ["PartSupp", "ps"]
        assert tokenize("PartSupp")[0].kind == "NAME"

    def test_qualified_name_is_one_token(self):
        tokens = tokenize("S.suppkey")
        assert tokens[0] == Token("NAME", "S.suppkey", 0)

    def test_keyword_like_qualified_name_stays_name(self):
        # "min.x" is a qualified name, not the MIN keyword.
        assert tokenize("min.x")[0].kind == "NAME"
        assert tokenize("min")[0].kind == "KEYWORD"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("NUMBER", "42"),
            ("NUMBER", "3.14"),
        ]

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'MIDDLE EAST' 'it''s'")
        assert tokens[0].value == "'MIDDLE EAST'"
        assert tokens[1].value == "'it''s'"

    def test_operators(self):
        assert values("= != <> < <= > >= + - /") == [
            "=", "!=", "<>", "<", "<=", ">", ">=", "+", "-", "/",
        ]

    def test_punctuation(self):
        assert kinds("(*, )")[:-1] == ["LPAREN", "STAR", "COMMA", "RPAREN"]

    def test_comments_skipped(self):
        assert values("a -- comment here\n b") == ["a", "b"]

    def test_positions_tracked(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_junk_rejected_with_position(self):
        with pytest.raises(SqlError) as excinfo:
            tokenize("a ; b")
        assert "';'" in str(excinfo.value)
        assert excinfo.value.position == 2

    def test_is_keyword_helper(self):
        token = tokenize("AND")[0]
        assert token.is_keyword("AND", "OR")
        assert not token.is_keyword("OR")
        assert not tokenize("x")[0].is_keyword("AND")
