"""Tests for SQL -> QuerySpec translation, including end-to-end execution."""

import pytest

from repro.sql import parse_query
from repro.sql.errors import SqlError
from tests.conftest import make_tpcr_db

PAPER_SQL = """
    SELECT MIN(PS.supplycost)
    FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
    WHERE S.suppkey = PS.suppkey
      AND S.nationkey = N.nationkey
      AND N.regionkey = R.regionkey
      AND R.name = 'MIDDLE EAST'
"""


class TestTranslation:
    def test_paper_query_structure(self):
        spec = parse_query(PAPER_SQL)
        assert spec.base_alias == "PS"
        assert spec.base_table == "partsupp"
        assert [j.alias for j in spec.joins] == ["S", "N", "R"]
        assert len(spec.filters) == 1
        assert spec.aggregate.func == "min"

    def test_join_direction_normalized(self):
        # "S.suppkey = PS.suppkey" with PS first: the join chain starts
        # from PS regardless of which side the predicate wrote first.
        spec = parse_query(
            "SELECT * FROM partsupp PS, supplier S "
            "WHERE S.suppkey = PS.suppkey"
        )
        join = spec.joins[0]
        assert join.alias == "S"
        assert join.left_column == "PS.suppkey"
        assert join.right_column == "suppkey"

    def test_single_table(self):
        spec = parse_query("SELECT * FROM region WHERE region.name = 'ASIA'")
        assert spec.joins == ()
        assert len(spec.filters) == 1

    def test_projection_passthrough(self):
        spec = parse_query(
            "SELECT PS.partkey, S.name FROM partsupp PS, supplier S "
            "WHERE PS.suppkey = S.suppkey"
        )
        assert spec.projection == ("PS.partkey", "S.name")

    def test_group_by(self):
        spec = parse_query(
            "SELECT COUNT(S.suppkey) FROM supplier S, nation N "
            "WHERE S.nationkey = N.nationkey GROUP BY N.name"
        )
        assert spec.aggregate.group_by == ("N.name",)

    def test_self_comparison_stays_filter(self):
        spec = parse_query(
            "SELECT * FROM partsupp PS, supplier S "
            "WHERE PS.suppkey = S.suppkey AND PS.partkey = PS.suppkey"
        )
        assert len(spec.joins) == 1
        assert len(spec.filters) == 1

    def test_or_of_equalities_stays_filter(self):
        spec = parse_query(
            "SELECT * FROM partsupp PS, supplier S "
            "WHERE PS.suppkey = S.suppkey "
            "AND (PS.availqty = 1 OR PS.availqty = 2)"
        )
        assert len(spec.joins) == 1
        assert len(spec.filters) == 1

    def test_disconnected_join_graph_rejected(self):
        with pytest.raises(SqlError, match="disconnected"):
            parse_query("SELECT * FROM partsupp PS, supplier S")

    def test_unknown_alias_in_filter_rejected(self):
        with pytest.raises(SqlError, match="unknown alias"):
            parse_query("SELECT * FROM region WHERE Z.name = 'ASIA'")


class TestEndToEnd:
    def test_paper_query_executes(self):
        db = make_tpcr_db()
        spec = parse_query(PAPER_SQL)
        value = db.execute(spec).scalar()
        # Must equal the hand-built spec's answer.
        from tests.conftest import make_paper_spec

        assert value == db.execute(make_paper_spec()).scalar()

    def test_filters_and_arithmetic(self):
        db = make_tpcr_db()
        spec = parse_query(
            "SELECT COUNT(*) FROM partsupp PS WHERE PS.supplycost * 2 > 1000"
        )
        count = db.execute(spec).scalar()
        brute = sum(
            1
            for row in db.table("partsupp").live_rows()
            if row[3] * 2 > 1000
        )
        assert count == brute

    def test_grouped_query_executes(self):
        db = make_tpcr_db()
        spec = parse_query(
            "SELECT COUNT(S.suppkey) FROM supplier S, nation N, region R "
            "WHERE S.nationkey = N.nationkey AND N.regionkey = R.regionkey "
            "GROUP BY R.name"
        )
        rows = db.execute(spec).rows
        total = sum(count for __, count in rows)
        assert total == db.table("supplier").live_count

    def test_sql_defined_materialized_view(self):
        """SQL all the way into the IVM stack."""
        from repro.ivm import MaterializedView, apply_batch
        from repro.tpcr.updates import SupplierNationUpdater

        db = make_tpcr_db()
        view = MaterializedView("v", db, parse_query(PAPER_SQL))
        updater = SupplierNationUpdater(db.table("supplier"), seed=5)
        updater.apply(10)
        view.deltas["S"].pull()
        apply_batch(view, "S", 10)
        assert view.contents() == view.recompute()
