"""Unit tests for the SQL parser."""

import pytest

from repro.engine.expr import BinOp, BoolOp, ColumnRef, Comparison, Const, Not
from repro.sql.errors import SqlError
from repro.sql.parser import parse_select


class TestSelectList:
    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.projection is None
        assert stmt.aggregate is None

    def test_column_list(self):
        stmt = parse_select("SELECT a.x, a.y FROM t a")
        assert stmt.projection == ["a.x", "a.y"]

    def test_aggregate(self):
        stmt = parse_select("SELECT MIN(a.x) FROM t a")
        assert stmt.aggregate.func == "min"
        assert isinstance(stmt.aggregate.value, ColumnRef)

    def test_aggregate_over_expression(self):
        stmt = parse_select("SELECT SUM(h.shares * p.price) FROM h, p")
        assert isinstance(stmt.aggregate.value, BinOp)
        assert stmt.aggregate.value.op == "*"

    def test_count_star(self):
        stmt = parse_select("SELECT COUNT(*) FROM t")
        assert stmt.aggregate.func == "count"
        assert isinstance(stmt.aggregate.value, Const)

    def test_min_star_rejected(self):
        with pytest.raises(SqlError, match=r"MIN\(\*\)"):
            parse_select("SELECT MIN(*) FROM t")


class TestFromClause:
    def test_implicit_alias(self):
        stmt = parse_select("SELECT * FROM partsupp")
        assert stmt.tables == [("partsupp", "partsupp")]

    def test_as_alias(self):
        stmt = parse_select("SELECT * FROM partsupp AS PS")
        assert stmt.tables == [("partsupp", "PS")]

    def test_bare_alias(self):
        stmt = parse_select("SELECT * FROM partsupp PS, supplier S")
        assert stmt.tables == [("partsupp", "PS"), ("supplier", "S")]

    def test_duplicate_alias_rejected(self):
        with pytest.raises(SqlError, match="duplicate table alias"):
            parse_select("SELECT * FROM t a, u a")

    def test_qualified_table_name_rejected(self):
        with pytest.raises(SqlError, match="cannot be qualified"):
            parse_select("SELECT * FROM db.t")


class TestWhereClause:
    def test_simple_comparison(self):
        stmt = parse_select("SELECT * FROM t WHERE t.x = 5")
        assert isinstance(stmt.where, Comparison)
        assert stmt.where.op == "="

    def test_diamond_normalized_to_neq(self):
        stmt = parse_select("SELECT * FROM t WHERE t.x <> 5")
        assert stmt.where.op == "!="

    def test_and_or_precedence(self):
        stmt = parse_select(
            "SELECT * FROM t WHERE t.a = 1 OR t.b = 2 AND t.c = 3"
        )
        # OR binds looser than AND.
        assert isinstance(stmt.where, BoolOp)
        assert stmt.where.op == "or"
        assert isinstance(stmt.where.operands[1], BoolOp)
        assert stmt.where.operands[1].op == "and"

    def test_parentheses_override(self):
        stmt = parse_select(
            "SELECT * FROM t WHERE (t.a = 1 OR t.b = 2) AND t.c = 3"
        )
        assert stmt.where.op == "and"

    def test_not(self):
        stmt = parse_select("SELECT * FROM t WHERE NOT t.a = 1")
        assert isinstance(stmt.where, Not)

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT * FROM t WHERE t.a + t.b * 2 > 10")
        comparison = stmt.where
        assert comparison.op == ">"
        add = comparison.left
        assert isinstance(add, BinOp) and add.op == "+"
        assert isinstance(add.right, BinOp) and add.right.op == "*"

    def test_string_literal_unescaped(self):
        stmt = parse_select("SELECT * FROM t WHERE t.name = 'it''s'")
        assert stmt.where.right.value == "it's"

    def test_numeric_literals_typed(self):
        stmt = parse_select("SELECT * FROM t WHERE t.a = 5 AND t.b = 5.5")
        first, second = stmt.where.operands
        assert first.right.value == 5 and isinstance(first.right.value, int)
        assert second.right.value == 5.5


class TestGroupBy:
    def test_group_by(self):
        stmt = parse_select(
            "SELECT SUM(t.x) FROM t GROUP BY t.g, t.h"
        )
        assert stmt.group_by == ["t.g", "t.h"]

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(SqlError, match="requires an aggregate"):
            parse_select("SELECT t.x FROM t GROUP BY t.g")


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlError, match="expected FROM"):
            parse_select("SELECT *")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError, match="expected EOF"):
            parse_select("SELECT * FROM t extra nonsense")

    def test_unclosed_paren(self):
        with pytest.raises(SqlError, match="expected RPAREN"):
            parse_select("SELECT * FROM t WHERE (t.a = 1")

    def test_missing_expression(self):
        with pytest.raises(SqlError, match="expected an expression"):
            parse_select("SELECT * FROM t WHERE t.a =")

    def test_error_renders_caret(self):
        with pytest.raises(SqlError) as excinfo:
            parse_select("SELECT * FROM t WHERE t.a = ,")
        assert "^" in str(excinfo.value)
