"""SQL ORDER BY / LIMIT parsing and execution."""

import pytest

from repro.sql import parse_query, parse_select
from repro.sql.errors import SqlError
from tests.conftest import make_tpcr_db


class TestParsing:
    def test_order_by_defaults_ascending(self):
        stmt = parse_select("SELECT * FROM t ORDER BY t.a")
        assert stmt.order_by == [("t.a", False)]

    def test_order_by_directions(self):
        stmt = parse_select(
            "SELECT * FROM t ORDER BY t.a DESC, t.b ASC, t.c"
        )
        assert stmt.order_by == [("t.a", True), ("t.b", False), ("t.c", False)]

    def test_limit(self):
        stmt = parse_select("SELECT * FROM t LIMIT 10")
        assert stmt.limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlError, match="integer"):
            parse_select("SELECT * FROM t LIMIT 1.5")

    def test_clause_order_enforced(self):
        with pytest.raises(SqlError):
            parse_select("SELECT * FROM t LIMIT 5 ORDER BY t.a")


class TestDistinct:
    def test_parse_flag(self):
        assert parse_select("SELECT DISTINCT t.a FROM t").distinct
        assert not parse_select("SELECT t.a FROM t").distinct

    def test_distinct_with_aggregate_rejected(self):
        with pytest.raises(SqlError, match="DISTINCT"):
            parse_select("SELECT DISTINCT MIN(t.a) FROM t")

    def test_execution_deduplicates(self):
        db = make_tpcr_db()
        spec = parse_query("SELECT DISTINCT S.nationkey FROM supplier S")
        rows = db.execute(spec).rows
        assert len(rows) == len(set(rows))
        plain = db.execute(parse_query("SELECT S.nationkey FROM supplier S"))
        assert set(rows) == set(plain.rows)
        assert len(plain.rows) > len(rows)  # suppliers share nations


class TestExecution:
    def test_top_k_query(self):
        db = make_tpcr_db()
        spec = parse_query(
            "SELECT PS.partkey, PS.supplycost FROM partsupp PS "
            "ORDER BY PS.supplycost DESC LIMIT 5"
        )
        rows = db.execute(spec).rows
        assert len(rows) == 5
        costs = [c for __, c in rows]
        assert costs == sorted(costs, reverse=True)
        top = max(row[3] for row in db.table("partsupp").live_rows())
        assert costs[0] == top

    def test_grouped_ordered(self):
        db = make_tpcr_db()
        spec = parse_query(
            "SELECT COUNT(S.suppkey) FROM supplier S, nation N "
            "WHERE S.nationkey = N.nationkey "
            "GROUP BY N.name ORDER BY count DESC LIMIT 3"
        )
        rows = db.execute(spec).rows
        counts = [c for __, c in rows]
        assert counts == sorted(counts, reverse=True)
        assert len(rows) <= 3
