"""SQL rendering and parse/render round-trip property tests."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.query import (
    AggregateSpec,
    JoinSpec,
    OrderSpec,
    QuerySpec,
)
from repro.engine.types import ColumnType, Schema
from repro.sql import parse_query, render_query
from repro.sql.render import render_expression, render_literal
from tests.conftest import make_tpcr_db


class TestRenderLiteral:
    def test_strings_escaped(self):
        assert render_literal("it's") == "'it''s'"

    def test_numbers(self):
        assert render_literal(5) == "5"
        assert render_literal(2.5) == "2.5"

    def test_negative_via_subtraction(self):
        assert render_literal(-3) == "(0 - 3)"

    def test_unrenderable(self):
        with pytest.raises(TypeError):
            render_literal(None)
        with pytest.raises(TypeError):
            render_literal(True)
        with pytest.raises(TypeError):
            render_literal(float("nan"))


class TestRenderExpression:
    def test_nested(self):
        expr = (col("t.a") + lit(1)) * lit(2) > col("t.b")
        text = render_expression(expr)
        assert text == "(((t.a + 1) * 2) > t.b)"


class TestRenderQuery:
    def test_paper_query_roundtrip(self):
        sql = """
            SELECT MIN(PS.supplycost)
            FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
            WHERE S.suppkey = PS.suppkey AND S.nationkey = N.nationkey
              AND N.regionkey = R.regionkey AND R.name = 'MIDDLE EAST'
        """
        spec = parse_query(sql)
        reparsed = parse_query(render_query(spec))
        db = make_tpcr_db()
        assert db.execute(spec).scalar() == db.execute(reparsed).scalar()

    def test_all_clauses_roundtrip(self):
        spec = QuerySpec(
            base_alias="S",
            base_table="supplier",
            joins=(JoinSpec("N", "nation", "S.nationkey", "nationkey"),),
            filters=(col("S.acctbal") > lit(0.0),),
            projection=("S.name", "N.name"),
            order_by=(OrderSpec("S.name", descending=True),),
            limit=5,
            distinct=True,
        )
        text = render_query(spec)
        assert "DISTINCT" in text and "ORDER BY" in text and "LIMIT 5" in text
        reparsed = parse_query(text)
        db = make_tpcr_db()
        assert db.execute(spec).rows == db.execute(reparsed).rows

    def test_grouped_aggregate_roundtrip(self):
        spec = QuerySpec(
            base_alias="S",
            base_table="supplier",
            joins=(JoinSpec("N", "nation", "S.nationkey", "nationkey"),),
            aggregate=AggregateSpec(
                func="count", value=col("S.suppkey"), group_by=("N.name",)
            ),
        )
        reparsed = parse_query(render_query(spec))
        db = make_tpcr_db()
        assert sorted(db.execute(spec).rows) == sorted(
            db.execute(reparsed).rows
        )


# ----------------------------------------------------------------------
# Property: parse(render(spec)) executes identically to spec
# ----------------------------------------------------------------------

_COLUMNS = ("R.k", "R.a", "S.k", "S.b")


@st.composite
def random_specs(draw):
    filters = []
    for __ in range(draw(st.integers(0, 2))):
        left = col(draw(st.sampled_from(_COLUMNS)))
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        right = lit(draw(st.integers(-3, 3)))
        from repro.engine.expr import Comparison

        filters.append(Comparison(op, left, right))
    use_aggregate = draw(st.booleans())
    aggregate = None
    projection = None
    distinct = False
    order_by = ()
    if use_aggregate:
        aggregate = AggregateSpec(
            func=draw(st.sampled_from(["min", "max", "sum", "count"])),
            value=col(draw(st.sampled_from(_COLUMNS))),
        )
    else:
        columns = draw(
            st.lists(
                st.sampled_from(_COLUMNS), min_size=1, max_size=3,
                unique=True,
            )
        )
        projection = tuple(columns)
        distinct = draw(st.booleans())
        if draw(st.booleans()):
            order_by = (
                OrderSpec(
                    column=draw(st.sampled_from(columns)),
                    descending=draw(st.booleans()),
                ),
            )
    return QuerySpec(
        base_alias="R",
        base_table="r",
        joins=(JoinSpec("S", "s", "R.k", "k"),),
        filters=tuple(filters),
        projection=projection,
        aggregate=aggregate,
        order_by=order_by,
        limit=draw(st.one_of(st.none(), st.integers(0, 10))),
        distinct=distinct,
    )


@given(
    spec=random_specs(),
    r=st.lists(
        st.tuples(st.integers(0, 3), st.integers(-3, 3)), max_size=8
    ),
    s=st.lists(
        st.tuples(st.integers(0, 3), st.integers(-3, 3)), max_size=6
    ),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_execution_equivalence(spec, r, s):
    db = Database()
    table_r = db.create_table("r", Schema.of(k=ColumnType.INT, a=ColumnType.INT))
    table_s = db.create_table("s", Schema.of(k=ColumnType.INT, b=ColumnType.INT))
    for row in r:
        table_r.insert(row)
    for row in s:
        table_s.insert(row)
    reparsed = parse_query(render_query(spec))
    original = db.execute(spec)
    roundtripped = db.execute(reparsed)
    if spec.order_by or spec.limit is not None:
        assert original.rows == roundtripped.rows
    else:
        assert sorted(original.rows, key=repr) == sorted(
            roundtripped.rows, key=repr
        )
