"""Unit tests for the cost-function model (Section 2 assumptions)."""

import math

import pytest

from repro.core.costfuncs import (
    BlockIOCost,
    ConcaveCost,
    LinearCost,
    PiecewiseLinearCost,
    StepCost,
    TabulatedCost,
    check_cost_function,
    fit_linear,
    max_batch_under,
)


class TestLinearCost:
    def test_zero_batch_is_free(self):
        f = LinearCost(slope=2.0, setup=3.0)
        assert f(0) == 0.0

    def test_affine_form(self):
        f = LinearCost(slope=2.0, setup=3.0)
        assert f(1) == 5.0
        assert f(10) == 23.0

    def test_setup_cost_property(self):
        assert LinearCost(slope=1.0, setup=7.0).setup_cost == 7.0
        assert LinearCost(slope=1.0).setup_cost == 0.0

    def test_monotone_and_subadditive(self):
        check_cost_function(LinearCost(slope=0.5, setup=2.0))

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(slope=1.0)(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(slope=-1.0)
        with pytest.raises(ValueError):
            LinearCost(slope=1.0, setup=-0.5)
        with pytest.raises(ValueError):
            LinearCost(slope=0.0, setup=0.0)

    def test_batch_limit_analytic(self):
        f = LinearCost(slope=2.0, setup=3.0)
        # f(k) <= 13 <=> k <= 5
        assert f.batch_limit(13.0) == 5
        assert f.batch_limit(12.99) == 4
        assert f.batch_limit(4.9) == 0  # even f(1) = 5 > 4.9

    def test_batch_limit_zero_slope(self):
        f = LinearCost(slope=0.0, setup=3.0)
        assert f.batch_limit(10.0, hi=100) == 100

    def test_equality_and_hash(self):
        assert LinearCost(1.0, 2.0) == LinearCost(1.0, 2.0)
        assert LinearCost(1.0, 2.0) != LinearCost(1.0, 3.0)
        assert hash(LinearCost(1.0, 2.0)) == hash(LinearCost(1.0, 2.0))


class TestConcaveCost:
    def test_form(self):
        f = ConcaveCost(coeff=3.0, exponent=0.5)
        assert f(4) == pytest.approx(6.0)

    def test_monotone_and_subadditive(self):
        check_cost_function(ConcaveCost(coeff=2.0, exponent=0.7))

    def test_exponent_one_is_proportional(self):
        f = ConcaveCost(coeff=2.0, exponent=1.0)
        assert f(5) == pytest.approx(10.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConcaveCost(coeff=0.0)
        with pytest.raises(ValueError):
            ConcaveCost(coeff=1.0, exponent=1.5)


class TestBlockIOCost:
    def test_staircase(self):
        f = BlockIOCost(io_cost=10.0, block_size=4)
        assert f(1) == 10.0
        assert f(4) == 10.0
        assert f(5) == 20.0

    def test_subadditive_but_not_concave(self):
        f = BlockIOCost(io_cost=10.0, block_size=4)
        check_cost_function(f)
        # Non-concavity: the jump at the block boundary.
        assert f(5) - f(4) > f(4) - f(3)

    def test_with_slope(self):
        f = BlockIOCost(io_cost=10.0, block_size=4, slope=1.0)
        assert f(3) == pytest.approx(13.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BlockIOCost(io_cost=0.0, block_size=4)
        with pytest.raises(ValueError):
            BlockIOCost(io_cost=1.0, block_size=0)


class TestStepCost:
    def test_paper_construction_values(self):
        # eps = 0.5, C = 10: knee at 4 modifications.
        f = StepCost(eps=0.5, limit=10.0)
        assert f(4) == pytest.approx(10.0)  # exactly C at the knee
        assert f(5) == pytest.approx(12.5)  # (1 + eps/2) * C beyond
        assert f(2) == pytest.approx(5.0)

    def test_monotone_and_subadditive(self):
        check_cost_function(StepCost(eps=0.5, limit=10.0), upto=30)

    def test_requires_integer_inverse_eps(self):
        with pytest.raises(ValueError):
            StepCost(eps=0.3, limit=10.0)


class TestPiecewiseLinearCost:
    def test_interpolation(self):
        f = PiecewiseLinearCost([(0, 0.0), (10, 20.0), (20, 25.0)])
        assert f(5) == pytest.approx(10.0)
        assert f(15) == pytest.approx(22.5)

    def test_extrapolation_uses_final_slope(self):
        f = PiecewiseLinearCost([(0, 0.0), (10, 20.0), (20, 25.0)])
        assert f(30) == pytest.approx(30.0)

    def test_concavity_enforced(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost([(0, 0.0), (10, 5.0), (20, 25.0)])

    def test_must_start_at_origin(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost([(1, 1.0), (10, 5.0)])

    def test_subadditive(self):
        f = PiecewiseLinearCost([(0, 0.0), (4, 12.0), (16, 20.0)])
        check_cost_function(f, upto=40)


class TestTabulatedCost:
    def test_replays_samples_exactly(self):
        f = TabulatedCost([(10, 5.0), (20, 8.0), (40, 12.0)])
        assert f(10) == pytest.approx(5.0)
        assert f(20) == pytest.approx(8.0)

    def test_interpolates_between_samples(self):
        f = TabulatedCost([(10, 5.0), (20, 8.0)])
        assert f(15) == pytest.approx(6.5)

    def test_extrapolates_tail_slope(self):
        f = TabulatedCost([(10, 5.0), (20, 8.0)])
        assert f(30) == pytest.approx(11.0)

    def test_monotone_repair_of_noisy_samples(self):
        f = TabulatedCost([(10, 5.0), (20, 4.0), (30, 9.0)])
        assert f(20) == pytest.approx(5.0)  # repaired upward
        assert f.is_monotone(30)

    def test_zero_is_free(self):
        f = TabulatedCost([(10, 5.0), (20, 8.0)])
        assert f(0) == 0.0

    def test_single_sample_extrapolates_proportionally(self):
        f = TabulatedCost([(10, 5.0)])
        assert f(20) == pytest.approx(10.0)

    def test_rejects_empty_or_negative(self):
        with pytest.raises(ValueError):
            TabulatedCost([])
        with pytest.raises(ValueError):
            TabulatedCost([(-1, 2.0)])
        with pytest.raises(ValueError):
            TabulatedCost([(5, -2.0)])


class TestFitLinear:
    def test_exact_fit_recovers_parameters(self):
        truth = LinearCost(slope=1.5, setup=4.0)
        samples = [(k, truth(k)) for k in (5, 10, 20, 40)]
        fit = fit_linear(samples)
        assert fit.slope == pytest.approx(1.5)
        assert fit.setup == pytest.approx(4.0)

    def test_negative_setup_clamped_via_origin_refit(self):
        # Convex-ish samples would fit a negative intercept.
        samples = [(1, 0.5), (10, 11.0), (20, 24.0)]
        fit = fit_linear(samples)
        assert fit.setup == 0.0
        assert fit.slope > 0

    def test_requires_two_nonzero_samples(self):
        with pytest.raises(ValueError):
            fit_linear([(0, 0.0), (5, 2.0)])

    def test_degenerate_same_batch_size(self):
        fit = fit_linear([(10, 5.0), (10, 7.0)])
        assert fit.setup == 0.0
        assert fit.slope > 0


class TestMaxBatchUnder:
    def test_matches_bruteforce_on_block_cost(self):
        f = BlockIOCost(io_cost=3.0, block_size=5, slope=0.25)
        for budget in (0.5, 3.0, 7.0, 20.0, 100.0):
            brute = 0
            k = 1
            while f(k) <= budget and k < 1000:
                brute = k
                k += 1
            assert max_batch_under(f, budget, hi=2048) == brute

    def test_zero_budget(self):
        assert max_batch_under(LinearCost(slope=1.0), 0.0) == 0

    def test_negative_budget(self):
        assert max_batch_under(LinearCost(slope=1.0), -1.0) == 0

    def test_hi_cap_respected(self):
        f = LinearCost(slope=0.0, setup=1.0)
        assert max_batch_under(f, 5.0, hi=64) == 64


class TestCheckCostFunction:
    def test_accepts_valid(self):
        check_cost_function(LinearCost(slope=1.0, setup=2.0))

    def test_rejects_superadditive(self):
        class Quadratic(LinearCost):
            def cost(self, k):
                return float(k * k)

        with pytest.raises(ValueError, match="not subadditive"):
            check_cost_function(Quadratic(slope=1.0))

    def test_rejects_nonmonotone(self):
        class Dipping(LinearCost):
            def cost(self, k):
                return 10.0 - k if k < 5 else float(k)

        with pytest.raises(ValueError, match="not monotone"):
            check_cost_function(Dipping(slope=1.0))
