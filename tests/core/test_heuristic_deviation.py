"""The documented A* heuristic deviation, demonstrated empirically.

DESIGN.md records that we replaced the paper's Lemma-7 heuristic

    h(x) = sum_i floor((s[i] + K_i) / b_i) * f_i(b_i)

with a per-modification-rate bound because the floor form is not
consistent.  These tests *show* that: the paper's formula, evaluated on
the LGM plan graph of a plain linear instance, violates
``h(x) <= f(q) + h(x')`` across batch-boundary edges, while the rate
bound never does.
"""

import random

import pytest

from repro.core import astar
from repro.core.astar import (
    _expand,
    check_heuristic_consistency,
    find_optimal_lgm_plan,
)
from repro.core.costfuncs import LinearCost
from repro.core.problem import ProblemInstance, zero_vector


def paper_heuristic(node, problem):
    """The paper's floor-based estimate (Lemma 7), verbatim."""
    t, state = node
    future = problem.future_arrivals(t)
    bounds = problem.batch_bounds()
    total = 0.0
    for i, f in enumerate(problem.cost_functions):
        remaining = state[i] + future[i]
        total += (remaining // bounds[i]) * f(bounds[i])
    return total


def violations_of(heuristic, problem, max_nodes=500):
    """Consistency violations of an arbitrary heuristic over the graph."""
    source = (-1, zero_vector(problem.n))
    seen = {source}
    frontier = [source]
    out = []
    while frontier and len(seen) < max_nodes:
        nxt = []
        for node in frontier:
            h_node = heuristic(node, problem)
            for successor, weight in _expand(node, problem):
                if h_node > weight + heuristic(successor, problem) + 1e-9:
                    out.append((node, successor))
                if successor not in seen:
                    seen.add(successor)
                    nxt.append(successor)
        frontier = nxt
    return out


@pytest.fixture
def boundary_instance():
    """A setup-heavy table whose backlog crosses multiples of b_i:
    the regime where the floor estimate drops discontinuously."""
    return ProblemInstance(
        [LinearCost(slope=1.0, setup=6.0), LinearCost(slope=2.0)],
        limit=20.0,
        arrivals=[(2, 1)] * 30,
    )


class TestPaperHeuristicInconsistency:
    def test_floor_form_violates_consistency(self, boundary_instance):
        assert violations_of(paper_heuristic, boundary_instance)

    def test_rate_form_is_consistent_on_same_instance(self, boundary_instance):
        assert check_heuristic_consistency(boundary_instance) == []

    def test_rate_form_consistent_on_random_boundary_instances(self):
        rng = random.Random(77)
        for __ in range(6):
            problem = ProblemInstance(
                [
                    LinearCost(rng.uniform(0.5, 2.0), rng.uniform(2.0, 10.0)),
                    LinearCost(rng.uniform(0.5, 3.0)),
                ],
                limit=rng.uniform(10.0, 30.0),
                arrivals=[
                    (rng.randint(0, 3), rng.randint(0, 2))
                    for __ in range(rng.randint(10, 30))
                ],
            )
            assert check_heuristic_consistency(problem) == []

    def test_astar_with_inconsistent_heuristic_can_be_suboptimal(
        self, boundary_instance, monkeypatch
    ):
        """With the paper's h swapped in, the closed-set A* may return a
        more expensive plan than the exact (Dijkstra) answer -- the bug
        that motivated the deviation."""
        exact = find_optimal_lgm_plan(
            boundary_instance, use_heuristic=False
        ).cost
        ours = find_optimal_lgm_plan(
            boundary_instance, use_heuristic=True
        ).cost
        assert ours == pytest.approx(exact)

        monkeypatch.setattr(astar, "_heuristic", paper_heuristic)
        papers = find_optimal_lgm_plan(
            boundary_instance, use_heuristic=True
        ).cost
        # The paper's h is admissible-ish here, so the result is at least
        # `exact`; on boundary instances with a closed set it can exceed it.
        assert papers >= exact - 1e-9
