"""Additional simulator and policy-lifecycle tests."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy


@pytest.fixture
def problem():
    return ProblemInstance(
        [LinearCost(0.1, 5.0), LinearCost(0.25)], 12.0, [(1, 1)] * 30
    )


class TestPolicyLifecycle:
    def test_reset_true_gives_identical_reruns(self, problem):
        policy = OnlinePolicy()
        first = simulate_policy(problem, policy)
        second = simulate_policy(problem, policy)
        assert first.total_cost == pytest.approx(second.total_cost)
        assert first.plan == second.plan

    def test_reset_false_carries_state_across_periods(self, problem):
        """Without a reset, ONLINE's running cost F_t keeps accumulating
        -- the multi-period usage pattern where refreshes chain."""
        policy = OnlinePolicy()
        policy.reset(problem.cost_functions, problem.limit)
        simulate_policy(problem, policy, reset=False)
        spent_after_first = policy.spent
        simulate_policy(problem, policy, reset=False)
        assert policy.spent > spent_after_first

    def test_policies_are_reusable_across_instances(self):
        policy = NaivePolicy()
        for steps in (10, 20):
            problem = ProblemInstance(
                [LinearCost(1.0)], 5.0, [(1,)] * steps
            )
            trace = simulate_policy(problem, policy)
            trace.plan.check_valid(problem)

    def test_metadata_records_policy(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        assert trace.metadata["source"] == "policy"
        assert "NaivePolicy" in trace.metadata["policy"]


class TestDegenerateInstances:
    def test_single_step_forced_refresh(self):
        problem = ProblemInstance([LinearCost(1.0)], 100.0, [(3,)])
        trace = simulate_policy(problem, NaivePolicy())
        assert trace.plan.actions == ((3,),)

    def test_all_silent_steps(self):
        problem = ProblemInstance([LinearCost(1.0)], 5.0, [(0,)] * 10)
        trace = simulate_policy(problem, OnlinePolicy())
        assert trace.total_cost == 0.0
        assert trace.action_count == 0

    def test_zero_limit_forces_flush_every_arrival(self):
        problem = ProblemInstance([LinearCost(1.0)], 0.0, [(1,)] * 6)
        trace = simulate_policy(problem, NaivePolicy())
        assert trace.action_count == 6
        assert trace.peak_refresh_cost == 0.0

    def test_heavy_single_burst(self):
        problem = ProblemInstance(
            [LinearCost(0.5, 2.0)], 10.0, [(0,), (40,), (0,), (0,)]
        )
        trace = simulate_policy(problem, OnlinePolicy())
        trace.plan.check_valid(problem)
        # The burst must be processed the moment it arrives (it alone
        # exceeds the budget), then nothing else happens.
        assert trace.plan.actions[1] == (40,)
