"""Tests for plan / cost-function persistence and the consistency checker."""

import random

import pytest

from repro.core.astar import check_heuristic_consistency, find_optimal_lgm_plan
from repro.core.costfuncs import (
    BlockIOCost,
    ConcaveCost,
    LinearCost,
    PiecewiseLinearCost,
    TabulatedCost,
)
from repro.core.persistence import (
    cost_function_from_dict,
    cost_function_to_dict,
    load_cost_functions,
    load_plan,
    plan_from_dict,
    save_cost_functions,
    save_plan,
)
from repro.core.plan import Plan
from repro.core.problem import ProblemInstance


class TestPlanPersistence:
    def test_roundtrip(self, tmp_path):
        plan = Plan([(1, 2), (0, 0), (3, 4)])
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        assert load_plan(path) == plan

    def test_roundtripped_plan_still_valid(self, tmp_path):
        problem = ProblemInstance(
            [LinearCost(0.1, 5.0), LinearCost(0.25)], 12.0, [(1, 1)] * 40
        )
        plan = find_optimal_lgm_plan(problem).plan
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        restored = load_plan(path)
        restored.check_valid(problem)
        assert restored.cost(problem) == pytest.approx(plan.cost(problem))

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro plan"):
            plan_from_dict({"format": "something-else"})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="declared shape"):
            plan_from_dict(
                {
                    "format": "repro-plan-v1",
                    "horizon": 9,
                    "tables": 2,
                    "actions": [[1, 2]],
                }
            )


class TestCostFunctionPersistence:
    @pytest.mark.parametrize(
        "f",
        [
            LinearCost(slope=1.5, setup=4.0),
            TabulatedCost([(10, 5.0), (20, 8.0)]),
            BlockIOCost(io_cost=3.0, block_size=8, slope=0.2),
            ConcaveCost(coeff=2.0, exponent=0.7),
        ],
    )
    def test_roundtrip_preserves_values(self, f):
        restored = cost_function_from_dict(cost_function_to_dict(f))
        for k in (0, 1, 7, 63, 500):
            assert restored(k) == pytest.approx(f(k))

    def test_named_set_roundtrip(self, tmp_path):
        functions = {
            "PS": LinearCost(0.17, 3.4),
            "S": TabulatedCost([(10, 600.0), (100, 1400.0)]),
        }
        path = tmp_path / "costs.json"
        save_cost_functions(functions, path)
        restored = load_cost_functions(path)
        assert set(restored) == {"PS", "S"}
        assert restored["S"](50) == pytest.approx(functions["S"](50))

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            cost_function_to_dict(
                PiecewiseLinearCost([(0, 0.0), (10, 5.0)])
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown cost-function"):
            cost_function_from_dict({"kind": "mystery"})

    def test_bad_file_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError, match="cost-function file"):
            load_cost_functions(path)


class TestHeuristicConsistency:
    def test_rate_heuristic_is_consistent_on_random_instances(self):
        rng = random.Random(55)
        for __ in range(8):
            n = rng.randint(1, 3)
            costs = [
                LinearCost(rng.uniform(0.2, 2.0), rng.uniform(0, 8))
                for __ in range(n)
            ]
            arrivals = [
                tuple(rng.randint(0, 3) for __ in range(n))
                for __ in range(rng.randint(5, 30))
            ]
            problem = ProblemInstance(costs, rng.uniform(5, 25), arrivals)
            assert check_heuristic_consistency(problem) == []

    def test_consistent_on_tabulated_tpcr_curves(self):
        from repro.experiments import common

        costs = common.cost_functions(scale=0.002)
        problem = common.make_problem(
            [(20, 1)] * 60, common.default_limit(costs), costs
        )
        assert check_heuristic_consistency(problem) == []
