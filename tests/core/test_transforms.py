"""Tests for MakeLazyPlan (Lemma 1) and MakeLGMPlan (Section 3.2),
including randomized property checks of the constructions' guarantees."""

import random

import pytest

from repro.core.costfuncs import BlockIOCost, LinearCost
from repro.core.plan import Plan
from repro.core.problem import ProblemInstance, sub_vectors, add_vectors, zero_vector
from repro.core.transforms import make_lazy_plan, make_lgm_plan


def random_valid_plan(problem, rng):
    """Generate a random valid plan by greedy random repair."""
    actions = []
    state = zero_vector(problem.n)
    for t in range(problem.horizon + 1):
        state = add_vectors(state, problem.arrivals[t])
        if t == problem.horizon:
            actions.append(state)
            state = zero_vector(problem.n)
            continue
        # Random action, then enlarge until the post-state is legal.
        action = [rng.randint(0, s) for s in state]
        post = sub_vectors(state, tuple(action))
        while problem.is_full(post):
            # Bump a random non-empty component.
            candidates = [i for i in range(problem.n) if post[i] > 0]
            i = rng.choice(candidates)
            action[i] += 1
            post = sub_vectors(state, tuple(action))
        actions.append(tuple(action))
        state = post
    plan = Plan(actions)
    plan.check_valid(problem)
    return plan


def random_instance(rng, family="linear"):
    n = rng.randint(1, 3)
    if family == "linear":
        costs = [
            LinearCost(slope=rng.uniform(0.2, 2.0), setup=rng.uniform(0, 5))
            for __ in range(n)
        ]
    else:
        costs = [
            BlockIOCost(
                io_cost=rng.uniform(1, 4),
                block_size=rng.randint(2, 5),
                slope=rng.uniform(0, 0.5),
            )
            for __ in range(n)
        ]
    horizon = rng.randint(3, 10)
    arrivals = [
        tuple(rng.randint(0, 3) for __ in range(n))
        for __ in range(horizon + 1)
    ]
    limit = rng.uniform(5, 20)
    return ProblemInstance(costs, limit, arrivals)


class TestMakeLazyPlan:
    def test_output_is_lazy_and_valid(self):
        rng = random.Random(1)
        for __ in range(25):
            problem = random_instance(rng)
            plan = random_valid_plan(problem, rng)
            lazy = make_lazy_plan(plan, problem)
            lazy.check_valid(problem)
            assert lazy.is_lazy(problem)

    def test_cost_never_increases(self):
        """Lemma 1: f(MakeLazyPlan(P)) <= f(P)."""
        rng = random.Random(2)
        for family in ("linear", "block"):
            for __ in range(25):
                problem = random_instance(rng, family)
                plan = random_valid_plan(problem, rng)
                lazy = make_lazy_plan(plan, problem)
                assert lazy.cost(problem) <= plan.cost(problem) + 1e-9

    def test_already_lazy_plan_preserved_in_cost(self):
        problem = ProblemInstance(
            [LinearCost(1.0)], limit=3.0, arrivals=[(2,)] * 4
        )
        # Lazy plan: act when full (t=1: backlog 4 > 3).
        lazy_in = Plan([(0,), (4,), (0,), (4,)])
        lazy_in.check_valid(problem)
        out = make_lazy_plan(lazy_in, problem)
        assert out.cost(problem) == pytest.approx(lazy_in.cost(problem))

    def test_rejects_invalid_input(self):
        problem = ProblemInstance(
            [LinearCost(1.0)], limit=3.0, arrivals=[(2,)] * 2
        )
        with pytest.raises(ValueError):
            make_lazy_plan(Plan([(0,), (0,)]), problem)


class TestMakeLGMPlan:
    def test_output_is_lgm_and_valid(self):
        rng = random.Random(3)
        for family in ("linear", "block"):
            for __ in range(25):
                problem = random_instance(rng, family)
                plan = random_valid_plan(problem, rng)
                lgm = make_lgm_plan(plan, problem)
                lgm.check_valid(problem)
                assert lgm.is_lgm(problem)

    def test_factor_two_bound(self):
        """Theorem 1's per-construction bound: f(Q) <= 2 f(P)."""
        rng = random.Random(4)
        for family in ("linear", "block"):
            for __ in range(40):
                problem = random_instance(rng, family)
                plan = random_valid_plan(problem, rng)
                lgm = make_lgm_plan(plan, problem)
                assert lgm.cost(problem) <= 2 * plan.cost(problem) + 1e-9

    def test_linear_action_counts_bounded(self):
        """Theorem 2's core step: |Q(i)| <= |P(i)| per table."""
        rng = random.Random(5)
        for __ in range(40):
            problem = random_instance(rng, "linear")
            plan = random_valid_plan(problem, rng)
            lgm = make_lgm_plan(plan, problem)
            for i in range(problem.n):
                assert lgm.action_count(i) <= plan.action_count(i)
