"""Unit tests for greedy/minimal action enumeration and MinimizeAction."""

import pytest

from repro.core.actions import (
    cheapest_greedy_minimal_action,
    enumerate_greedy_minimal_actions,
    minimize_action,
)
from repro.core.costfuncs import LinearCost
from repro.core.problem import ProblemInstance


def make_problem(costs, limit):
    # Arrivals are irrelevant for action enumeration; provide a stub.
    return ProblemInstance(costs, limit, [(0,) * len(costs)])


class TestEnumeration:
    def test_non_full_state_yields_nothing(self):
        prob = make_problem([LinearCost(1.0), LinearCost(1.0)], limit=10.0)
        assert list(enumerate_greedy_minimal_actions((3, 3), prob)) == []

    def test_single_table(self):
        prob = make_problem([LinearCost(1.0)], limit=3.0)
        actions = list(enumerate_greedy_minimal_actions((5,), prob))
        assert actions == [(5,)]

    def test_two_tables_either_suffices(self):
        prob = make_problem([LinearCost(1.0), LinearCost(1.0)], limit=3.0)
        # state (3, 3): cost 6 > 3; emptying either table leaves 3 <= 3.
        actions = set(enumerate_greedy_minimal_actions((3, 3), prob))
        assert actions == {(3, 0), (0, 3)}

    def test_superset_actions_excluded_by_minimality(self):
        prob = make_problem([LinearCost(1.0), LinearCost(1.0)], limit=3.0)
        actions = set(enumerate_greedy_minimal_actions((3, 3), prob))
        assert (3, 3) not in actions

    def test_both_tables_required(self):
        prob = make_problem([LinearCost(1.0), LinearCost(1.0)], limit=3.0)
        # state (8, 8): even one table alone leaves 8 > 3, must empty both.
        actions = set(enumerate_greedy_minimal_actions((8, 8), prob))
        assert actions == {(8, 8)}

    def test_empty_components_never_selected(self):
        prob = make_problem([LinearCost(1.0), LinearCost(1.0)], limit=3.0)
        actions = set(enumerate_greedy_minimal_actions((9, 0), prob))
        assert actions == {(9, 0)}

    def test_mixed_asymmetric_costs(self):
        prob = make_problem(
            [LinearCost(slope=1.0, setup=10.0), LinearCost(slope=1.0)],
            limit=12.0,
        )
        # state (1, 12): f = 11 + 12 = 23 > 12.  Emptying table 0 leaves
        # 12 <= 12 (valid); emptying table 1 leaves 11 <= 12 (valid).
        actions = set(enumerate_greedy_minimal_actions((1, 12), prob))
        assert actions == {(1, 0), (0, 12)}

    def test_every_enumerated_action_is_valid_and_minimal(self):
        prob = make_problem(
            [LinearCost(0.5, 2.0), LinearCost(1.5), LinearCost(1.0, 1.0)],
            limit=9.0,
        )
        state = (6, 4, 5)
        assert prob.is_full(state)
        for action in enumerate_greedy_minimal_actions(state, prob):
            post = tuple(s - a for s, a in zip(state, action))
            assert not prob.is_full(post)
            # minimal: restoring any emptied table overflows
            for i, a in enumerate(action):
                if a:
                    restored = list(post)
                    restored[i] += a
                    assert prob.is_full(tuple(restored))

    def test_too_many_tables_guarded(self):
        n = 25
        prob = make_problem([LinearCost(1.0)] * n, limit=1.0)
        with pytest.raises(ValueError, match="enumeration limit"):
            list(enumerate_greedy_minimal_actions((1,) * n, prob))


class TestCheapest:
    def test_picks_lowest_cost(self):
        prob = make_problem(
            [LinearCost(slope=1.0, setup=10.0), LinearCost(slope=1.0)],
            limit=12.0,
        )
        # Options: empty table 0 (cost 11) or table 1 (cost 12).
        assert cheapest_greedy_minimal_action((1, 12), prob) == (1, 0)

    def test_raises_on_nonfull(self):
        prob = make_problem([LinearCost(1.0)], limit=10.0)
        with pytest.raises(ValueError, match="not full"):
            cheapest_greedy_minimal_action((3,), prob)


class TestMinimizeAction:
    def test_drops_redundant_components(self):
        prob = make_problem([LinearCost(1.0), LinearCost(1.0)], limit=3.0)
        result = minimize_action((3, 3), (3, 3), prob)
        # One of the two components must be dropped.
        assert result in ((3, 0), (0, 3))

    def test_keeps_required_components(self):
        prob = make_problem([LinearCost(1.0), LinearCost(1.0)], limit=3.0)
        assert minimize_action((8, 8), (8, 8), prob) == (8, 8)

    def test_drops_most_expensive_first(self):
        prob = make_problem(
            [LinearCost(slope=1.0, setup=10.0), LinearCost(slope=1.0)],
            limit=12.0,
        )
        # state (1, 12); full action (1, 12).  Component 0 costs 11,
        # component 1 costs 12 -> try dropping table 1 first: leaves 12 <=
        # 12 valid, so the expensive flush is shed.
        assert minimize_action((1, 12), (1, 12), prob) == (1, 0)

    def test_rejects_non_greedy_input(self):
        prob = make_problem([LinearCost(1.0)], limit=3.0)
        with pytest.raises(ValueError, match="not greedy"):
            minimize_action((2,), (5,), prob)

    def test_rejects_invalid_input(self):
        prob = make_problem([LinearCost(1.0), LinearCost(1.0)], limit=3.0)
        with pytest.raises(ValueError, match="constraint"):
            minimize_action((0, 0), (8, 8), prob)

    def test_result_is_minimal(self):
        prob = make_problem(
            [LinearCost(0.5, 2.0), LinearCost(1.5), LinearCost(1.0, 1.0)],
            limit=9.0,
        )
        state = (6, 4, 5)
        result = minimize_action(state, state, prob)
        post = tuple(s - a for s, a in zip(state, result))
        assert not prob.is_full(post)
        for i, a in enumerate(result):
            if a:
                restored = list(post)
                restored[i] += a
                assert prob.is_full(tuple(restored))
