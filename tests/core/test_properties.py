"""Hypothesis property-based tests on the core model.

Invariants exercised:

* every cost-function family is monotone and subadditive on sampled
  domains (the Section 2 assumptions);
* ``max_batch_under`` agrees with brute force;
* simulated policies always produce valid plans, never violate the
  response-time constraint, and conserve modifications (everything that
  arrives is processed exactly once);
* ``MakeLazyPlan`` / ``MakeLGMPlan`` keep their cost guarantees on
  arbitrary generated instances;
* A* <= NAIVE <= EAGER orderings hold universally.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.actions import enumerate_greedy_minimal_actions
from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import (
    BlockIOCost,
    ConcaveCost,
    LinearCost,
    PiecewiseLinearCost,
    TabulatedCost,
    max_batch_under,
)
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy
from repro.core.transforms import make_lazy_plan, make_lgm_plan

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

linear_costs = st.builds(
    LinearCost,
    slope=st.floats(0.05, 5.0),
    setup=st.floats(0.0, 10.0),
)
block_costs = st.builds(
    BlockIOCost,
    io_cost=st.floats(0.5, 5.0),
    block_size=st.integers(1, 8),
    slope=st.floats(0.0, 1.0),
)
concave_costs = st.builds(
    ConcaveCost,
    coeff=st.floats(0.5, 5.0),
    exponent=st.floats(0.2, 1.0),
)
tabulated_costs = st.lists(
    st.tuples(st.integers(1, 50), st.floats(0.1, 20.0)),
    min_size=2,
    max_size=6,
    unique_by=lambda kv: kv[0],
).map(TabulatedCost)

any_cost = st.one_of(linear_costs, block_costs, concave_costs)


@st.composite
def instances(draw, families=any_cost, max_tables=3, max_horizon=12):
    n = draw(st.integers(1, max_tables))
    costs = [draw(families) for __ in range(n)]
    horizon = draw(st.integers(1, max_horizon))
    arrivals = [
        tuple(
            draw(st.integers(0, 3)) for __ in range(n)
        )
        for __ in range(horizon + 1)
    ]
    limit = draw(st.floats(3.0, 30.0))
    return ProblemInstance(costs, limit, arrivals)


# ----------------------------------------------------------------------
# Cost-function axioms
# ----------------------------------------------------------------------


@given(f=any_cost)
@settings(max_examples=60, deadline=None)
def test_cost_functions_satisfy_section2_axioms(f):
    assert f(0) == 0.0
    assert f.is_monotone(24)
    assert f.is_subadditive(24)


@given(samples=st.lists(
    st.tuples(st.integers(1, 40), st.floats(0.0, 10.0)),
    min_size=1, max_size=8,
))
@settings(max_examples=60, deadline=None)
def test_tabulated_costs_are_monotone_after_repair(samples):
    f = TabulatedCost(samples)
    assert f.is_monotone(60)


@given(f=any_cost, budget=st.floats(0.0, 40.0))
@settings(max_examples=60, deadline=None)
def test_max_batch_under_matches_bruteforce(f, budget):
    answer = max_batch_under(f, budget, hi=512)
    brute = 0
    for k in range(1, 513):
        if f(k) <= budget:
            brute = k
        else:
            break
    assert answer == brute


# ----------------------------------------------------------------------
# Action enumeration invariants
# ----------------------------------------------------------------------


@given(problem=instances(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_enumerated_actions_are_greedy_minimal_valid(problem, data):
    state = tuple(
        data.draw(st.integers(0, 12)) for __ in range(problem.n)
    )
    actions = list(enumerate_greedy_minimal_actions(state, problem))
    if not problem.is_full(state):
        assert actions == []
        return
    assert actions, "a full state must admit at least one action"
    for action in actions:
        post = tuple(s - a for s, a in zip(state, action))
        assert all(x >= 0 for x in post)
        assert not problem.is_full(post)
        for i, a in enumerate(action):
            assert a in (0, state[i])  # greedy
            if a:
                restored = list(post)
                restored[i] += a
                assert problem.is_full(tuple(restored))  # minimal


# ----------------------------------------------------------------------
# Policy and planner invariants
# ----------------------------------------------------------------------


@given(problem=instances())
@settings(max_examples=30, deadline=None)
def test_naive_policy_always_produces_valid_plan(problem):
    trace = simulate_policy(problem, NaivePolicy())
    trace.plan.check_valid(problem)
    # Conservation: everything that arrived got processed exactly once.
    processed = tuple(
        sum(a[i] for a in trace.plan.actions) for i in range(problem.n)
    )
    assert processed == problem.total_arrivals()


@given(problem=instances(max_tables=2, max_horizon=10))
@settings(max_examples=25, deadline=None)
def test_online_policy_always_produces_valid_plan(problem):
    trace = simulate_policy(problem, OnlinePolicy())
    trace.plan.check_valid(problem)


@given(problem=instances(max_tables=2, max_horizon=10))
@settings(max_examples=25, deadline=None)
def test_astar_not_worse_than_naive(problem):
    optimal = find_optimal_lgm_plan(problem)
    naive = simulate_policy(problem, NaivePolicy())
    assert optimal.cost <= naive.total_cost + 1e-6
    optimal.plan.check_valid(problem)


@given(problem=instances(families=linear_costs, max_tables=2, max_horizon=10))
@settings(max_examples=25, deadline=None)
def test_transforms_preserve_guarantees(problem):
    # Use the NAIVE trace as the reference valid plan.
    reference = simulate_policy(problem, NaivePolicy()).plan
    lazy = make_lazy_plan(reference, problem)
    assert lazy.cost(problem) <= reference.cost(problem) + 1e-9
    lgm = make_lgm_plan(reference, problem)
    assert lgm.is_lgm(problem)
    assert lgm.cost(problem) <= 2 * reference.cost(problem) + 1e-9
