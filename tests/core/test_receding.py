"""Tests for the receding-horizon re-planning policy."""

import pytest

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import LinearCost
from repro.core.online import TimeToFullEstimator
from repro.core.problem import ProblemInstance
from repro.core.receding import RecedingHorizonPolicy, project_arrivals
from repro.core.simulator import simulate_policy


class TestProjectArrivals:
    def test_integer_rates_exact(self):
        assert project_arrivals((2.0, 1.0), 3) == [(2, 1)] * 3

    def test_fractional_rates_accumulate(self):
        seq = project_arrivals((0.25,), 8)
        assert sum(row[0] for row in seq) == 2
        assert all(row[0] in (0, 1) for row in seq)

    def test_long_run_rate_matches(self):
        seq = project_arrivals((1.5, 0.1), 100)
        assert sum(row[0] for row in seq) == 150
        assert sum(row[1] for row in seq) == 10

    def test_bad_steps(self):
        with pytest.raises(ValueError):
            project_arrivals((1.0,), 0)


class TestRecedingHorizonPolicy:
    def make_problem(self, horizon=200):
        return ProblemInstance(
            [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
            limit=12.0,
            arrivals=[(1, 1)] * horizon,
        )

    def test_valid_and_constraint_respecting(self):
        problem = self.make_problem()
        trace = simulate_policy(problem, RecedingHorizonPolicy(window=60))
        trace.plan.check_valid(problem)

    def test_optimal_on_uniform_arrivals(self):
        """With exact rate estimates, MPC matches OPT_LGM closely."""
        problem = self.make_problem(horizon=150)
        policy = RecedingHorizonPolicy(window=80)
        trace = simulate_policy(problem, policy)
        optimal = find_optimal_lgm_plan(problem)
        assert trace.total_cost <= 1.02 * optimal.cost
        assert policy.replans > 0

    def test_oracle_rates_supported(self):
        problem = self.make_problem(horizon=100)
        estimator = TimeToFullEstimator(mode="fixed", fixed_rates=[1.0, 1.0])
        policy = RecedingHorizonPolicy(window=60, estimator=estimator)
        trace = simulate_policy(problem, policy)
        trace.plan.check_valid(problem)

    def test_replans_reset(self):
        problem = self.make_problem(horizon=80)
        policy = RecedingHorizonPolicy(window=40)
        simulate_policy(problem, policy)
        first = policy.replans
        simulate_policy(problem, policy)  # reset=True by default
        assert policy.replans == first

    def test_bad_window(self):
        with pytest.raises(ValueError):
            RecedingHorizonPolicy(window=0)
