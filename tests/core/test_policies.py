"""Tests for NAIVE, ONLINE, ADAPT, ReplayPolicy and the simulator."""

import pytest

from repro.core.adapt import AdaptPolicy, adapt_plan
from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import (
    OnlinePolicy,
    TimeToFullEstimator,
    make_oracle_online_policy,
)
from repro.core.plan import Plan
from repro.core.policies import Policy, PolicyError, ReplayPolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import execute_plan, simulate_policy


def asymmetric_instance(steps=60, limit=12.0):
    return ProblemInstance(
        [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
        limit=limit,
        arrivals=[(1, 1)] * steps,
    )


class TestNaive:
    def test_never_violates_constraint(self):
        problem = asymmetric_instance()
        trace = simulate_policy(problem, NaivePolicy())
        assert trace.peak_refresh_cost <= problem.limit + 1e-9

    def test_actions_are_full_flushes(self):
        problem = asymmetric_instance()
        trace = simulate_policy(problem, NaivePolicy())
        pre = trace.plan.pre_action_states(problem)
        for t in range(problem.horizon):
            action = trace.plan.actions[t]
            if any(action):
                assert action == pre[t]

    def test_symmetric_plan_is_lazy_and_greedy_but_not_minimal(self):
        problem = asymmetric_instance()
        trace = simulate_policy(problem, NaivePolicy())
        assert trace.plan.is_lazy(problem)
        assert trace.plan.is_greedy(problem)
        assert not trace.plan.is_minimal(problem)


class TestOnline:
    def test_valid_and_constraint_respecting(self):
        problem = asymmetric_instance()
        trace = simulate_policy(problem, OnlinePolicy())
        trace.plan.check_valid(problem)

    def test_beats_or_matches_naive_on_asymmetric_costs(self):
        problem = asymmetric_instance()
        online = simulate_policy(problem, OnlinePolicy())
        naive = simulate_policy(problem, NaivePolicy())
        assert online.total_cost <= naive.total_cost + 1e-9

    def test_close_to_optimal_on_uniform_stream(self):
        problem = asymmetric_instance(steps=120)
        online = simulate_policy(problem, OnlinePolicy())
        optimal = find_optimal_lgm_plan(problem)
        assert online.total_cost <= 1.2 * optimal.cost

    def test_spent_tracks_total(self):
        problem = asymmetric_instance()
        policy = OnlinePolicy()
        trace = simulate_policy(problem, policy)
        assert policy.spent == pytest.approx(trace.total_cost)

    def test_oracle_variant_runs(self):
        problem = asymmetric_instance()
        policy = make_oracle_online_policy(problem)
        trace = simulate_policy(problem, policy)
        trace.plan.check_valid(problem)


class TestTimeToFullEstimator:
    def test_ewma_tracks_constant_rate(self):
        est = TimeToFullEstimator(mode="ewma", alpha=0.5)
        est.reset(2)
        for __ in range(20):
            est.observe((4, 2))
        rates = est.rates()
        assert rates[0] == pytest.approx(4.0, abs=0.01)
        assert rates[1] == pytest.approx(2.0, abs=0.01)

    def test_window_average(self):
        est = TimeToFullEstimator(mode="window", window=2)
        est.reset(1)
        est.observe((2,))
        est.observe((4,))
        est.observe((6,))
        assert est.rates() == (5.0,)

    def test_fixed_mode_ignores_observations(self):
        est = TimeToFullEstimator(mode="fixed", fixed_rates=[3.0])
        est.reset(1)
        est.observe((100,))
        assert est.rates() == (3.0,)

    def test_time_to_full_exact_for_linear(self):
        est = TimeToFullEstimator(mode="fixed", fixed_rates=[2.0])
        est.reset(1)
        f = LinearCost(slope=1.0)
        # state 3, rate 2/step, limit 10: full when 3 + 2h > 10 -> h = 4.
        assert est.time_to_full((3,), [f], 10.0) == 4

    def test_time_to_full_zero_when_already_full(self):
        est = TimeToFullEstimator(mode="fixed", fixed_rates=[1.0])
        est.reset(1)
        assert est.time_to_full((100,), [LinearCost(1.0)], 10.0) == 0

    def test_time_to_full_capped_with_zero_rates(self):
        est = TimeToFullEstimator(mode="fixed", fixed_rates=[0.0])
        est.reset(1)
        horizon = est.time_to_full((1,), [LinearCost(1.0)], 10.0)
        assert horizon >= 1 << 20  # effectively never

    def test_no_observations_returns_cap(self):
        est = TimeToFullEstimator(mode="ewma")
        est.reset(1)
        assert est.time_to_full((0,), [LinearCost(1.0)], 10.0) >= 1 << 20

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimeToFullEstimator(mode="nope")
        with pytest.raises(ValueError):
            TimeToFullEstimator(mode="fixed")
        with pytest.raises(ValueError):
            TimeToFullEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            TimeToFullEstimator(window=0)

    def test_fixed_rates_width_checked_at_reset(self):
        est = TimeToFullEstimator(mode="fixed", fixed_rates=[1.0])
        with pytest.raises(ValueError):
            est.reset(2)


class TestAdapt:
    def test_exact_estimate_matches_optimal(self):
        problem = asymmetric_instance(steps=60)
        policy = adapt_plan(problem, problem.horizon)
        trace = simulate_policy(problem, policy)
        optimal = find_optimal_lgm_plan(problem)
        assert trace.total_cost == pytest.approx(optimal.cost)

    def test_underestimated_horizon(self):
        problem = asymmetric_instance(steps=90)
        policy = adapt_plan(problem, 30)  # T0 < T: execute cyclically
        trace = simulate_policy(problem, policy)
        trace.plan.check_valid(problem)
        optimal = find_optimal_lgm_plan(problem)
        # Theorem 4 flavour: within an additive setup term per period.
        assert trace.total_cost <= optimal.cost + 4 * (5.0 + 0.0) + 1e-6

    def test_overestimated_horizon(self):
        problem = asymmetric_instance(steps=40)
        policy = adapt_plan(problem, 100)  # T0 > T: stop early, flush at T
        trace = simulate_policy(problem, policy)
        trace.plan.check_valid(problem)
        optimal = find_optimal_lgm_plan(problem)
        assert trace.total_cost <= optimal.cost + (5.0 + 0.0) + 1e-6

    def test_deviating_arrivals_trigger_remedial_action(self):
        # Plan computed for a light stream, executed on a heavy one.
        light = ProblemInstance(
            [LinearCost(1.0)], 10.0, [(1,)] * 20
        )
        heavy = ProblemInstance(
            [LinearCost(1.0)], 10.0, [(4,)] * 20
        )
        plan = find_optimal_lgm_plan(light).plan
        policy = AdaptPolicy(plan)
        trace = simulate_policy(heavy, policy)
        trace.plan.check_valid(heavy)
        assert policy.deviations > 0

    def test_negative_estimate_rejected(self):
        problem = asymmetric_instance()
        with pytest.raises(ValueError):
            adapt_plan(problem, -1)


class TestReplayPolicy:
    def test_replays_plan_exactly(self):
        problem = asymmetric_instance()
        optimal = find_optimal_lgm_plan(problem)
        trace = simulate_policy(problem, ReplayPolicy(optimal.plan.actions))
        assert trace.total_cost == pytest.approx(optimal.cost)
        assert trace.plan == optimal.plan

    def test_clamps_to_backlog(self):
        policy = ReplayPolicy([(5,), (0,)])
        policy.reset([LinearCost(1.0)], 10.0)
        assert policy.decide(0, (3,)) == (3,)

    def test_out_of_range_time(self):
        policy = ReplayPolicy([(0,)])
        policy.reset([LinearCost(1.0)], 10.0)
        with pytest.raises(PolicyError):
            policy.decide(5, (0,))


class TestSimulator:
    def test_execute_plan_matches_plan_cost(self):
        problem = asymmetric_instance()
        optimal = find_optimal_lgm_plan(problem)
        trace = execute_plan(problem, optimal.plan)
        assert trace.total_cost == pytest.approx(optimal.cost)
        assert trace.horizon == problem.horizon

    def test_policy_violating_constraint_raises(self):
        class LazyForever(Policy):
            def decide(self, t, pre_state):
                return (0,) * self.n

        problem = ProblemInstance([LinearCost(1.0)], 2.0, [(2,)] * 4)
        with pytest.raises(PolicyError, match="violates"):
            simulate_policy(problem, LazyForever())

    def test_policy_overdrawing_raises(self):
        class Overdrawer(Policy):
            def decide(self, t, pre_state):
                return tuple(s + 1 for s in pre_state)

        problem = ProblemInstance([LinearCost(1.0)], 10.0, [(1,)] * 3)
        with pytest.raises(PolicyError, match="exceeds backlog"):
            simulate_policy(problem, Overdrawer())

    def test_forced_final_refresh(self):
        problem = ProblemInstance([LinearCost(1.0)], 100.0, [(1,)] * 5)
        trace = simulate_policy(problem, NaivePolicy())
        assert trace.plan.actions[-1] == (5,)
        assert trace.post_states[-1] == (0,)

    def test_trace_statistics(self):
        problem = asymmetric_instance(steps=30)
        trace = simulate_policy(problem, NaivePolicy())
        summary = trace.summary()
        assert summary["total_cost"] == pytest.approx(trace.total_cost)
        assert summary["horizon"] == problem.horizon
        assert trace.cost_per_modification() == pytest.approx(
            trace.total_cost / 60
        )
        assert len(trace.action_costs) == problem.horizon + 1
