"""Tests for the A* LGM planner (Section 4.1)."""

import random

import pytest

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import BlockIOCost, ConcaveCost, LinearCost
from repro.core.exhaustive import find_optimal_lazy_plan_exhaustive
from repro.core.naive import NaivePolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy


def asymmetric_instance(steps=60, limit=12.0):
    return ProblemInstance(
        [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
        limit=limit,
        arrivals=[(1, 1)] * steps,
    )


class TestOptimality:
    def test_plan_is_valid_and_lgm(self):
        problem = asymmetric_instance()
        result = find_optimal_lgm_plan(problem)
        result.plan.check_valid(problem)
        assert result.plan.is_lgm(problem)

    def test_cost_matches_plan_cost(self):
        problem = asymmetric_instance()
        result = find_optimal_lgm_plan(problem)
        assert result.cost == pytest.approx(result.plan.cost(problem))

    def test_beats_naive_on_asymmetric_costs(self):
        problem = asymmetric_instance()
        optimal = find_optimal_lgm_plan(problem)
        naive = simulate_policy(problem, NaivePolicy())
        assert optimal.cost < naive.total_cost

    def test_heuristic_and_dijkstra_agree(self):
        rng = random.Random(7)
        for __ in range(10):
            n = rng.randint(1, 3)
            costs = [
                LinearCost(rng.uniform(0.2, 2.0), rng.uniform(0, 6))
                for __ in range(n)
            ]
            arrivals = [
                tuple(rng.randint(0, 3) for __ in range(n))
                for __ in range(rng.randint(5, 25))
            ]
            problem = ProblemInstance(costs, rng.uniform(6, 18), arrivals)
            with_h = find_optimal_lgm_plan(problem, use_heuristic=True)
            without_h = find_optimal_lgm_plan(problem, use_heuristic=False)
            assert with_h.cost == pytest.approx(without_h.cost)

    def test_heuristic_never_expands_more_nodes(self):
        problem = asymmetric_instance(steps=80)
        with_h = find_optimal_lgm_plan(problem, use_heuristic=True)
        without_h = find_optimal_lgm_plan(problem, use_heuristic=False)
        assert with_h.expanded <= without_h.expanded

    def test_matches_exhaustive_lazy_optimum_for_greedy_friendly_cases(self):
        # With linear costs the best lazy plan is WLOG greedy & minimal
        # (Theorem 2 machinery), so A* must match the exhaustive lazy DP.
        rng = random.Random(8)
        for __ in range(8):
            n = rng.randint(1, 2)
            costs = [
                LinearCost(rng.uniform(0.3, 1.5), rng.uniform(0, 4))
                for __ in range(n)
            ]
            arrivals = [
                tuple(rng.randint(0, 2) for __ in range(n))
                for __ in range(rng.randint(4, 8))
            ]
            problem = ProblemInstance(costs, rng.uniform(4, 10), arrivals)
            astar = find_optimal_lgm_plan(problem)
            lazy = find_optimal_lazy_plan_exhaustive(problem)
            assert astar.cost == pytest.approx(lazy.cost, abs=1e-9)


class TestEdgeCases:
    def test_single_step_instance(self):
        problem = ProblemInstance([LinearCost(1.0)], 5.0, [(3,)])
        result = find_optimal_lgm_plan(problem)
        assert result.plan.actions == ((3,),)
        assert result.cost == pytest.approx(3.0)

    def test_no_arrivals_at_all(self):
        problem = ProblemInstance([LinearCost(1.0)], 5.0, [(0,)] * 5)
        result = find_optimal_lgm_plan(problem)
        assert result.cost == 0.0
        assert all(a == (0,) for a in result.plan.actions)

    def test_never_full_flushes_only_at_refresh(self):
        problem = ProblemInstance([LinearCost(1.0)], 100.0, [(1,)] * 10)
        result = find_optimal_lgm_plan(problem)
        assert result.plan.action_count(0) == 1
        assert result.plan.actions[-1] == (10,)

    def test_forced_action_every_step(self):
        # Each step's arrivals alone exceed the limit: flush every step.
        problem = ProblemInstance([LinearCost(1.0)], 2.0, [(3,)] * 4)
        result = find_optimal_lgm_plan(problem)
        assert result.plan.action_count(0) == 4

    def test_zero_limit(self):
        problem = ProblemInstance([LinearCost(1.0)], 0.0, [(1,)] * 3)
        result = find_optimal_lgm_plan(problem)
        result.plan.check_valid(problem)
        assert result.plan.action_count(0) == 3

    def test_non_concave_costs(self):
        problem = ProblemInstance(
            [BlockIOCost(io_cost=4.0, block_size=3)], 8.0, [(2,)] * 8
        )
        result = find_optimal_lgm_plan(problem)
        result.plan.check_valid(problem)

    def test_concave_costs(self):
        problem = ProblemInstance(
            [ConcaveCost(coeff=3.0)], 9.0, [(2,)] * 8
        )
        result = find_optimal_lgm_plan(problem)
        result.plan.check_valid(problem)

    def test_search_statistics_populated(self):
        result = find_optimal_lgm_plan(asymmetric_instance())
        assert result.expanded >= 1
        assert result.generated >= result.expanded
