"""Mechanical checks of the paper's analytical results (Section 3).

These tests pit the A* LGM planner against the exhaustive all-plans oracle
on instances small enough for the oracle, verifying:

* Lemma 1 (laziness is free),
* Theorem 1 (OPT_LGM <= 2 OPT) and its tightness construction,
* Theorem 2 (linear costs: OPT_LGM == OPT).
"""

import random

import pytest

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import BlockIOCost, ConcaveCost, LinearCost, StepCost
from repro.core.exhaustive import (
    find_optimal_lazy_plan_exhaustive,
    find_optimal_plan_exhaustive,
)
from repro.core.problem import ProblemInstance


def random_instance(rng, family):
    n = rng.randint(1, 2)
    costs = []
    for __ in range(n):
        if family == "linear":
            costs.append(
                LinearCost(rng.uniform(0.3, 2.0), rng.uniform(0.0, 4.0))
            )
        elif family == "block":
            costs.append(
                BlockIOCost(
                    io_cost=rng.uniform(1.0, 3.0),
                    block_size=rng.randint(2, 4),
                    slope=rng.uniform(0.0, 0.4),
                )
            )
        else:
            costs.append(
                ConcaveCost(rng.uniform(1.0, 3.0), rng.uniform(0.4, 1.0))
            )
    horizon = rng.randint(3, 7)
    arrivals = [
        tuple(rng.randint(0, 2) for __ in range(n))
        for __ in range(horizon + 1)
    ]
    limit = rng.uniform(4.0, 12.0)
    return ProblemInstance(costs, limit, arrivals)


class TestLemma1:
    """The best lazy plan is globally optimal."""

    @pytest.mark.parametrize("seed", range(6))
    def test_lazy_restriction_is_free(self, seed):
        rng = random.Random(seed)
        problem = random_instance(rng, "linear")
        full = find_optimal_plan_exhaustive(problem)
        lazy = find_optimal_lazy_plan_exhaustive(problem)
        assert lazy.cost == pytest.approx(full.cost, abs=1e-9)

    @pytest.mark.parametrize("seed", range(6, 10))
    def test_lazy_restriction_is_free_nonlinear(self, seed):
        rng = random.Random(seed)
        problem = random_instance(rng, "block")
        full = find_optimal_plan_exhaustive(problem)
        lazy = find_optimal_lazy_plan_exhaustive(problem)
        assert lazy.cost == pytest.approx(full.cost, abs=1e-9)


class TestTheorem1:
    """OPT_LGM <= 2 OPT for monotone subadditive costs."""

    @pytest.mark.parametrize("family", ["linear", "block", "concave"])
    @pytest.mark.parametrize("seed", range(8))
    def test_factor_two(self, family, seed):
        rng = random.Random(1000 + seed)
        problem = random_instance(rng, family)
        lgm = find_optimal_lgm_plan(problem)
        opt = find_optimal_plan_exhaustive(problem)
        assert lgm.cost <= 2 * opt.cost + 1e-9
        assert lgm.cost >= opt.cost - 1e-9  # sanity: LGM can't beat OPT

    @pytest.mark.parametrize(
        "eps,expected_ratio", [(1.0, 1.5), (0.5, 5 / 3), (0.25, 1.8)]
    )
    def test_tightness_construction(self, eps, expected_ratio):
        """Section 3.2: ratio = (2 + eps) / (1 + eps) -> 2 as eps -> 0."""
        limit = 10.0
        per_step = int(round(2 / eps)) + 1
        periods = 2
        problem = ProblemInstance(
            [StepCost(eps=eps, limit=limit)],
            limit,
            [(per_step,)] * (2 * periods),
        )
        lgm = find_optimal_lgm_plan(problem)
        opt = find_optimal_plan_exhaustive(problem)
        assert lgm.cost / opt.cost == pytest.approx(expected_ratio)

    def test_tightness_construction_costs_match_paper_formulas(self):
        eps, limit, periods = 0.5, 10.0, 3
        per_step = int(round(2 / eps)) + 1
        problem = ProblemInstance(
            [StepCost(eps=eps, limit=limit)],
            limit,
            [(per_step,)] * (2 * periods),
        )
        lgm = find_optimal_lgm_plan(problem)
        opt = find_optimal_plan_exhaustive(problem)
        # OPT_LGM = (2 + eps) m C; OPT <= (1 + eps) m C.
        assert lgm.cost == pytest.approx((2 + eps) * periods * limit)
        assert opt.cost <= (1 + eps) * periods * limit + 1e-9


class TestTheorem2:
    """Linear costs: the best LGM plan is globally optimal."""

    @pytest.mark.parametrize("seed", range(12))
    def test_equality(self, seed):
        rng = random.Random(2000 + seed)
        problem = random_instance(rng, "linear")
        lgm = find_optimal_lgm_plan(problem)
        opt = find_optimal_plan_exhaustive(problem)
        assert lgm.cost == pytest.approx(opt.cost, abs=1e-9)


class TestTheorem4:
    """ADAPT's additive bounds for linear costs (Section 4.2).

    With ``f_i = a_i k + b_i`` and periodic arrivals:

    * ``T < T0``:  cost(Q_{T0,T}) <= OPT_T + sum_i b_i
    * ``T > T0``:  cost(Q_{T0,T}) <= OPT_T + ceil(T/T0) * sum_i b_i
    """

    @staticmethod
    def _instance(seed, horizon):
        rng = random.Random(seed)
        n = rng.randint(1, 2)
        costs = [
            LinearCost(
                slope=rng.uniform(0.3, 1.5), setup=rng.uniform(0.5, 6.0)
            )
            for __ in range(n)
        ]
        # Periodic (constant) arrivals, as Theorem 4's T > T0 case assumes.
        rates = tuple(rng.randint(1, 2) for __ in range(n))
        arrivals = [rates] * (horizon + 1)
        limit = rng.uniform(8.0, 20.0)
        return ProblemInstance(costs, limit, arrivals)

    @pytest.mark.parametrize("seed", range(6))
    def test_underestimated_horizon_bound(self, seed):
        import math

        from repro.core.adapt import adapt_plan
        from repro.core.simulator import simulate_policy

        problem = self._instance(3000 + seed, horizon=60)
        t0 = 25  # T0 < T: execute the T0 plan cyclically
        policy = adapt_plan(problem, t0)
        trace = simulate_policy(problem, policy)
        opt = find_optimal_lgm_plan(problem).cost  # == OPT_T (Theorem 2)
        setups = sum(f.setup for f in problem.cost_functions)
        bound = opt + math.ceil(problem.horizon / t0) * setups
        assert trace.total_cost <= bound + 1e-6

    @pytest.mark.parametrize("seed", range(6))
    def test_overestimated_horizon_bound(self, seed):
        from repro.core.adapt import adapt_plan
        from repro.core.simulator import simulate_policy

        problem = self._instance(4000 + seed, horizon=40)
        policy = adapt_plan(problem, 90)  # T0 > T: stop early, flush at T
        trace = simulate_policy(problem, policy)
        opt = find_optimal_lgm_plan(problem).cost
        setups = sum(f.setup for f in problem.cost_functions)
        assert trace.total_cost <= opt + setups + 1e-6
