"""Tests for the exhaustive optimal-plan oracle."""

import pytest

from repro.core.costfuncs import LinearCost, StepCost
from repro.core.exhaustive import (
    find_optimal_lazy_plan_exhaustive,
    find_optimal_plan_exhaustive,
)
from repro.core.problem import ProblemInstance


class TestExhaustiveOracle:
    def test_trivial_instance(self):
        problem = ProblemInstance([LinearCost(1.0)], 5.0, [(2,)])
        result = find_optimal_plan_exhaustive(problem)
        assert result.cost == pytest.approx(2.0)
        assert result.plan.actions == ((2,),)

    def test_batching_preferred_with_setup(self):
        # f = k + 4; two steps of 1 arrival; limit high enough to defer.
        problem = ProblemInstance(
            [LinearCost(slope=1.0, setup=4.0)], 10.0, [(1,), (1,)]
        )
        result = find_optimal_plan_exhaustive(problem)
        # One combined batch (cost 6) beats two singles (cost 10).
        assert result.cost == pytest.approx(6.0)
        assert result.plan.actions == ((0,), (2,))

    def test_forced_intermediate_action(self):
        problem = ProblemInstance(
            [LinearCost(slope=1.0)], 3.0, [(2,), (2,), (2,)]
        )
        result = find_optimal_plan_exhaustive(problem)
        result.plan.check_valid(problem)
        # Total work is fixed (slope-only cost): 6 units.
        assert result.cost == pytest.approx(6.0)

    def test_partial_actions_beat_lgm_on_step_cost(self):
        """The Section 3.2 example: non-greedy plans win on step costs."""
        limit = 10.0
        cost = StepCost(eps=0.5, limit=limit)  # knee at 4
        # 5 modifications per step: LGM must flush all 5 each step at cost
        # 1.25 * C; a partial plan processes 1 now + 9 next at (0.25+1.25)C
        # per two steps.
        problem = ProblemInstance([cost], limit, [(5,)] * 4)
        result = find_optimal_plan_exhaustive(problem)
        # Optimal: (1+eps) * m * C = 1.5 * 2 * 10 = 30.
        assert result.cost == pytest.approx(30.0)
        # Verify at least one action is partial (neither 0 nor the backlog).
        pre_states = result.plan.pre_action_states(problem)
        partial = any(
            0 < result.plan.actions[t][0] < pre_states[t][0]
            for t in range(problem.horizon)
        )
        assert partial

    def test_state_budget_guard(self):
        problem = ProblemInstance(
            [LinearCost(1.0), LinearCost(1.0)], 50.0, [(5, 5)] * 10
        )
        with pytest.raises(ValueError, match="max_states"):
            find_optimal_plan_exhaustive(problem, max_states=100)


class TestExhaustiveLazyOracle:
    def test_lazy_matches_unrestricted_optimum(self):
        """Lemma 1's consequence: restricting to lazy plans is free."""
        import random

        rng = random.Random(9)
        for __ in range(10):
            n = rng.randint(1, 2)
            costs = [
                LinearCost(rng.uniform(0.3, 1.5), rng.uniform(0, 3))
                for __ in range(n)
            ]
            arrivals = [
                tuple(rng.randint(0, 2) for __ in range(n))
                for __ in range(rng.randint(3, 7))
            ]
            problem = ProblemInstance(costs, rng.uniform(3, 9), arrivals)
            full = find_optimal_plan_exhaustive(problem)
            lazy = find_optimal_lazy_plan_exhaustive(problem)
            assert lazy.cost == pytest.approx(full.cost, abs=1e-9)

    def test_lazy_plan_is_lazy(self):
        problem = ProblemInstance(
            [LinearCost(1.0, 2.0)], 5.0, [(2,), (2,), (2,)]
        )
        result = find_optimal_lazy_plan_exhaustive(problem)
        assert result.plan.is_lazy(problem)
