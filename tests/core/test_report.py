"""Tests for trace rendering."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.report import compare_traces, render_trace_timeline
from repro.core.simulator import simulate_policy


@pytest.fixture
def problem():
    return ProblemInstance(
        [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
        limit=12.0,
        arrivals=[(1, 1)] * 80,
    )


class TestTimeline:
    def test_renders_flushes_and_totals(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        text = render_trace_timeline(
            problem, trace, table_names=("R", "S")
        )
        assert "flush[R,S]" in text
        assert f"total cost {trace.total_cost:.0f}" in text
        assert "peak backlog" in text

    def test_bucketing_caps_rows(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        text = render_trace_timeline(problem, trace, max_rows=10)
        body = [line for line in text.splitlines() if line.startswith("t=")]
        assert len(body) <= 10 + 1

    def test_default_names(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        assert "T0" in render_trace_timeline(problem, trace)

    def test_name_count_checked(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        with pytest.raises(ValueError):
            render_trace_timeline(problem, trace, table_names=("only-one",))

    def test_max_rows_below_one_rejected(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        with pytest.raises(ValueError, match="max_rows"):
            render_trace_timeline(problem, trace, max_rows=0)

    def test_indivisible_horizon_covers_every_step(self):
        """Bucketing regression: ``steps % bucket != 0`` loses nothing.

        With integer per-step costs the rendered ``cost=`` values are
        exact, so summing them over all rows must reproduce the trace's
        total -- including the forced refresh at t = horizon, which lands
        in the shorter tail bucket.
        """
        # 80 steps (horizon 79) into <= 7 rows -> bucket 12, tail of 8.
        problem = ProblemInstance(
            [LinearCost(slope=1.0), LinearCost(slope=1.0)],
            limit=50.0,
            arrivals=[(1, 1)] * 80,
        )
        trace = simulate_policy(problem, NaivePolicy())
        text = render_trace_timeline(problem, trace, max_rows=7)
        rows = [line for line in text.splitlines() if line.startswith("t=")]
        assert len(rows) <= 7
        starts = [int(row.split("|")[0].split("=")[1]) for row in rows]
        assert starts[0] == 0
        assert starts == sorted(starts)
        # Contiguous buckets: each row starts one bucket after the last.
        assert all(b - a == starts[1] for a, b in zip(starts, starts[1:]))
        assert starts[-1] < problem.horizon + 1  # tail bucket not skipped
        rendered_cost = sum(
            float(row.split("cost=")[1]) for row in rows if "cost=" in row
        )
        assert rendered_cost == pytest.approx(trace.total_cost)

    def test_tail_bucket_shows_forced_final_refresh(self):
        """A single-step tail bucket still renders the t = horizon flush."""
        # 81 steps into <= 41 rows -> bucket 2, tail bucket = {t=80} alone.
        problem = ProblemInstance(
            [LinearCost(slope=1.0), LinearCost(slope=1.0)],
            limit=50.0,
            arrivals=[(1, 1)] * 81,
        )
        trace = simulate_policy(problem, NaivePolicy())
        text = render_trace_timeline(problem, trace, max_rows=41)
        rows = [line for line in text.splitlines() if line.startswith("t=")]
        assert len(rows) == 41
        assert rows[-1].startswith("t=   80")
        assert "flush[" in rows[-1]

    def test_asymmetric_plan_shows_single_table_flushes(self, problem):
        trace = simulate_policy(problem, OnlinePolicy())
        text = render_trace_timeline(
            problem, trace, max_rows=200, table_names=("R", "S")
        )
        # ONLINE flushes the cheap table alone at least once.
        assert "flush[S]" in text or "flush[R]" in text


class TestCompare:
    def test_table_shape(self, problem):
        traces = {
            "NAIVE": simulate_policy(problem, NaivePolicy()),
            "ONLINE": simulate_policy(problem, OnlinePolicy()),
        }
        text = compare_traces(problem, traces)
        assert "NAIVE" in text and "ONLINE" in text
        assert "vs best" in text
        # The best plan shows ratio 1.000.
        assert "1.000" in text

    def test_empty_rejected(self, problem):
        with pytest.raises(ValueError):
            compare_traces(problem, {})
