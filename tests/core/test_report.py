"""Tests for trace rendering."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.report import compare_traces, render_trace_timeline
from repro.core.simulator import simulate_policy


@pytest.fixture
def problem():
    return ProblemInstance(
        [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
        limit=12.0,
        arrivals=[(1, 1)] * 80,
    )


class TestTimeline:
    def test_renders_flushes_and_totals(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        text = render_trace_timeline(
            problem, trace, table_names=("R", "S")
        )
        assert "flush[R,S]" in text
        assert f"total cost {trace.total_cost:.0f}" in text
        assert "peak backlog" in text

    def test_bucketing_caps_rows(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        text = render_trace_timeline(problem, trace, max_rows=10)
        body = [line for line in text.splitlines() if line.startswith("t=")]
        assert len(body) <= 10 + 1

    def test_default_names(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        assert "T0" in render_trace_timeline(problem, trace)

    def test_name_count_checked(self, problem):
        trace = simulate_policy(problem, NaivePolicy())
        with pytest.raises(ValueError):
            render_trace_timeline(problem, trace, table_names=("only-one",))

    def test_asymmetric_plan_shows_single_table_flushes(self, problem):
        trace = simulate_policy(problem, OnlinePolicy())
        text = render_trace_timeline(
            problem, trace, max_rows=200, table_names=("R", "S")
        )
        # ONLINE flushes the cheap table alone at least once.
        assert "flush[S]" in text or "flush[R]" in text


class TestCompare:
    def test_table_shape(self, problem):
        traces = {
            "NAIVE": simulate_policy(problem, NaivePolicy()),
            "ONLINE": simulate_policy(problem, OnlinePolicy()),
        }
        text = compare_traces(problem, traces)
        assert "NAIVE" in text and "ONLINE" in text
        assert "vs best" in text
        # The best plan shows ratio 1.000.
        assert "1.000" in text

    def test_empty_rejected(self, problem):
        with pytest.raises(ValueError):
            compare_traces(problem, {})
