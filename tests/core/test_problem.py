"""Unit tests for the problem-instance model (Section 2)."""

import pytest

from repro.core.costfuncs import LinearCost, TabulatedCost
from repro.core.problem import (
    ProblemInstance,
    add_vectors,
    is_nonnegative,
    sub_vectors,
    zero_vector,
)


def two_table_instance(limit=12.0, steps=10):
    return ProblemInstance(
        [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
        limit=limit,
        arrivals=[(1, 2)] * steps,
    )


class TestVectorHelpers:
    def test_zero_vector(self):
        assert zero_vector(3) == (0, 0, 0)

    def test_add_sub_roundtrip(self):
        a, b = (3, 4), (1, 2)
        assert sub_vectors(add_vectors(a, b), b) == a

    def test_strict_zip(self):
        with pytest.raises(ValueError):
            add_vectors((1, 2), (1,))

    def test_is_nonnegative(self):
        assert is_nonnegative((0, 1, 2))
        assert not is_nonnegative((0, -1))


class TestConstruction:
    def test_basic_properties(self):
        prob = two_table_instance(steps=10)
        assert prob.n == 2
        assert prob.horizon == 9
        assert prob.total_arrivals() == (10, 20)

    def test_rejects_empty_costs(self):
        with pytest.raises(ValueError):
            ProblemInstance([], 1.0, [(1,)])

    def test_rejects_negative_limit(self):
        with pytest.raises(ValueError):
            ProblemInstance([LinearCost(1.0)], -1.0, [(1,)])

    def test_rejects_empty_arrivals(self):
        with pytest.raises(ValueError):
            ProblemInstance([LinearCost(1.0)], 1.0, [])

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            ProblemInstance([LinearCost(1.0)], 1.0, [(1, 2)])

    def test_rejects_negative_arrivals(self):
        with pytest.raises(ValueError):
            ProblemInstance([LinearCost(1.0)], 1.0, [(-1,)])

    def test_validate_flag_checks_cost_functions(self):
        class Bad(LinearCost):
            def cost(self, k):
                return float(k * k)

        with pytest.raises(ValueError):
            ProblemInstance([Bad(1.0)], 1.0, [(1,)], validate=True)


class TestCostAndFullness:
    def test_refresh_cost_sums_components(self):
        prob = two_table_instance()
        # f1(2) = 5 + 0.2; f2(4) = 1.0
        assert prob.refresh_cost((2, 4)) == pytest.approx(6.2)

    def test_zero_state_never_full(self):
        prob = two_table_instance(limit=0.0)
        assert not prob.is_full((0, 0))

    def test_fullness_threshold(self):
        prob = two_table_instance(limit=6.2)
        assert not prob.is_full((2, 4))  # exactly at the limit
        assert prob.is_full((2, 5))


class TestArrivalStatistics:
    def test_future_arrivals(self):
        prob = two_table_instance(steps=4)  # arrivals at t = 0..3
        assert prob.future_arrivals(-1) == (4, 8)
        assert prob.future_arrivals(1) == (2, 4)
        assert prob.future_arrivals(3) == (0, 0)
        assert prob.future_arrivals(99) == (0, 0)

    def test_max_step_arrival(self):
        prob = ProblemInstance(
            [LinearCost(1.0)], 10.0, [(3,), (1,), (7,), (2,)]
        )
        assert prob.max_step_arrival(0) == 7

    def test_batch_bounds(self):
        prob = two_table_instance(limit=12.0)
        # table 0: max{b : 0.1b + 5 <= 12} = 70, plus m_0 = 1.
        # table 1: max{b : 0.25b <= 12} = 48, plus m_1 = 2.
        assert prob.batch_bounds() == (71, 50)

    def test_min_batch_rates_linear(self):
        prob = two_table_instance(limit=12.0)
        rates = prob.min_batch_rates()
        # Cheapest rate achieved at the biggest batch.
        assert rates[0] == pytest.approx((0.1 * 71 + 5) / 71)
        assert rates[1] == pytest.approx(0.25)

    def test_min_batch_rates_lower_bound_property(self):
        # Rate * k must never exceed f(k) for any feasible k.
        f = TabulatedCost([(5, 7.0), (10, 9.0), (50, 20.0)])
        prob = ProblemInstance([f], limit=15.0, arrivals=[(2,)] * 5)
        rate = prob.min_batch_rates()[0]
        for k in range(1, prob.batch_bounds()[0] + 1):
            assert rate * k <= f(k) + 1e-9


class TestInstanceSurgery:
    def test_truncated(self):
        prob = two_table_instance(steps=10)
        short = prob.truncated(4)
        assert short.horizon == 4
        assert short.total_arrivals() == (5, 10)
        with pytest.raises(ValueError):
            prob.truncated(99)

    def test_extended_periodic(self):
        prob = ProblemInstance(
            [LinearCost(1.0)], 10.0, [(1,), (2,), (3,)]
        )
        longer = prob.extended_periodic(7)
        assert longer.horizon == 7
        assert [a[0] for a in longer.arrivals] == [1, 2, 3, 1, 2, 3, 1, 2]
        with pytest.raises(ValueError):
            prob.extended_periodic(1)

    def test_repr_mentions_shape(self):
        text = repr(two_table_instance())
        assert "n=2" in text and "C=12.0" in text
