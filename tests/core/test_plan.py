"""Unit tests for plans, validity, and the L/G/M predicates."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.plan import Plan
from repro.core.problem import ProblemInstance


@pytest.fixture
def problem():
    # f1 = 0.1k + 5, f2 = 0.25k, C = 12, arrivals (1, 2) for 6 steps.
    return ProblemInstance(
        [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
        limit=12.0,
        arrivals=[(1, 2)] * 6,
    )


def flush_at_end(problem):
    """The trivially valid plan: do nothing, flush everything at T."""
    actions = [(0, 0)] * problem.horizon + [problem.total_arrivals()]
    return Plan(actions)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Plan([])

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            Plan([(1, 2), (1,)])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Plan([(1, -2)])

    def test_container_protocol(self):
        plan = Plan([(1, 2), (0, 0)])
        assert len(plan) == 2
        assert plan[0] == (1, 2)
        assert list(plan) == [(1, 2), (0, 0)]
        assert plan.horizon == 1
        assert plan.n == 2

    def test_equality_and_hash(self):
        assert Plan([(1, 2)]) == Plan([(1, 2)])
        assert Plan([(1, 2)]) != Plan([(2, 1)])
        assert hash(Plan([(1, 2)])) == hash(Plan([(1, 2)]))


class TestStatesAndCost:
    def test_pre_and_post_states(self, problem):
        plan = flush_at_end(problem)
        pre = plan.pre_action_states(problem)
        post = plan.post_action_states(problem)
        assert pre[0] == (1, 2)
        assert pre[-1] == (6, 12)
        assert post[-1] == (0, 0)
        assert post[2] == (3, 6)

    def test_cost_sums_actions(self, problem):
        plan = flush_at_end(problem)
        # Only the final action costs anything: f1(6) + f2(12) = 5.6 + 3.0
        assert plan.cost(problem) == pytest.approx(8.6)

    def test_action_count(self, problem):
        plan = Plan([(1, 0), (0, 2), (0, 0), (0, 0), (0, 0), (5, 10)])
        assert plan.action_count(0) == 2
        assert plan.action_count(1) == 2

    def test_shape_mismatch_rejected(self, problem):
        with pytest.raises(ValueError):
            Plan([(0, 0)]).cost(problem)
        three_wide = ProblemInstance(
            [LinearCost(1.0)] * 3, 10.0, [(0, 0, 0)] * 6
        )
        with pytest.raises(ValueError):
            flush_at_end(problem).cost(three_wide)


class TestValidity:
    def test_flush_at_end_valid_when_limit_big(self, problem):
        # Final state (6, 12) costs 8.6 <= 12, and intermediate states are
        # cheaper, so the do-nothing plan is valid.
        flush_at_end(problem).check_valid(problem)

    def test_overdraw_rejected(self, problem):
        plan = Plan([(5, 0)] + [(0, 0)] * 4 + [(1, 12)])
        with pytest.raises(ValueError, match="removes more"):
            plan.check_valid(problem)

    def test_full_post_state_rejected(self):
        prob = ProblemInstance(
            [LinearCost(slope=1.0)], limit=3.0, arrivals=[(2,)] * 4
        )
        # Doing nothing leaves 4 pending at t=1: f = 4 > 3.
        plan = Plan([(0,), (0,), (0,), (8,)])
        with pytest.raises(ValueError, match="is full"):
            plan.check_valid(prob)

    def test_nonempty_final_state_rejected(self, problem):
        plan = Plan([(0, 0)] * 5 + [(6, 11)])  # leaves one behind
        with pytest.raises(ValueError, match="empty all delta tables"):
            plan.check_valid(problem)

    def test_is_valid_boolean(self, problem):
        assert flush_at_end(problem).is_valid(problem)
        assert not Plan([(9, 9)] * 6).is_valid(problem)


class TestStructuralPredicates:
    def test_flush_at_end_is_lazy(self, problem):
        # No intermediate state is full, and the plan never acts before T.
        assert flush_at_end(problem).is_lazy(problem)

    def test_early_action_on_nonfull_state_not_lazy(self, problem):
        plan = Plan([(1, 2)] + [(0, 0)] * 4 + [(5, 10)])
        assert not plan.is_lazy(problem)

    def test_greedy_requires_empty_or_ignore(self, problem):
        greedy = flush_at_end(problem)
        assert greedy.is_greedy(problem)
        partial = Plan([(0, 1)] + [(0, 0)] * 4 + [(6, 11)])
        assert not partial.is_greedy(problem)

    def test_minimality(self):
        prob = ProblemInstance(
            [LinearCost(slope=1.0), LinearCost(slope=1.0)],
            limit=3.0,
            arrivals=[(2, 2), (0, 0), (2, 2)],
        )
        # At t=0 the state (2,2) costs 4 > 3: emptying one table suffices,
        # so emptying both is valid but NOT minimal.
        maximal = Plan([(2, 2), (0, 0), (2, 2)])
        maximal.check_valid(prob)
        assert not maximal.is_minimal(prob)
        minimal = Plan([(2, 0), (0, 0), (2, 4)])
        minimal.check_valid(prob)
        assert minimal.is_minimal(prob)
        # The final action is exempt from minimality.
        assert minimal.is_lgm(prob)

    def test_lgm_composite(self, problem):
        assert flush_at_end(problem).is_lgm(problem)
