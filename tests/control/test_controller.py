"""Controller wiring tests: lookup, attach/detach, tick gating."""

import pytest

from repro.control import Controller, build_controller
from repro.control.governors import Governor


class RecordingGovernor(Governor):
    def __init__(self, name, enabled=True):
        super().__init__(enabled)
        self.name = name
        self.attached = 0
        self.detached = 0
        self.ticks = []

    def attach(self):
        self.attached += 1

    def detach(self):
        self.detached += 1

    def tick(self, t):
        self.ticks.append(t)


class FakeCoordinator:
    def __init__(self, database):
        self.database = database

    def maintainer(self, name):
        raise KeyError(name)


class FakeDatabase:
    def __init__(self, workers=1, block_size=None):
        self._workers = workers
        self.block_size = block_size

    @property
    def workers(self):
        return self._workers

    def set_workers(self, workers):
        self._workers = int(workers)
        return self._workers

    def set_block_size(self, block_size):
        self.block_size = block_size
        return self.block_size


class TestController:
    def test_governor_lookup(self):
        a, b = RecordingGovernor("a"), RecordingGovernor("b")
        controller = Controller([a, b])
        assert controller.governor("a") is a
        assert controller.governor("b") is b
        with pytest.raises(KeyError):
            controller.governor("missing")

    def test_attach_is_idempotent_and_skips_disabled(self):
        on = RecordingGovernor("on")
        off = RecordingGovernor("off", enabled=False)
        controller = Controller([on, off])
        controller.attach()
        controller.attach()
        assert on.attached == 1
        assert off.attached == 0

    def test_detach_is_idempotent_and_safe_unattached(self):
        governor = RecordingGovernor("g")
        controller = Controller([governor])
        controller.detach()  # never attached: no-op
        assert governor.detached == 0
        controller.attach()
        controller.detach()
        controller.detach()
        assert governor.detached == 1

    def test_context_manager_attaches_and_detaches(self):
        governor = RecordingGovernor("g")
        controller = Controller([governor])
        with controller as entered:
            assert entered is controller
            assert governor.attached == 1
        assert governor.detached == 1

    def test_tick_skips_disabled_governors(self):
        on = RecordingGovernor("on")
        off = RecordingGovernor("off", enabled=False)
        controller = Controller([on, off])
        controller.tick(1)
        controller.tick(2)
        assert on.ticks == [1, 2]
        assert off.ticks == []

    def test_repr_shows_enablement(self):
        controller = Controller(
            [RecordingGovernor("a"), RecordingGovernor("b", enabled=False)]
        )
        assert repr(controller) == "Controller(a=on, b=off)"


class TestBuildController:
    def test_builds_all_three_governors(self):
        controller = build_controller(FakeCoordinator(FakeDatabase()))
        names = [g.name for g in controller.governors]
        assert names == ["policy", "workers", "block_size"]
        assert all(g.enabled for g in controller.governors)

    def test_flags_disable_but_keep_governors(self):
        controller = build_controller(
            FakeCoordinator(FakeDatabase()),
            policy=False, workers=False, block=False,
        )
        assert [g.name for g in controller.governors] == [
            "policy", "workers", "block_size",
        ]
        assert not any(g.enabled for g in controller.governors)

    def test_options_pass_through(self):
        controller = build_controller(
            FakeCoordinator(FakeDatabase(block_size=4096)),
            policy_options={"escalate_after": 7},
            worker_options={"max_workers": 3},
            block_options={"min_block": 128},
        )
        assert controller.governor("policy").escalate_after == 7
        assert controller.governor("workers").max_workers == 3
        block = controller.governor("block_size")
        assert block.min_block == 128
        assert block.max_block == 4096
