"""Governor unit tests: synthetic signals in, bounded actuations out."""

import pytest

from repro import obs
from repro.control import events as control_events
from repro.control.governors import (
    NAIVE,
    ONLINE,
    RECEDING,
    BlockSizeGovernor,
    PolicyGovernor,
    WorkerGovernor,
    _mode_of,
)
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.receding import RecedingHorizonPolicy
from repro.obs import calibration as obs_calibration
from repro.obs import slo


class FakeMaintainer:
    def __init__(self, policy):
        self.policy = policy

    def set_policy(self, policy):
        previous = self.policy
        self.policy = policy
        return previous


class FakeCoordinator:
    def __init__(self, **maintainers):
        self._maintainers = maintainers

    def maintainer(self, name):
        return self._maintainers[name]


class FakeDatabase:
    def __init__(self, workers=1, block_size=None):
        self._workers = workers
        self.block_size = block_size

    @property
    def workers(self):
        return self._workers

    def set_workers(self, workers):
        self._workers = int(workers)
        return self._workers

    def set_block_size(self, block_size):
        self.block_size = block_size
        return self.block_size


class TestModeOf:
    def test_known_policies(self):
        assert _mode_of(NaivePolicy()) == NAIVE
        assert _mode_of(OnlinePolicy()) == ONLINE
        assert _mode_of(RecedingHorizonPolicy()) == RECEDING


class TestPolicyGovernor:
    def _pressure(self, governor, view, steps):
        for t in steps:
            governor._on_slo(
                slo.SloEvent(
                    kind=slo.BREACH, limit=10.0, cost=12.0, t=t,
                    source=f"ivm:{view}",
                )
            )

    def test_escalates_to_naive_under_pressure(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(
            FakeCoordinator(v=maintainer), escalate_after=3, window=10
        )
        with control_events.collecting() as log:
            self._pressure(governor, "v", [4, 5, 6])
            governor.tick(7)
        assert isinstance(maintainer.policy, NaivePolicy)
        (event,) = log.events()
        assert (event.governor, event.old, event.new) == ("policy", ONLINE, NAIVE)
        assert event.view == "v"
        assert event.signals["pressure_events"] == 3.0

    def test_pressure_below_threshold_holds(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(
            FakeCoordinator(v=maintainer), escalate_after=3, window=10
        )
        with control_events.collecting() as log:
            self._pressure(governor, "v", [4, 5])
            governor.tick(6)
        assert isinstance(maintainer.policy, OnlinePolicy)
        assert not log.events()

    def test_stale_pressure_outside_window_ignored(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(
            FakeCoordinator(v=maintainer), escalate_after=3, window=5
        )
        with control_events.collecting() as log:
            self._pressure(governor, "v", [1, 2, 3])
            governor.tick(50)  # all events fell out of the window
        assert isinstance(maintainer.policy, OnlinePolicy)
        assert not log.events()

    def test_drift_moves_online_to_receding(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(FakeCoordinator(v=maintainer))
        with control_events.collecting() as log:
            governor._on_drift(
                obs_calibration.DriftEvent(
                    view="v", alias="PS", t=9, rolling_rel_err=0.8,
                    threshold=0.5, window=16,
                )
            )
            governor.tick(10)
        assert isinstance(maintainer.policy, RecedingHorizonPolicy)
        (event,) = log.events()
        assert event.new == RECEDING

    def test_quiet_cooldown_relaxes_back(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(
            FakeCoordinator(v=maintainer),
            escalate_after=1, window=5, cooldown=10,
        )
        with control_events.collecting() as log:
            self._pressure(governor, "v", [2])
            governor.tick(3)
            assert isinstance(maintainer.policy, NaivePolicy)
            governor.tick(4)  # still within cooldown: hold
            assert isinstance(maintainer.policy, NaivePolicy)
            governor.tick(13)  # quiet for >= cooldown: relax
        assert isinstance(maintainer.policy, OnlinePolicy)
        assert [e.new for e in log.events()] == [NAIVE, ONLINE]

    def test_removed_view_is_skipped(self):
        governor = PolicyGovernor(FakeCoordinator(), escalate_after=1)
        with control_events.collecting() as log:
            self._pressure(governor, "gone", [1])
            governor.tick(2)  # KeyError from the coordinator: no crash
        assert not log.events()

    def test_ignores_non_ivm_sources(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(
            FakeCoordinator(v=maintainer), escalate_after=1
        )
        governor._on_slo(
            slo.SloEvent(
                kind=slo.BREACH, limit=10.0, cost=12.0, t=1,
                source="pubsub:v",
            )
        )
        with control_events.collecting() as log:
            governor.tick(2)
        assert not log.events()

    def test_attach_via_live_alert_hub(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(
            FakeCoordinator(paper=maintainer), escalate_after=2, window=10
        )
        governor.attach()
        try:
            slo.observe_refresh(10.0, 12.0, t=1, source="ivm:paper")
            slo.observe_refresh(10.0, 12.0, t=2, source="ivm:paper")
            with control_events.collecting():
                governor.tick(3)
        finally:
            governor.detach()
        assert isinstance(maintainer.policy, NaivePolicy)

    def test_disabled_never_attaches_or_acts(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(
            FakeCoordinator(paper=maintainer), enabled=False, escalate_after=1
        )
        governor.attach()
        try:
            slo.observe_refresh(10.0, 12.0, t=1, source="ivm:paper")
            governor.tick(2)
        finally:
            governor.detach()
        assert isinstance(maintainer.policy, OnlinePolicy)

    def test_counts_switches_metric(self):
        maintainer = FakeMaintainer(OnlinePolicy())
        governor = PolicyGovernor(
            FakeCoordinator(v=maintainer), escalate_after=1
        )
        with obs.recording() as rec, control_events.collecting():
            self._pressure(governor, "v", [1])
            governor.tick(2)
        assert rec.registry.get("control.policy.switches").value == 1

    def test_validates_thresholds(self):
        with pytest.raises(ValueError):
            PolicyGovernor(FakeCoordinator(), escalate_after=0)
        with pytest.raises(ValueError):
            PolicyGovernor(FakeCoordinator(), window=0)


class TestWorkerGovernor:
    def test_grows_on_merge_wait(self):
        db = FakeDatabase(workers=2)
        governor = WorkerGovernor(db, max_workers=4, grow_wait_ms=1.0)
        with obs.recording() as rec, control_events.collecting() as log:
            rec.counter("engine.parallel.tasks", 8)
            for _ in range(4):
                rec.observe("engine.parallel.merge_wait_ms", 3.0)
            rec.gauge_max("engine.parallel.queue_depth", 7)
            governor.tick(1)
        assert db.workers == 3
        (event,) = log.events()
        assert (event.old, event.new) == (2, 3)
        assert event.signals["merge_wait_ms_mean"] == 3.0
        assert event.signals["queue_depth_peak"] == 7.0
        assert rec.registry.get("control.workers.resizes").value == 1
        assert rec.registry.get("control.workers.size").value == 3

    def test_shrinks_when_pool_idles(self):
        db = FakeDatabase(workers=3)
        governor = WorkerGovernor(db, min_workers=1, shrink_wait_ms=0.05)
        with obs.recording() as rec, control_events.collecting():
            rec.counter("engine.parallel.tasks", 10)
            rec.observe("engine.parallel.merge_wait_ms", 0.0)
            governor.tick(1)
        assert db.workers == 2

    def test_holds_without_task_flow(self):
        db = FakeDatabase(workers=3)
        governor = WorkerGovernor(db)
        with obs.recording(), control_events.collecting() as log:
            governor.tick(1)  # no metrics at all this interval
        assert db.workers == 3
        assert not log.events()

    def test_holds_without_recorder(self):
        db = FakeDatabase(workers=3)
        governor = WorkerGovernor(db)
        governor.tick(1)
        assert db.workers == 3

    def test_bounded_at_max(self):
        db = FakeDatabase(workers=4)
        governor = WorkerGovernor(db, max_workers=4, grow_wait_ms=1.0)
        with obs.recording() as rec, control_events.collecting() as log:
            rec.counter("engine.parallel.tasks", 4)
            rec.observe("engine.parallel.merge_wait_ms", 9.0)
            governor.tick(1)
        assert db.workers == 4
        assert not log.events()

    def test_deltas_reset_between_ticks(self):
        db = FakeDatabase(workers=2)
        governor = WorkerGovernor(db, grow_wait_ms=1.0, shrink_wait_ms=0.05)
        with obs.recording() as rec, control_events.collecting() as log:
            rec.counter("engine.parallel.tasks", 4)
            rec.observe("engine.parallel.merge_wait_ms", 5.0)
            governor.tick(1)
            assert db.workers == 3
            governor.tick(2)  # no new tasks: same totals, zero delta
        assert db.workers == 3
        assert len(log.events()) == 1

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            WorkerGovernor(FakeDatabase(), min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            WorkerGovernor(FakeDatabase(), min_workers=-1)


class TestBlockSizeGovernor:
    def test_halves_on_low_mean_fill(self):
        db = FakeDatabase(block_size=2048)
        governor = BlockSizeGovernor(db, min_block=64)
        with obs.recording() as rec, control_events.collecting() as log:
            for _ in range(3):
                rec.observe("engine.block.fill", 0.1)
            governor.tick(1)
        assert db.block_size == 1024
        (event,) = log.events()
        assert (event.old, event.new) == (2048, 1024)
        assert rec.registry.get("control.block.resizes").value == 1
        assert rec.registry.get("control.block.size").value == 1024

    def test_halves_on_low_fill_counter(self):
        db = FakeDatabase(block_size=512)
        governor = BlockSizeGovernor(db, low_fill_after=1)
        with obs.recording() as rec, control_events.collecting():
            rec.counter("engine.block.low_fill")
            governor.tick(1)
        assert db.block_size == 256

    def test_floors_at_min_block(self):
        db = FakeDatabase(block_size=96)
        governor = BlockSizeGovernor(db, min_block=64)
        with obs.recording() as rec, control_events.collecting():
            rec.observe("engine.block.fill", 0.05)
            rec.observe("engine.block.fill", 0.05)
            governor.tick(1)
        assert db.block_size == 64

    def test_regrows_in_near_full_band(self):
        db = FakeDatabase(block_size=2048)
        governor = BlockSizeGovernor(db)
        db.block_size = 512  # shrunk since construction
        with obs.recording() as rec, control_events.collecting():
            rec.observe("engine.block.fill", 0.97)
            rec.observe("engine.block.fill", 0.99)
            governor.tick(1)
        assert db.block_size == 1024

    def test_fanout_fill_above_band_does_not_grow(self):
        # Join fan-out can push per-query fill far past 1; that is not
        # evidence the current block size is tight.
        db = FakeDatabase(block_size=2048)
        governor = BlockSizeGovernor(db)
        db.block_size = 512
        with obs.recording() as rec, control_events.collecting() as log:
            rec.observe("engine.block.fill", 8.0)
            rec.observe("engine.block.fill", 6.0)
            governor.tick(1)
        assert db.block_size == 512
        assert not log.events()

    def test_never_grows_past_construction_size(self):
        db = FakeDatabase(block_size=512)
        governor = BlockSizeGovernor(db)
        with obs.recording() as rec, control_events.collecting() as log:
            rec.observe("engine.block.fill", 0.99)
            rec.observe("engine.block.fill", 0.99)
            governor.tick(1)
        assert db.block_size == 512
        assert not log.events()

    def test_min_samples_guard(self):
        db = FakeDatabase(block_size=2048)
        governor = BlockSizeGovernor(db, min_samples=2)
        with obs.recording() as rec, control_events.collecting() as log:
            rec.observe("engine.block.fill", 0.05)  # one noisy query
            governor.tick(1)
        assert db.block_size == 2048
        assert not log.events()

    def test_row_mode_left_alone(self):
        db = FakeDatabase(block_size=None)
        governor = BlockSizeGovernor(db)
        with obs.recording() as rec, control_events.collecting() as log:
            rec.observe("engine.block.fill", 0.05)
            rec.observe("engine.block.fill", 0.05)
            governor.tick(1)
        assert db.block_size is None
        assert not log.events()

    def test_validates_options(self):
        with pytest.raises(ValueError):
            BlockSizeGovernor(FakeDatabase(block_size=64), min_block=0)
        with pytest.raises(ValueError):
            BlockSizeGovernor(
                FakeDatabase(block_size=64),
                shrink_fill=0.9, grow_fill=0.5,
            )
