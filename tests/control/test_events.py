"""Tests for ControlEvent / ControlLog / the global sink / rendering."""

import json

import pytest

from repro import obs
from repro.control import events as control_events
from repro.control.events import (
    ControlEvent,
    ControlLog,
    collecting,
    emit,
    get_control_log,
    render_control_log,
    set_control_log,
)


def _event(**overrides):
    base = dict(
        t=5,
        governor="policy",
        setting="policy",
        old="online",
        new="naive",
        reason="slo pressure",
        signals={"pressure_events": 3.0},
        view="paper_view",
        applied=True,
    )
    base.update(overrides)
    return ControlEvent(**base)


class TestControlEvent:
    def test_dict_roundtrip(self):
        event = _event()
        clone = ControlEvent.from_dict(event.to_dict())
        assert clone == event

    def test_roundtrip_through_json(self):
        event = _event(old=2048, new=1024, governor="block_size", view=None)
        line = json.dumps(event.to_dict(), sort_keys=True)
        clone = ControlEvent.from_dict(json.loads(line))
        assert clone == event

    def test_view_omitted_from_dict_when_none(self):
        assert "view" not in _event(view=None).to_dict()

    def test_from_dict_defaults(self):
        minimal = ControlEvent.from_dict(
            {"governor": "workers", "setting": "workers"}
        )
        assert minimal.t is None
        assert minimal.applied is True
        assert minimal.signals == {}
        assert minimal.view is None


class TestControlLog:
    def test_bounded_ring_counts_dropped(self):
        log = ControlLog(capacity=3)
        for t in range(5):
            log.record(_event(t=t))
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.t for e in log.events()] == [2, 3, 4]

    def test_filtered(self):
        log = ControlLog()
        log.record(_event(governor="policy", view="a"))
        log.record(_event(governor="workers", view=None))
        log.record(_event(governor="policy", view="b"))
        assert len(log.filtered(governor="policy")) == 2
        assert len(log.filtered(view="b")) == 1
        assert len(log.filtered(governor="workers", view="b")) == 0


class TestGlobalSink:
    def test_set_returns_previous_and_collecting_restores(self):
        assert get_control_log() is None
        outer = ControlLog()
        assert set_control_log(outer) is None
        try:
            with collecting() as inner:
                assert get_control_log() is inner
                emit(_event())
            assert get_control_log() is outer
            assert len(inner) == 1
            assert len(outer) == 0
        finally:
            set_control_log(None)

    def test_emit_without_log_or_recorder_is_safe(self):
        assert get_control_log() is None
        emit(_event())  # neither sink exists: must not raise

    def test_emit_metrics(self):
        with obs.recording() as rec, collecting():
            emit(_event(applied=True))
            emit(_event(applied=False))
        assert rec.registry.get("control.events").value == 2
        assert rec.registry.get("control.actuations").value == 1


class TestRender:
    def test_empty(self):
        assert render_control_log([]) == "control log: no events"

    def test_empty_with_filters_names_scope(self):
        out = render_control_log([_event()], governor="workers")
        assert out == "control log: no events matching governor=workers"

    def test_tree_shape(self):
        out = render_control_log([_event()])
        lines = out.splitlines()
        assert lines[0] == "control log: 1 event(s)"
        assert "t=5 policy view=paper_view: set policy 'online' -> 'naive'" in lines[1]
        assert lines[2].startswith("├─ reason: slo pressure")
        assert "signals: pressure_events=3.000" in lines[3]
        assert lines[4] == "└─ applied: yes"

    def test_held_events_say_so(self):
        out = render_control_log([_event(applied=False)])
        assert "held policy" in out
        assert "applied: no" in out

    def test_filters(self):
        events = [
            _event(governor="policy", view="a"),
            _event(governor="block_size", view=None, t=9),
        ]
        out = render_control_log(events, governor="block_size")
        assert "t=9 block_size" in out
        assert "view=a" not in out
