"""Tests for the arrival-sequence generators."""

import pytest

from repro.workloads.arrivals import (
    FAST_STABLE,
    FAST_UNSTABLE,
    SLOW_STABLE,
    StreamParams,
    bursty_arrivals,
    periodic_arrivals,
    poisson_arrivals,
    stochastic_arrivals,
    uniform_arrivals,
)


class TestUniform:
    def test_constant_rows(self):
        seq = uniform_arrivals((3, 1), 5)
        assert len(seq) == 5
        assert all(row == (3, 1) for row in seq)

    def test_guards(self):
        with pytest.raises(ValueError):
            uniform_arrivals((1,), 0)
        with pytest.raises(ValueError):
            uniform_arrivals((-1,), 5)


class TestStochastic:
    def test_deterministic_given_seed(self):
        a = stochastic_arrivals((SLOW_STABLE,), 50, seed=3)
        b = stochastic_arrivals((SLOW_STABLE,), 50, seed=3)
        assert a == b

    def test_rate_parameter_controls_activity(self):
        slow = stochastic_arrivals((SLOW_STABLE,), 2000, seed=4)
        fast = stochastic_arrivals((FAST_STABLE,), 2000, seed=4)
        active_slow = sum(1 for row in slow if row[0])
        active_fast = sum(1 for row in fast if row[0])
        # p = 0.5 vs p = 0.9 must be clearly separated.
        assert active_slow / 2000 == pytest.approx(0.5, abs=0.05)
        assert active_fast / 2000 == pytest.approx(0.9, abs=0.05)

    def test_sigma_controls_variance(self):
        stable = stochastic_arrivals((FAST_STABLE,), 3000, seed=5)
        unstable = stochastic_arrivals((FAST_UNSTABLE,), 3000, seed=5)

        def variance(seq):
            xs = [row[0] for row in seq]
            mean = sum(xs) / len(xs)
            return sum((x - mean) ** 2 for x in xs) / len(xs)

        assert variance(unstable) > 3 * variance(stable)

    def test_counts_positive_when_active(self):
        seq = stochastic_arrivals((FAST_STABLE,), 500, seed=6)
        assert all(row[0] >= 0 for row in seq)
        assert any(row[0] > 0 for row in seq)

    def test_scale_multiplies(self):
        plain = stochastic_arrivals((SLOW_STABLE,), 100, seed=7)
        scaled = stochastic_arrivals(
            (SLOW_STABLE,), 100, seed=7, scale=(80,)
        )
        assert all(s == (p[0] * 80,) for p, s in zip(plain, scaled))

    def test_sigma_zero_is_deterministic_count(self):
        params = StreamParams(p=1.0, mu=2.0, sigma=0.0)
        seq = stochastic_arrivals((params,), 20, seed=8)
        assert all(row == (2,) for row in seq)

    def test_scale_width_checked(self):
        with pytest.raises(ValueError):
            stochastic_arrivals((SLOW_STABLE,), 10, scale=(1, 2))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            StreamParams(p=1.5)
        with pytest.raises(ValueError):
            StreamParams(sigma=-1)


class TestPeriodic:
    def test_repeats_pattern(self):
        seq = periodic_arrivals([(1,), (2,), (3,)], 7)
        assert [row[0] for row in seq] == [1, 2, 3, 1, 2, 3, 1]

    def test_guards(self):
        with pytest.raises(ValueError):
            periodic_arrivals([], 5)
        with pytest.raises(ValueError):
            periodic_arrivals([(1,)], 0)


class TestPoisson:
    def test_mean_roughly_matches(self):
        seq = poisson_arrivals((4.0,), 3000, seed=9)
        mean = sum(row[0] for row in seq) / len(seq)
        assert mean == pytest.approx(4.0, rel=0.1)

    def test_zero_mean_is_silent(self):
        seq = poisson_arrivals((0.0,), 50, seed=9)
        assert all(row == (0,) for row in seq)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals((-1.0,), 10)


class TestBursty:
    def test_bursts_present(self):
        seq = bursty_arrivals((2,), 100, burst_every=10, burst_factor=5, seed=1)
        counts = {row[0] for row in seq}
        assert counts == {2, 10}
        burst_steps = sum(1 for row in seq if row[0] == 10)
        assert 5 <= burst_steps <= 15

    def test_guards(self):
        with pytest.raises(ValueError):
            bursty_arrivals((1,), 10, burst_every=0, burst_factor=2)
        with pytest.raises(ValueError):
            bursty_arrivals((1,), 10, burst_every=5, burst_factor=0)
