"""Tests for refresh-SLO tracking: metrics, callbacks, ground truth."""

import pytest

from repro import obs
from repro.obs import slo
from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import execute_plan, simulate_policy
from repro.core.astar import find_optimal_lgm_plan
from repro.core.report import slo_summary


def _instance(steps=60, limit=12.0):
    return ProblemInstance(
        [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
        limit=limit,
        arrivals=[(1, 1)] * steps,
    )


class TestClassify:
    def test_breach_above_limit(self):
        assert slo.classify(10.0, 10.1) == slo.BREACH

    def test_near_breach_band(self):
        assert slo.classify(10.0, 9.5) == slo.NEAR_BREACH
        assert slo.classify(10.0, 10.0) == slo.NEAR_BREACH

    def test_comfortable_margin_is_none(self):
        assert slo.classify(10.0, 1.0) is None
        assert slo.classify(10.0, 8.9) is None

    def test_zero_limit_never_goes_dark(self):
        # A non-positive limit is clamped (with a one-time warning)
        # instead of silently disabling the near-breach band: any
        # positive cost breaches, and even zero cost scores as a
        # near-breach, so a misconfigured SLO stays loudly visible.
        slo._invalid_limit_warned = False
        with pytest.warns(RuntimeWarning, match="not positive"):
            assert slo.classify(0.0, 1.0) == slo.BREACH
        assert slo.classify(0.0, 0.0) == slo.NEAR_BREACH
        assert slo.classify(-5.0, 0.0) == slo.NEAR_BREACH
        assert slo.classify(-5.0, 0.1) == slo.BREACH

    def test_invalid_limit_warns_once(self):
        slo._invalid_limit_warned = False
        with pytest.warns(RuntimeWarning):
            slo.classify(-1.0, 0.0)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            slo.classify(-1.0, 0.0)  # second call: no warning raised


class TestObserveRefresh:
    def test_records_margin_metrics(self):
        with obs.recording() as rec:
            slo.observe_refresh(10.0, 4.0, t=3, source="test")
        registry = rec.registry
        assert registry.get("slo.steps").value == 1
        assert registry.get("slo.refresh_margin").value == 6.0
        assert registry.get("slo.limit").value == 10.0
        assert registry.get("slo.refresh_margin.step").count == 1
        assert registry.get("slo.breaches") is None

    def test_breach_and_near_breach_counters(self):
        with obs.recording() as rec:
            slo.observe_refresh(10.0, 11.0)
            slo.observe_refresh(10.0, 9.5)
            slo.observe_refresh(10.0, 2.0)
        assert rec.registry.get("slo.breaches").value == 1
        assert rec.registry.get("slo.near_breaches").value == 1
        assert rec.registry.get("slo.steps").value == 3

    def test_event_returned_with_margin(self):
        event = slo.observe_refresh(10.0, 12.5, t=7, source="unit")
        assert event.kind == slo.BREACH
        assert event.margin == pytest.approx(-2.5)
        assert "unit" in str(event) and "t=7" in str(event)

    def test_no_recorder_is_safe(self):
        assert obs.get_recorder() is None
        assert slo.observe_refresh(10.0, 1.0) is None


class TestAlertCallbacks:
    def test_callbacks_fire_without_recorder(self):
        events = []
        with slo.alerts(events.append):
            slo.observe_refresh(10.0, 11.0, source="broker")
            slo.observe_refresh(10.0, 1.0)
        assert len(events) == 1
        assert events[0].kind == slo.BREACH
        assert events[0].source == "broker"

    def test_scope_removes_callback(self):
        events = []
        with slo.alerts(events.append):
            pass
        slo.observe_refresh(10.0, 11.0)
        assert events == []

    def test_remove_unknown_callback_is_noop(self):
        slo.remove_alert(lambda e: None)


class TestSummarize:
    def test_empty_registry(self):
        summary = slo.summarize(obs.MetricsRegistry())
        assert summary["steps"] == 0
        assert summary["breaches"] == 0
        assert summary["min_margin"] is None

    def test_populated_registry(self):
        with obs.recording() as rec:
            slo.observe_refresh(10.0, 11.0)
            slo.observe_refresh(10.0, 3.0)
        summary = slo.summarize(rec.registry)
        assert summary == {
            "steps": 2,
            "breaches": 1,
            "near_breaches": 0,
            "limit": 10.0,
            "current_margin": 7.0,
            "min_margin": -1.0,
        }


class TestSimulatorGroundTruth:
    """The live counters must equal what the finished trace says."""

    def _ground_truth(self, problem, trace):
        costs = [problem.refresh_cost(pre) for pre in trace.pre_states]
        return (
            sum(1 for c in costs if slo.classify(problem.limit, c) == slo.BREACH),
            sum(
                1
                for c in costs
                if slo.classify(problem.limit, c) == slo.NEAR_BREACH
            ),
        )

    @pytest.mark.parametrize("policy", [NaivePolicy(), OnlinePolicy()])
    def test_policy_breach_counter_matches_trace(self, policy):
        problem = _instance()
        with obs.recording() as rec:
            trace = simulate_policy(problem, policy)
        breaches, near = self._ground_truth(problem, trace)
        counted = rec.registry.get("slo.breaches")
        near_counted = rec.registry.get("slo.near_breaches")
        assert (counted.value if counted else 0) == breaches
        assert (near_counted.value if near_counted else 0) == near
        assert rec.registry.get("slo.steps").value == problem.horizon + 1

    def test_plan_execution_records_slo(self):
        problem = _instance(steps=30)
        plan = find_optimal_lgm_plan(problem).plan
        with obs.recording() as rec:
            trace = execute_plan(problem, plan)
        breaches, _ = self._ground_truth(problem, trace)
        counted = rec.registry.get("slo.breaches")
        assert (counted.value if counted else 0) == breaches

    def test_offline_summary_agrees_with_live_counters(self):
        problem = _instance()
        with obs.recording() as rec:
            traces = {
                "NAIVE": simulate_policy(problem, NaivePolicy()),
                "ONLINE": simulate_policy(problem, OnlinePolicy()),
            }
        table = slo_summary(problem, traces)
        total = sum(
            self._ground_truth(problem, t)[0] for t in traces.values()
        )
        counted = rec.registry.get("slo.breaches")
        assert (counted.value if counted else 0) == total
        assert "NAIVE" in table and "ONLINE" in table
        assert "breaches" in table

    def test_disabled_recording_records_nothing(self):
        problem = _instance(steps=20)
        simulate_policy(problem, NaivePolicy())  # must not raise


class TestStagedAndSummaryTable:
    def test_slo_summary_requires_traces(self):
        with pytest.raises(ValueError):
            slo_summary(_instance(), {})

    def test_staged_simulator_records_slo(self):
        from repro.staged.model import Pipeline, Stage
        from repro.staged.policies import NaiveStagedPolicy
        from repro.staged.simulator import simulate_staged

        pipeline = Pipeline(
            [
                Stage("scan", LinearCost(slope=1.0)),
                Stage("probe", LinearCost(slope=0.5)),
            ]
        )
        with obs.recording() as rec:
            simulate_staged(
                pipeline, 100.0, [3, 3, 3, 3], NaiveStagedPolicy()
            )
        assert rec.registry.get("slo.steps").value == 4
