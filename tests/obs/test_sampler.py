"""Tests for the flight recorder (ring-buffer registry sampler)."""

import threading
import time

import pytest

from repro import obs
from repro.obs.sampler import FlightRecorder
from repro.obs.tracing import read_jsonl


class TestSampling:
    def test_sample_now_snapshots_registry(self):
        recorder = obs.Recorder()
        recorder.counter("work.items", 5)
        flight = FlightRecorder(recorder, interval_s=60)
        sample = flight.sample_now()
        assert sample["metrics"]["work.items"]["value"] == 5
        assert sample["t_s"] >= 0
        assert len(flight) == 1

    def test_samples_ordered_and_independent(self):
        recorder = obs.Recorder()
        flight = FlightRecorder(recorder, interval_s=60)
        recorder.counter("work.items", 1)
        flight.sample_now()
        recorder.counter("work.items", 1)
        flight.sample_now()
        values = [
            s["metrics"]["work.items"]["value"] for s in flight.samples()
        ]
        assert values == [1, 2]

    def test_ring_buffer_bounds_memory(self):
        recorder = obs.Recorder()
        flight = FlightRecorder(recorder, interval_s=60, capacity=3)
        for i in range(10):
            recorder.gauge("step", i)
            flight.sample_now()
        assert len(flight) == 3
        kept = [s["metrics"]["step"]["value"] for s in flight.samples()]
        assert kept == [7.0, 8.0, 9.0]

    def test_validation(self):
        recorder = obs.Recorder()
        with pytest.raises(ValueError):
            FlightRecorder(recorder, interval_s=0)
        with pytest.raises(ValueError):
            FlightRecorder(recorder, capacity=0)


class TestSeries:
    def test_counter_and_histogram_series(self):
        recorder = obs.Recorder()
        flight = FlightRecorder(recorder, interval_s=60)
        flight.sample_now()  # before the metric exists: skipped
        recorder.counter("n", 2)
        recorder.observe("lat", 10.0)
        flight.sample_now()
        recorder.counter("n", 3)
        recorder.observe("lat", 20.0)
        flight.sample_now()
        assert [v for _, v in flight.series("n")] == [2, 5]
        assert [v for _, v in flight.series("lat", "p95")] == [10.0, 20.0]
        assert flight.series("missing") == []
        times = [t for t, _ in flight.series("n")]
        assert times == sorted(times)


class TestViewGauges:
    def test_samples_capture_ivm_view_metrics(self):
        """The sampler snapshots the whole registry, so the per-view
        maintenance family is in every sample and series() can extract
        backlog/cost curves per view with no extra wiring."""
        recorder = obs.Recorder()
        flight = FlightRecorder(recorder, interval_s=60)
        recorder.counter("ivm.view.v1.rounds")
        recorder.gauge("ivm.view.v1.backlog", 5.0)
        recorder.observe("ivm.view.v1.round_ms", 2.0)
        flight.sample_now()
        recorder.counter("ivm.view.v1.rounds")
        recorder.gauge("ivm.view.v1.backlog", 1.0)
        recorder.observe("ivm.view.v1.round_ms", 6.0)
        flight.sample_now()
        sample = flight.samples()[-1]["metrics"]
        assert sample["ivm.view.v1.rounds"]["value"] == 2
        assert sample["ivm.view.v1.backlog"]["value"] == 1.0
        assert sample["ivm.view.v1.backlog"]["peak"] == 5.0
        assert [v for _, v in flight.series("ivm.view.v1.backlog")] == [
            5.0,
            1.0,
        ]
        assert [
            v for _, v in flight.series("ivm.view.v1.round_ms", "max")
        ] == [2.0, 6.0]


class TestCalibrationMetrics:
    def test_samples_capture_planner_calibration_metrics(self):
        """`observe_flush` feeds the registry through the ambient
        recorder, so the sampler picks up the calibration family with no
        extra wiring -- residual-vs-time curves for free, exactly like
        the per-view gauges above."""
        from repro.obs import calibration

        recorder = obs.Recorder()
        flight = FlightRecorder(recorder, interval_s=60)
        with obs.install_in_thread(recorder):
            calibration.observe_flush(
                "v1", 0, "PS", 2, predicted_ms=2.0, actual_ms=2.5
            )
            flight.sample_now()
            calibration.observe_flush(
                "v1", 1, "PS", 1, predicted_ms=1.0, actual_ms=0.5
            )
            flight.sample_now()
        sample = flight.samples()[-1]["metrics"]
        assert sample["planner.calibration.samples"]["value"] == 2
        assert sample["planner.calibration.abs_err_ms"]["count"] == 2
        assert sample["planner.calibration.residual"]["min"] == -0.5
        assert sample["planner.calibration.residual"]["max"] == 0.5
        assert [
            v for _, v in flight.series("planner.calibration.samples")
        ] == [1, 2]
        assert [
            v for _, v in flight.series("planner.calibration.abs_err_ms", "max")
        ] == [0.5, 0.5]


class TestBackgroundThread:
    def test_start_stop_collects_samples(self):
        recorder = obs.Recorder()
        recorder.counter("alive")
        with FlightRecorder(recorder, interval_s=0.005) as flight:
            deadline = time.time() + 5
            while len(flight) == 0 and time.time() < deadline:
                time.sleep(0.005)
        # stop() adds a final sample even if the timer never fired
        assert len(flight) >= 1
        assert flight.samples()[-1]["metrics"]["alive"]["value"] == 1

    def test_stop_is_idempotent(self):
        flight = FlightRecorder(obs.Recorder(), interval_s=0.005)
        flight.start()
        flight.stop()
        flight.stop(final_sample=False)
        assert len(flight) == 1  # exactly one final sample

    def test_stop_without_start_is_a_noop(self):
        flight = FlightRecorder(obs.Recorder(), interval_s=0.005)
        flight.stop()
        assert len(flight) == 0  # no thread stopped, no final sample

    def test_clean_stop_emits_no_warnings(self):
        import warnings

        flight = FlightRecorder(obs.Recorder(), interval_s=0.005)
        flight.start()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            flight.stop()

    def test_stuck_thread_is_reported_not_swallowed(self):
        """Regression: a sampler thread that outlives the join timeout
        used to be silently abandoned; now it raises a RuntimeWarning."""
        flight = FlightRecorder(obs.Recorder(), interval_s=60)
        release = threading.Event()
        stuck = threading.Thread(target=release.wait, daemon=True)
        stuck.start()
        flight._thread = stuck  # simulate a sampler that won't exit
        flight.JOIN_TIMEOUT_S = 0.01
        try:
            with pytest.warns(RuntimeWarning, match="did not exit"):
                flight.stop(final_sample=False)
            assert flight._thread is None  # stop state still advanced
        finally:
            release.set()
            stuck.join(timeout=5)


class TestDump:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = obs.Recorder()
        flight = FlightRecorder(recorder, interval_s=60)
        recorder.counter("evts", 4)
        recorder.observe("ms", 2.5)
        flight.sample_now()
        flight.sample_now()
        path = tmp_path / "flight.jsonl"
        assert flight.dump_jsonl(path) == 2
        loaded = read_jsonl(path)
        assert loaded == flight.samples()
        assert loaded[0]["metrics"]["evts"]["value"] == 4
