"""Tests for planner decision tracing (``repro.obs.decisions``).

Unit coverage of the event/log data model (ring eviction, last-wins
join index, JSONL round-trip), the golden ``repro why`` text tree, and
the per-policy emission contract: NAIVE, ONLINE, receding-horizon, and
A* all report what they predicted and chose, and the simulator joins
each decision with the actual simulated charge -- which, in the
simulated world, must equal the prediction exactly.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.receding import RecedingHorizonPolicy
from repro.core.simulator import simulate_policy
from repro.obs import decisions
from repro.obs.decisions import (
    CandidateAction,
    DecisionEvent,
    DecisionLog,
    render_decision_trail,
)


def make_event(t=0, view=None, chosen=(0,), **overrides) -> DecisionEvent:
    fields = dict(
        t=t,
        policy="NAIVE",
        backlog=(1,),
        backlog_ms=(2.0,),
        chosen=tuple(chosen),
        chosen_ms=tuple(2.0 if k else 0.0 for k in chosen),
        predicted_ms=sum(2.0 if k else 0.0 for k in chosen),
        rationale="because",
        view=view,
    )
    fields.update(overrides)
    return DecisionEvent(**fields)


def small_problem(horizon=6, limit=2.5) -> ProblemInstance:
    return ProblemInstance(
        cost_functions=(LinearCost(slope=1.0, setup=0.5),),
        limit=limit,
        arrivals=[(1,)] * (horizon + 1),
    )


class TestCandidateAction:
    def test_round_trip(self):
        cand = CandidateAction((2, 0), 3.5, score=0.25, note="greedy")
        assert CandidateAction.from_dict(cand.to_dict()) == cand

    def test_optional_fields_omitted_from_dict(self):
        bare = CandidateAction((1,), 1.0)
        assert bare.to_dict() == {"action": [1], "predicted_ms": 1.0}
        assert CandidateAction.from_dict(bare.to_dict()) == bare


class TestDecisionEvent:
    def test_residual_none_until_joined(self):
        event = make_event(chosen=(1,))
        assert event.residual_ms is None
        event.actual_ms = 2.25
        assert event.residual_ms == pytest.approx(0.25)

    def test_is_flush(self):
        assert make_event(chosen=(1, 0)).is_flush
        assert not make_event(chosen=(0, 0)).is_flush

    def test_round_trip_including_joined_fields(self):
        event = make_event(
            t=7,
            view="min_cost",
            chosen=(2,),
            candidates=(CandidateAction((2,), 2.0, score=0.5),),
            limit=4.0,
        )
        event.actual_ms = 2.5
        event.actual_table_ms = {"PS": 2.5}
        event.charges = {"index_probes": 10}
        clone = DecisionEvent.from_dict(event.to_dict())
        assert clone.to_dict() == event.to_dict()
        assert clone.residual_ms == pytest.approx(0.5)


class TestDecisionLog:
    def test_records_in_order(self):
        log = DecisionLog()
        events = [make_event(t=t) for t in range(3)]
        for event in events:
            log.record(event)
        assert len(log) == 3
        assert log.events() == events
        assert log.dropped == 0

    def test_join_attaches_actuals(self):
        log = DecisionLog()
        event = make_event(t=2, view="v", chosen=(1,))
        log.record(event)
        joined = log.join(
            "v", 2, actual_ms=3.0, table_ms={"PS": 3.0}, charges={"x": 1}
        )
        assert joined is event
        assert event.actual_ms == 3.0
        assert event.actual_table_ms == {"PS": 3.0}
        assert event.charges == {"x": 1}

    def test_join_unknown_key_returns_none(self):
        log = DecisionLog()
        log.record(make_event(t=0))
        assert log.join("other", 0, actual_ms=1.0) is None
        assert log.join(None, 99, actual_ms=1.0) is None

    def test_last_event_for_a_key_wins_the_join(self):
        # Nested planning (receding-horizon's inner A*) emits several
        # events for one step; the executed decision is the last one.
        log = DecisionLog()
        inner = make_event(t=3, policy="OPT_LGM")
        outer = make_event(t=3, policy="RECEDING", chosen=(1,))
        log.record(inner)
        log.record(outer)
        joined = log.join(None, 3, actual_ms=2.0)
        assert joined is outer
        assert inner.actual_ms is None

    def test_eviction_counts_dropped_and_cleans_index(self):
        log = DecisionLog(capacity=2)
        first = make_event(t=0)
        log.record(first)
        log.record(make_event(t=1))
        log.record(make_event(t=2))  # evicts t=0
        assert len(log) == 2
        assert log.dropped == 1
        assert log.join(None, 0, actual_ms=1.0) is None
        assert first.actual_ms is None

    def test_eviction_keeps_superseding_index_entry(self):
        # Evicting an old event must not unlink a newer event that took
        # over the same (view, t) slot.
        log = DecisionLog(capacity=2)
        log.record(make_event(t=0))
        newer = make_event(t=0, chosen=(1,))
        log.record(newer)  # same key, index now points here
        log.record(make_event(t=1))  # evicts the original t=0 event
        assert log.join(None, 0, actual_ms=5.0) is newer

    def test_filtered(self):
        log = DecisionLog()
        log.record(make_event(t=0, view="a"))
        log.record(make_event(t=1, view="a"))
        log.record(make_event(t=1, view="b"))
        assert [e.view for e in log.filtered(view="a")] == ["a", "a"]
        assert [e.t for e in log.filtered(step=1)] == [1, 1]
        assert len(log.filtered(view="b", step=1)) == 1
        assert log.filtered(view="zzz") == []


class TestGlobalSinkAndScope:
    def test_inactive_by_default(self):
        assert decisions.get_decision_log() is None
        assert not decisions.active()
        assert (
            decisions.emit_policy_decision(
                "NAIVE", 0, (1,), (LinearCost(1.0),), 2.0, (0,), "noop"
            )
            is None
        )

    def test_collecting_installs_and_restores(self):
        with decisions.collecting() as log:
            assert decisions.get_decision_log() is log
            assert decisions.active()
        assert decisions.get_decision_log() is None

    def test_set_decision_log_returns_previous(self):
        log = DecisionLog()
        assert decisions.set_decision_log(log) is None
        try:
            assert decisions.set_decision_log(None) is log
        finally:
            decisions.set_decision_log(None)

    def test_scope_tags_and_restores(self):
        assert decisions.current_scope() == (None, "simulator")
        with decisions.scope(view="min_cost"):
            assert decisions.current_scope() == ("min_cost", "ivm")
            with decisions.scope(view="inner", source="test"):
                assert decisions.current_scope() == ("inner", "test")
            assert decisions.current_scope() == ("min_cost", "ivm")
        assert decisions.current_scope() == (None, "simulator")

    def test_emitted_event_carries_scope(self):
        with decisions.collecting() as log:
            with decisions.scope(view="v1"):
                decisions.emit_policy_decision(
                    "NAIVE", 0, (1,), (LinearCost(1.0),), 2.0, (1,), "r"
                )
        (event,) = log.events()
        assert event.view == "v1"
        assert event.source == "ivm"


class TestMetrics:
    def test_emission_feeds_planner_counters(self):
        with obs.recording() as recorder:
            assert decisions.active()  # recorder alone activates tracing
            decisions.emit_policy_decision(
                "NAIVE",
                0,
                (2,),
                (LinearCost(1.0),),
                2.0,
                (2,),
                "flush",
                candidates=(CandidateAction((2,), 2.0),),
            )
            decisions.emit_policy_decision(
                "NAIVE", 1, (1,), (LinearCost(1.0),), 2.0, (0,), "defer"
            )
        snap = recorder.registry.snapshot()
        assert snap["planner.decisions.emitted"]["value"] == 2
        assert snap["planner.decisions.flush"]["value"] == 1
        assert snap["planner.decisions.defer"]["value"] == 1
        assert snap["planner.decisions.candidates"]["count"] == 2
        assert snap["planner.decisions.predicted_ms"]["max"] == 2.0

    def test_join_counts_under_recorder(self):
        with obs.recording() as recorder:
            with decisions.collecting() as log:
                log.record(make_event(t=0))
                log.join(None, 0, actual_ms=1.0)
        snap = recorder.registry.snapshot()
        assert snap["planner.decisions.joined"]["value"] == 1

    def test_no_log_no_recorder_is_a_noop(self):
        # active() is False: no event object is even constructed.
        assert (
            decisions.emit_policy_decision(
                "ONLINE", 0, (1,), (LinearCost(1.0),), 9.0, (0,), "r"
            )
            is None
        )


class TestPolicyEmission:
    COSTS = (LinearCost(slope=1.0, setup=0.5),)

    def test_naive_emits_flush_and_defer(self):
        policy = NaivePolicy()
        policy.reset(self.COSTS, 2.0)
        with decisions.collecting() as log:
            assert policy.decide(0, (1,)) == (0,)  # f=1.5 <= 2.0
            assert policy.decide(1, (3,)) == (3,)  # f=3.5 > 2.0
        deferred, flushed = log.events()
        assert deferred.policy == "NAIVE" and not deferred.is_flush
        assert flushed.is_flush and flushed.chosen == (3,)
        assert flushed.predicted_ms == pytest.approx(3.5)
        assert len(flushed.candidates) == 2  # defer vs flush-all
        assert "flush everything" in flushed.rationale

    def test_online_emits_scored_candidates(self):
        policy = OnlinePolicy()
        policy.reset(self.COSTS, 2.0)
        with decisions.collecting() as log:
            policy.observe(0, (3,))
            action = policy.decide(0, (3,))
        assert any(action)
        (event,) = [e for e in log.events() if e.is_flush]
        assert event.policy == "ONLINE"
        assert event.candidates  # every weighed batch is recorded
        chosen = [c for c in event.candidates if c.action == event.chosen]
        assert len(chosen) == 1
        assert chosen[0].score is not None  # ONLINE's H
        assert "min H over" in event.rationale

    def test_receding_outer_decision_wins_the_join_slot(self):
        policy = RecedingHorizonPolicy(window=4)
        problem = small_problem(horizon=5)
        with decisions.collecting() as log:
            trace = simulate_policy(problem, policy)
        flushes = [
            e for e in log.events() if e.policy == "RECEDING" and e.is_flush
        ]
        assert flushes, "receding never replanned on a full state"
        for event in flushes:
            # Joined with the executed cost despite the nested A* also
            # having emitted an OPT_LGM event during the same decide().
            assert event.actual_ms is not None
        assert any(e.policy == "OPT_LGM" for e in log.events())
        assert trace.total_cost > 0

    def test_astar_reports_its_plan(self):
        problem = small_problem(horizon=4)
        with decisions.collecting() as log:
            result = find_optimal_lgm_plan(problem)
        events = [e for e in log.events() if e.policy == "OPT_LGM"]
        assert len(events) == 1
        event = events[0]
        assert event.t == -1  # a plan, not a step decision
        assert f"cost={result.cost:.3f}" in event.rationale
        assert "expanded=" in event.rationale


class TestSimulatorJoin:
    @pytest.mark.parametrize("policy_cls", [NaivePolicy, OnlinePolicy])
    def test_every_decision_joined_with_zero_residual(self, policy_cls):
        """In the simulated world the executed charge *is* the predicted
        ``f(q)``, so every joined event has an exactly-zero residual --
        the calibration loop's sanity anchor."""
        problem = small_problem(horizon=8)
        with decisions.collecting() as log:
            simulate_policy(problem, policy_cls())
        events = log.events()
        assert len(events) == problem.horizon  # one per non-forced step
        for event in events:
            assert event.actual_ms is not None, f"t={event.t} never joined"
            assert event.residual_ms == pytest.approx(0.0)

    def test_forced_horizon_refresh_emits_no_decision(self):
        problem = small_problem(horizon=3)
        with decisions.collecting() as log:
            simulate_policy(problem, NaivePolicy())
        assert {e.t for e in log.events()} == set(range(problem.horizon))


class TestGoldenTrail:
    def test_render_joined_flush_golden(self):
        event = DecisionEvent(
            t=3,
            policy="ONLINE",
            view="min_cost",
            source="ivm",
            backlog=(2, 1),
            backlog_ms=(3.0, 2.5),
            chosen=(2, 0),
            chosen_ms=(3.0, 0.0),
            predicted_ms=3.0,
            limit=4.0,
            rationale="min H over 2 candidate(s)",
            candidates=(
                CandidateAction((2, 0), 3.0, score=0.5, note="time_to_full=4"),
                CandidateAction((2, 1), 5.5, score=0.75),
            ),
            actual_ms=3.25,
        )
        assert render_decision_trail([event]) == (
            "decision trail: 1 decision(s)\n"
            "t=3 ONLINE [ivm] view=min_cost: flush (2, 0)\n"
            "├─ backlog (2, 1) f_i(s)=(3.000, 2.500) ms\n"
            "├─ constraint C=4.000 ms\n"
            "├─ candidate (2, 0) f=3.000 ms H=0.500000 (time_to_full=4)"
            " [chosen]\n"
            "├─ candidate (2, 1) f=5.500 ms H=0.750000\n"
            "├─ rationale: min H over 2 candidate(s)\n"
            "└─ actual 3.250 ms (predicted 3.000, residual +0.250)"
        )

    def test_render_bare_defer_golden(self):
        event = DecisionEvent(
            t=0,
            policy="NAIVE",
            backlog=(1, 0),
            backlog_ms=(2.0, 0.0),
            chosen=(0, 0),
            chosen_ms=(0.0, 0.0),
            predicted_ms=0.0,
            rationale="f(s)=2.000 <= C=4.000 -> defer",
        )
        assert render_decision_trail([event]) == (
            "decision trail: 1 decision(s)\n"
            "t=0 NAIVE [simulator]: defer\n"
            "├─ backlog (1, 0) f_i(s)=(2.000, 0.000) ms\n"
            "└─ rationale: f(s)=2.000 <= C=4.000 -> defer"
        )

    def test_render_filters(self):
        events = [
            make_event(t=0, view="a"),
            make_event(t=1, view="b"),
        ]
        only_b = render_decision_trail(events, view="b")
        assert "view=b" in only_b and "1 decision(s)" in only_b
        only_t0 = render_decision_trail(events, step=0)
        assert "t=0" in only_t0 and "t=1" not in only_t0

    def test_render_empty_messages(self):
        assert render_decision_trail([]) == "decision trail: no decisions"
        assert render_decision_trail([], view="v", step=3) == (
            "decision trail: no decisions matching view=v step=3"
        )
