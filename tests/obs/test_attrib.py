"""Tests for hierarchical cost attribution (``repro.obs.attrib``).

Covers the profile data model, the EXPLAIN ANALYZE renderer (golden
output), the global profile sink, cross-profile aggregation for the
benchmark dashboard, and the disabled-mode overhead bound.  The
charge-neutrality differential tests (profiled run == unprofiled run,
byte for byte) live in ``tests/integration/test_attrib_equivalence.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.costmodel import CostModel, OperationCounter
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.engine.types import ColumnType, Schema
from repro.obs import attrib

#: Round weights so golden sim_ms values are exact decimals.
FLAT_MODEL = CostModel(
    page_read=1.0,
    tuple_cpu=0.001,
    compare=0.001,
    index_probe=0.01,
    hash_build=0.01,
    hash_probe=0.01,
    row_write=0.01,
    index_maintain=0.01,
    agg_update=0.01,
    sort_item=0.01,
    startup=0.5,
)


def make_db(block_size=64) -> Database:
    db = Database(block_size=block_size)
    t = db.create_table(
        "t", Schema.of(k=ColumnType.INT, grp=ColumnType.INT, v=ColumnType.FLOAT)
    )
    d = db.create_table("d", Schema.of(k=ColumnType.INT, w=ColumnType.FLOAT))
    for i in range(40):
        t.insert((i % 5, i % 3, float(i)))
    for k in range(5):
        d.insert((k, k * 10.0))
    return db


def join_spec() -> QuerySpec:
    return QuerySpec(
        base_alias="T",
        base_table="t",
        joins=(JoinSpec("D", "d", "T.k", "k"),),
        filters=(col("T.grp") != lit(1),),
        aggregate=AggregateSpec(func="min", value=col("T.v"), group_by=("D.w",)),
    )


class TestProfileNode:
    def test_add_and_tally(self):
        node = attrib.ProfileNode("scan", "SeqScan(t)")
        node.add("tuple_cpu", 10)
        node.add("tuple_cpu", 5)
        node.add("page_reads")
        assert node.tally == {"tuple_cpu": 15, "page_reads": 1}

    def test_add_tally_skips_zeros(self):
        node = attrib.ProfileNode("filter", "Filter")
        node.add_tally({"compares": 4, "tuple_cpu": 0})
        assert node.tally == {"compares": 4}

    def test_total_tally_sums_descendants(self):
        root = attrib.ProfileNode("query", "q")
        a = root.child("scan", "s")
        b = a.child("join-build", "b")
        root.add("startups", 1)
        a.add("tuple_cpu", 7)
        b.add("hash_builds", 3)
        b.add("tuple_cpu", 2)
        assert root.total_tally() == {
            "startups": 1,
            "tuple_cpu": 9,
            "hash_builds": 3,
        }

    def test_sim_ms_uses_model_weights(self):
        node = attrib.ProfileNode("scan", "s")
        node.add("page_reads", 3)
        node.add("tuple_cpu", 100)
        assert node.sim_ms(FLAT_MODEL) == pytest.approx(3.0 + 0.1)

    def test_worker_spread_accumulates(self):
        node = attrib.ProfileNode("merge", "Merge(in-order)")
        node.add_worker("w0", 1.5)
        node.add_worker("w1", 2.0)
        node.add_worker("w0", 0.5)
        assert node.workers == {
            "w0": {"tasks": 2, "busy_ms": 2.0},
            "w1": {"tasks": 1, "busy_ms": 2.0},
        }

    def test_to_dict_shape(self):
        node = attrib.ProfileNode("scan", "s")
        node.add("tuple_cpu", 4)
        node.rows_out = 4
        child = node.child("join-build", "b")
        child.add("hash_builds", 2)
        out = node.to_dict(FLAT_MODEL)
        assert out["op"] == "scan"
        assert out["sim_ms"] == pytest.approx(0.004)
        assert out["children"][0]["tally"] == {"hash_builds": 2}


class TestQueryProfile:
    def test_merge_node_is_lazy_and_single(self):
        profile = attrib.QueryProfile(FLAT_MODEL, "q")
        assert profile.root.children == []
        merge = profile.merge_node()
        assert profile.merge_node() is merge
        assert merge.kind == "merge"
        assert profile.root.children == [merge]

    def test_to_dict_carries_view_and_round(self):
        profile = attrib.QueryProfile(FLAT_MODEL, "q", view="v1", round=7)
        profile.finish(rows_out=3, wall_ms=1.25)
        out = profile.to_dict()
        assert out["view"] == "v1"
        assert out["round"] == 7
        assert out["rows"] == 3
        assert out["wall_ms"] == 1.25


class TestCaptureContext:
    def test_capturing_is_scoped_and_restores(self):
        assert attrib.active_profile() is None
        profile = attrib.QueryProfile(FLAT_MODEL, "q")
        with attrib.capturing(profile):
            assert attrib.active_profile() is profile
            inner = attrib.QueryProfile(FLAT_MODEL, "inner")
            with attrib.capturing(inner):
                assert attrib.active_profile() is inner
            assert attrib.active_profile() is profile
        assert attrib.active_profile() is None

    def test_maintenance_context(self):
        assert attrib.current_maintenance() == (None, None)
        with attrib.maintenance_context("v", 4):
            assert attrib.current_maintenance() == ("v", 4)
        assert attrib.current_maintenance() == (None, None)


class TestProfileSink:
    def test_sink_receives_every_query_and_restores(self):
        db = make_db()
        profiles: list[dict] = []
        sink = profiles.append
        previous = attrib.set_profile_sink(sink)
        try:
            assert attrib.sink_active()
            db.execute(join_spec())
            db.execute(QuerySpec(base_alias="T", base_table="t"))
        finally:
            assert attrib.set_profile_sink(previous) is sink
        assert not attrib.sink_active()
        assert len(profiles) == 2
        assert profiles[0]["query"] == "t ⋈ d → MIN"
        assert profiles[0]["rows"] == len(db.execute(join_spec()).rows)
        # The sink saw tallies identical to what the counter charged.
        assert sum(profiles[0]["tally"].values()) > 0

    def test_sink_silently_skips_row_mode(self):
        db = Database(block_size=None)
        t = db.create_table("t", Schema.of(x=ColumnType.INT))
        t.insert((1,))
        profiles: list[dict] = []
        previous = attrib.set_profile_sink(profiles.append)
        try:
            result = db.execute(QuerySpec(base_alias="T", base_table="t"))
        finally:
            attrib.set_profile_sink(previous)
        assert result.rows == [(1,)]
        assert profiles == []  # row-mode database: sink mode is a no-op

    def test_explicit_profile_on_row_mode_raises(self):
        db = Database(block_size=None)
        t = db.create_table("t", Schema.of(x=ColumnType.INT))
        t.insert((1,))
        with pytest.raises(ValueError, match="blocked execution"):
            db.execute(QuerySpec(base_alias="T", base_table="t"), profile=True)


class TestProfiledExecution:
    def test_profile_total_equals_counter_delta(self):
        db = make_db()
        before = db.counter.snapshot()
        result = db.execute(join_spec(), profile=True)
        after = db.counter.snapshot()
        delta = {f: after[f] - before[f] for f in after if after[f] != before[f]}
        assert result.profile is not None
        assert result.profile.total_tally() == delta

    def test_unprofiled_result_has_no_profile(self):
        db = make_db()
        result = db.execute(join_spec())
        assert result.profile is None

    def test_plan_nodes_cover_the_operators(self):
        db = make_db()
        result = db.execute(join_spec(), profile=True)
        kinds = set()

        def visit(node):
            kinds.add(node.kind)
            for child in node.children:
                visit(child)

        visit(result.profile.root)
        assert {"query", "scan", "filter", "join-probe", "join-build",
                "aggregate"} <= kinds

    def test_explain_analyze_renders_the_tree(self):
        db = make_db()
        text = db.explain(join_spec(), analyze=True)
        assert text.startswith("EXPLAIN ANALYZE")
        assert "SeqScan(t AS T)" in text
        assert "HashJoin(probe)" in text
        assert "Aggregate(MIN" in text
        assert text.splitlines()[-1].startswith("total: sim=")


class TestGoldenRenderer:
    def test_render_profile_golden(self):
        """Exact rendered output for a hand-built tree with fixed walls."""
        profile = attrib.QueryProfile(FLAT_MODEL, "t ⋈ d → MIN", view="v", round=3)
        root = profile.root
        root.add("startups", 1)
        agg = root.child("aggregate", "Aggregate(MIN(T.v))")
        agg.add("agg_updates", 10)
        agg.rows_out, agg.blocks, agg.wall_ms = 2, 1, 0.5
        probe = agg.child("join-probe", "HashJoin(probe)")
        probe.add("hash_probes", 40)
        probe.rows_out, probe.blocks, probe.wall_ms = 40, 2, 1.25
        build = probe.child("join-build", "Build(SeqScan(d AS D))")
        build.add("hash_builds", 5)
        build.add("page_reads", 1)
        build.rows_out, build.wall_ms = 5, 0.25
        profile.finish(rows_out=2, wall_ms=2.0)
        expected = "\n".join(
            [
                "EXPLAIN ANALYZE  view=v round=3",
                "t ⋈ d → MIN  rows=2 wall=2.00ms sim=0.500ms [startups=1]",
                "└─ Aggregate(MIN(T.v))  rows=2 blocks=1 wall=0.50ms"
                " sim=0.100ms [agg_updates=10]",
                "   └─ HashJoin(probe)  rows=40 blocks=2 wall=1.25ms"
                " sim=0.400ms [hash_probes=40]",
                "      └─ Build(SeqScan(d AS D))  rows=5 wall=0.25ms"
                " sim=1.050ms [hash_builds=5 page_reads=1]",
                "total: sim=2.050ms wall=2.00ms rows=2",
            ]
        )
        assert attrib.render_profile(profile) == expected

    def test_render_profile_worker_spread_line(self):
        profile = attrib.QueryProfile(FLAT_MODEL, "q")
        merge = profile.merge_node()
        merge.add_worker("w0", 1.0)
        merge.add_worker("w1", 3.0)
        merge.add_worker("w1", 1.0)
        text = attrib.render_profile(profile)
        assert "Merge(in-order)" in text
        assert "workers=2 tasks=3 busy=1.00..4.00ms" in text


class TestAggregateProfiles:
    def test_folds_operator_kinds(self):
        db = make_db()
        dicts = []
        previous = attrib.set_profile_sink(dicts.append)
        try:
            db.execute(join_spec())
            db.execute(join_spec())
        finally:
            attrib.set_profile_sink(previous)
        agg = attrib.aggregate_profiles(dicts)
        assert agg["queries"] == 2
        assert agg["sim_ms"] > 0
        assert agg["operators"]["scan"]["nodes"] == 2
        assert agg["operators"]["join-build"]["sim_ms"] > 0
        for entry in agg["operators"].values():
            assert set(entry) == {"nodes", "rows_out", "sim_ms", "wall_ms"}

    def test_empty_input(self):
        assert attrib.aggregate_profiles([]) == {
            "queries": 0,
            "sim_ms": 0.0,
            "operators": {},
        }


class TestDisabledOverhead:
    def test_disabled_checks_are_cheap(self):
        """The acceptance bound: with no sink and no capture, the per-call
        hooks (the exact checks on the engine hot path) must be trivial --
        200k of them well under a second even on a slow CI box."""
        assert not attrib.sink_active()
        assert attrib.active_profile() is None
        start = time.perf_counter()
        for __ in range(100_000):
            attrib.sink_active()
            attrib.active_profile()
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"disabled-mode hooks too slow: {elapsed:.3f}s"

    def test_operator_prof_defaults_to_none(self):
        from repro.engine.operators import Operator

        assert Operator._prof is None
