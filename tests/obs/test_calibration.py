"""Tests for cost-model calibration telemetry (``repro.obs.calibration``).

Sample arithmetic, tracker aggregation (with the property that every
aggregate equals the fold of its per-sample residuals), the rolling
drift monitor (fires only on a full window, re-arms after firing, works
with or without a recorder), and the ``observe_flush`` entry point that
ties tracker, metrics, and drift together.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import calibration
from repro.obs.calibration import (
    REL_ERR_FLOOR,
    CalibrationSample,
    CalibrationTracker,
    DriftEvent,
    DriftMonitor,
)


def make_sample(
    predicted=2.0, actual=2.5, view="v", alias="PS", t=0, k=1
) -> CalibrationSample:
    return CalibrationSample(
        view=view, t=t, alias=alias, k=k, predicted_ms=predicted, actual_ms=actual
    )


class TestSample:
    def test_residual_is_signed(self):
        assert make_sample(2.0, 2.5).residual_ms == pytest.approx(0.5)
        assert make_sample(2.0, 1.5).residual_ms == pytest.approx(-0.5)

    def test_abs_and_rel_err(self):
        sample = make_sample(4.0, 3.0)
        assert sample.abs_err_ms == pytest.approx(1.0)
        assert sample.rel_err == pytest.approx(0.25)

    def test_rel_err_floored_for_zero_prediction(self):
        sample = make_sample(0.0, 1.0)
        assert sample.rel_err == pytest.approx(1.0 / REL_ERR_FLOOR)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_sample().actual_ms = 9.0


class TestTracker:
    def test_summary_buckets(self):
        tracker = CalibrationTracker()
        tracker.record(make_sample(2.0, 2.5, view="a", alias="PS"))
        tracker.record(make_sample(1.0, 0.5, view="a", alias="S"))
        tracker.record(make_sample(3.0, 3.0, view="b", alias="PS"))
        summary = tracker.summary()
        assert summary["total"]["samples"] == 3
        assert summary["total"]["predicted_ms"] == pytest.approx(6.0)
        assert summary["total"]["actual_ms"] == pytest.approx(6.0)
        assert summary["total"]["residual_ms"] == pytest.approx(0.0)
        assert summary["total"]["abs_err_ms"] == pytest.approx(1.0)
        assert summary["total"]["max_abs_err_ms"] == pytest.approx(0.5)
        assert list(summary["tables"]) == ["PS", "S"]  # sorted
        assert summary["tables"]["PS"]["samples"] == 2
        assert summary["views"]["a"]["residual_ms"] == pytest.approx(0.0)
        assert summary["views"]["b"]["samples"] == 1

    def test_viewless_samples_skip_view_buckets(self):
        tracker = CalibrationTracker()
        tracker.record(make_sample(view=None))
        summary = tracker.summary()
        assert summary["total"]["samples"] == 1
        assert summary["views"] == {}
        assert summary["tables"]["PS"]["samples"] == 1

    def test_capacity_drops_oldest(self):
        tracker = CalibrationTracker(capacity=2)
        for t in range(3):
            tracker.record(make_sample(t=t))
        assert len(tracker) == 2
        assert tracker.dropped == 1
        assert [s.t for s in tracker.samples()] == [1, 2]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1e4),
                st.floats(0.0, 1e4),
                st.sampled_from(["PS", "S", "N"]),
                st.sampled_from(["a", "b", None]),
            ),
            max_size=40,
        )
    )
    def test_aggregates_equal_sum_of_per_sample_residuals(self, raws):
        """The tracker invariant: every summary bucket is exactly the
        fold of its member samples -- no sample is double counted,
        dropped, or misfiled."""
        tracker = CalibrationTracker()
        samples = [
            make_sample(p, a, view=view, alias=alias, t=i)
            for i, (p, a, alias, view) in enumerate(raws)
        ]
        for sample in samples:
            tracker.record(sample)
        summary = tracker.summary()
        assert summary["total"]["samples"] == len(samples)
        assert summary["total"]["residual_ms"] == pytest.approx(
            sum(s.residual_ms for s in samples)
        )
        assert summary["total"]["abs_err_ms"] == pytest.approx(
            sum(s.abs_err_ms for s in samples)
        )
        for alias, bucket in summary["tables"].items():
            members = [s for s in samples if s.alias == alias]
            assert bucket["samples"] == len(members)
            assert bucket["residual_ms"] == pytest.approx(
                sum(s.residual_ms for s in members)
            )
        for view, bucket in summary["views"].items():
            members = [s for s in samples if s.view == view]
            assert bucket["residual_ms"] == pytest.approx(
                sum(s.residual_ms for s in members)
            )
        # Nothing lost across buckets either.
        assert sum(b["samples"] for b in summary["tables"].values()) == len(
            samples
        )


class TestDriftMonitor:
    def test_fires_only_on_a_full_window_over_threshold(self):
        monitor = DriftMonitor(threshold=0.5, window=3)
        bad = make_sample(1.0, 2.0)  # rel_err 1.0
        assert monitor.observe(bad) is None
        assert monitor.observe(bad) is None
        event = monitor.observe(bad)
        assert isinstance(event, DriftEvent)
        assert event.rolling_rel_err == pytest.approx(1.0)
        assert event.alias == "PS" and event.view == "v"

    def test_accurate_window_never_fires(self):
        monitor = DriftMonitor(threshold=0.5, window=2)
        good = make_sample(2.0, 2.1)  # rel_err 0.05
        assert monitor.observe(good) is None
        assert monitor.observe(good) is None
        assert monitor.observe(good) is None

    def test_rearms_after_firing(self):
        monitor = DriftMonitor(threshold=0.5, window=2)
        bad = make_sample(1.0, 3.0)
        assert monitor.observe(bad) is None
        assert monitor.observe(bad) is not None  # fires, window clears
        assert monitor.observe(bad) is None  # refilling from scratch
        assert monitor.observe(bad) is not None

    def test_windows_are_per_view_and_alias(self):
        monitor = DriftMonitor(threshold=0.5, window=2)
        assert monitor.observe(make_sample(1.0, 3.0, view="a")) is None
        assert monitor.observe(make_sample(1.0, 3.0, view="b")) is None
        # Each view's window holds one sample; neither is full yet.
        event = monitor.observe(make_sample(1.0, 3.0, view="a"))
        assert event is not None and event.view == "a"

    def test_fires_through_hub_without_recorder(self):
        seen: list[DriftEvent] = []
        monitor = DriftMonitor(threshold=0.1, window=1)
        with calibration.drift_alerts(seen.append):
            monitor.observe(make_sample(1.0, 2.0))
        assert len(seen) == 1
        assert "calibration drift" in str(seen[0])

    def test_counts_alerts_under_recorder(self):
        monitor = DriftMonitor(threshold=0.1, window=1)
        with obs.recording() as recorder:
            monitor.observe(make_sample(1.0, 2.0))
        snap = recorder.registry.snapshot()
        assert snap["planner.calibration.drift_alerts"]["value"] == 1


class TestObserveFlush:
    def test_feeds_tracker_metrics_and_monitor(self):
        calibration.configure_drift(threshold=0.1, window=1)
        fired: list[DriftEvent] = []
        try:
            with obs.recording() as recorder:
                with calibration.tracking() as tracker:
                    with calibration.drift_alerts(fired.append):
                        sample = calibration.observe_flush(
                            "v", 3, "PS", 2, predicted_ms=2.0, actual_ms=3.0
                        )
        finally:
            calibration.configure_drift()  # restore defaults
        assert sample.residual_ms == pytest.approx(1.0)
        assert tracker.summary()["total"]["samples"] == 1
        snap = recorder.registry.snapshot()
        assert snap["planner.calibration.samples"]["value"] == 1
        assert snap["planner.calibration.abs_err_ms"]["max"] == 1.0
        assert snap["planner.calibration.rel_err"]["max"] == 0.5
        assert snap["planner.calibration.residual"]["max"] == 1.0
        assert len(fired) == 1

    def test_enabled_gates(self):
        assert not calibration.enabled()
        with calibration.tracking():
            assert calibration.enabled()
        assert not calibration.enabled()
        with calibration.drift_alerts(lambda e: None):
            assert calibration.enabled()
        with obs.recording():
            assert calibration.enabled()
        assert not calibration.enabled()

    def test_tracking_restores_previous_tracker(self):
        outer = CalibrationTracker()
        previous = calibration.set_tracker(outer)
        try:
            with calibration.tracking() as inner:
                assert calibration.get_tracker() is inner
            assert calibration.get_tracker() is outer
        finally:
            calibration.set_tracker(previous)
