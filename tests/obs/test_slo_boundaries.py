"""Property tests for ``slo.classify`` at and around its band edges.

The classifier uses an ``_EPS`` tolerance on both thresholds so that a
cost computed as *exactly* the limit (or exactly the near-breach edge)
by a slightly different floating-point route never flips category.
These properties pin the edges down:

* totality -- every finite (limit, cost) classifies without raising;
* exact edges -- ``cost == limit`` and ``cost == near_fraction*limit``
  are NEAR_BREACH, a hair inside ``_EPS`` of the limit is still
  NEAR_BREACH, and clear margins on either side give BREACH / None;
* monotonicity -- severity never decreases as cost grows;
* clamped limits -- non-positive limits never yield None.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import slo
from repro.obs.slo import _EPS

# Bounded away from 0 and infinity so multiplicative margins stay well
# clear of the _EPS absolute tolerance.
LIMITS = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)
COSTS = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)

_SEVERITY = {None: 0, slo.NEAR_BREACH: 1, slo.BREACH: 2}


def _classify_quiet(limit, cost):
    """classify() with the one-shot invalid-limit warning suppressed."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return slo.classify(limit, cost)


class TestTotality:
    @given(limit=st.floats(allow_nan=False, allow_infinity=False,
                           min_value=-1e9, max_value=1e9),
           cost=COSTS)
    @settings(max_examples=200)
    def test_always_classifies(self, limit, cost):
        assert _classify_quiet(limit, cost) in (
            None, slo.NEAR_BREACH, slo.BREACH,
        )


class TestExactEdges:
    @given(limit=LIMITS)
    def test_cost_equal_to_limit_is_near_breach(self, limit):
        assert slo.classify(limit, limit) == slo.NEAR_BREACH

    @given(limit=LIMITS)
    def test_cost_on_near_edge_is_near_breach(self, limit):
        edge = slo.DEFAULT_NEAR_FRACTION * limit
        assert slo.classify(limit, edge) == slo.NEAR_BREACH

    @given(limit=LIMITS)
    def test_within_eps_of_limit_is_not_a_breach(self, limit):
        # A cost that overshoots the limit by less than the tolerance
        # (e.g. the same sum accumulated in a different order) must not
        # read as a breach.
        assert slo.classify(limit, limit + _EPS / 2) == slo.NEAR_BREACH

    @given(limit=LIMITS)
    def test_clear_overshoot_is_a_breach(self, limit):
        assert slo.classify(limit, limit * 1.01) == slo.BREACH

    @given(limit=LIMITS)
    def test_clear_margin_is_none(self, limit):
        comfortable = slo.DEFAULT_NEAR_FRACTION * limit * 0.99
        assert slo.classify(limit, comfortable) is None

    def test_eps_is_small_but_positive(self):
        assert 0 < _EPS < 1e-6


class TestMonotonicity:
    @given(limit=LIMITS, cost_a=COSTS, cost_b=COSTS)
    @settings(max_examples=200)
    def test_severity_never_decreases_with_cost(self, limit, cost_a, cost_b):
        lo, hi = sorted((cost_a, cost_b))
        assert (
            _SEVERITY[slo.classify(limit, lo)]
            <= _SEVERITY[slo.classify(limit, hi)]
        )

    @given(limit=LIMITS, cost=COSTS, frac_a=st.floats(0.1, 0.9),
           frac_b=st.floats(0.1, 0.9))
    def test_severity_never_decreases_as_band_widens(
        self, limit, cost, frac_a, frac_b
    ):
        # Lowering near_fraction widens the warning band: a cost can
        # only gain severity, never lose it.
        wide, narrow = sorted((frac_a, frac_b))
        assert (
            _SEVERITY[slo.classify(limit, cost, near_fraction=narrow)]
            <= _SEVERITY[slo.classify(limit, cost, near_fraction=wide)]
        )


class TestClampedLimits:
    @given(limit=st.floats(min_value=-1e6, max_value=0.0, allow_nan=False),
           cost=COSTS)
    @settings(max_examples=200)
    def test_never_none(self, limit, cost):
        assert _classify_quiet(limit, cost) is not None

    @given(limit=st.floats(min_value=-1e6, max_value=0.0, allow_nan=False),
           cost=st.floats(min_value=1e-6, max_value=1e9))
    def test_any_positive_cost_breaches(self, limit, cost):
        assert _classify_quiet(limit, cost) == slo.BREACH

    @given(limit=st.floats(min_value=-1e6, max_value=0.0, allow_nan=False))
    def test_zero_cost_is_near_breach(self, limit):
        assert _classify_quiet(limit, 0.0) == slo.NEAR_BREACH
