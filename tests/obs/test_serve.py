"""Tests for the live metrics HTTP endpoint."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.sampler import FlightRecorder
from repro.obs.serve import MetricsServer


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture
def served():
    recorder = obs.Recorder()
    recorder.counter("engine.queries", 3)
    recorder.gauge("slo.refresh_margin", 12.5)
    recorder.observe("astar.plan_cost", 99.0)
    sampler = FlightRecorder(recorder, interval_s=60)
    sampler.sample_now()
    server = MetricsServer(recorder, port=0, sampler=sampler)
    server.start()
    try:
        yield recorder, server
    finally:
        server.stop()


class TestRoutes:
    def test_metrics_prometheus_exposition(self, served):
        recorder, server = served
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "engine_queries_total 3" in body
        assert "slo_refresh_margin 12.5" in body
        assert "astar_plan_cost_count 1" in body

    def test_healthz(self, served):
        _, server = served
        status, _, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["metrics"] == 3
        assert payload["samples"] == 1
        assert payload["uptime_s"] >= 0

    def test_snapshot_matches_registry(self, served):
        recorder, server = served
        _, _, body = _get(server.url + "/snapshot")
        assert json.loads(body) == recorder.registry.snapshot()

    def test_samples_jsonl(self, served):
        _, server = served
        status, headers, body = _get(server.url + "/samples")
        assert status == 200
        lines = [line for line in body.splitlines() if line]
        assert len(lines) == 1
        sample = json.loads(lines[0])
        assert "t_s" in sample and "metrics" in sample

    def test_unknown_route_404(self, served):
        _, server = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404

    def test_port_zero_binds_a_real_port(self, served):
        _, server = served
        assert server.port > 0
        assert str(server.port) in server.url


class TestNoSampler:
    def test_samples_404_without_flight_recorder(self):
        with MetricsServer(obs.Recorder(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/samples")
            assert err.value.code == 404

    def test_healthz_reports_null_samples(self):
        with MetricsServer(obs.Recorder(), port=0) as server:
            _, _, body = _get(server.url + "/healthz")
            assert json.loads(body)["samples"] is None


class TestViewsRoute:
    def test_views_uses_attached_provider(self):
        summaries = {
            "min_cost": {"rounds": 4, "sim_ms": 12.5, "backlog": 3},
            "region_counts": {"rounds": 4, "sim_ms": 2.0, "backlog": 0},
        }
        server = MetricsServer(obs.Recorder(), port=0, views=lambda: summaries)
        with server:
            _, _, body = _get(server.url + "/views")
        assert json.loads(body) == {"views": summaries}

    def test_views_falls_back_to_registry_metrics(self):
        recorder = obs.Recorder()
        recorder.counter("ivm.view.min_cost.rounds", 3)
        recorder.counter("ivm.view.min_cost.mods_applied", 17)
        recorder.gauge("ivm.view.min_cost.backlog", 2.0)
        recorder.observe("ivm.view.min_cost.round_ms", 1.5)
        recorder.counter("ivm.view.other.rounds", 1)
        recorder.counter("engine.queries", 9)  # not a view metric
        with MetricsServer(recorder, port=0) as server:
            _, _, body = _get(server.url + "/views")
        views = json.loads(body)["views"]
        assert set(views) == {"min_cost", "other"}
        assert views["min_cost"]["rounds"] == 3
        assert views["min_cost"]["mods_applied"] == 17
        assert views["min_cost"]["backlog"] == 2.0
        assert views["min_cost"]["round_ms"] == 1  # histogram -> count
        assert views["other"] == {"rounds": 1}

    def test_views_empty_when_nothing_recorded(self):
        with MetricsServer(obs.Recorder(), port=0) as server:
            _, _, body = _get(server.url + "/views")
        assert json.loads(body) == {"views": {}}

    def test_views_from_registry_helper_ignores_malformed_names(self):
        from repro.obs.serve import _views_from_registry

        snapshot = {
            "ivm.view.v1.rounds": {"type": "counter", "value": 2},
            "ivm.view.noField": {"type": "counter", "value": 5},  # no split
            "slo.breaches": {"type": "counter", "value": 1},
        }
        assert _views_from_registry(snapshot) == {"v1": {"rounds": 2}}


class TestDecisionsRoute:
    def _make_events(self):
        from repro.obs.decisions import DecisionEvent

        return [
            DecisionEvent(
                t=t,
                policy="NAIVE",
                view=view,
                backlog=(1,),
                backlog_ms=(2.0,),
                chosen=chosen,
                chosen_ms=(2.0 if any(chosen) else 0.0,),
                predicted_ms=2.0 if any(chosen) else 0.0,
                rationale="r",
            )
            for t, view, chosen in [
                (0, "a", (0,)),
                (1, "a", (1,)),
                (1, "b", (1,)),
            ]
        ]

    def test_provider_payload_golden_shape(self):
        events = self._make_events()
        server = MetricsServer(
            obs.Recorder(), port=0, decisions=lambda: events
        )
        with server:
            _, _, body = _get(server.url + "/decisions")
        payload = json.loads(body)
        assert set(payload) == {"decisions", "total"}
        assert payload["total"] == 3
        assert len(payload["decisions"]) == 3
        # The per-event JSON shape is the DecisionEvent.to_dict contract;
        # goldenned here so scrapers can rely on it.
        assert set(payload["decisions"][0]) == {
            "t",
            "policy",
            "source",
            "view",
            "backlog",
            "backlog_ms",
            "chosen",
            "chosen_ms",
            "predicted_ms",
            "limit",
            "rationale",
            "candidates",
            "actual_ms",
        }
        assert payload["decisions"][1]["chosen"] == [1]

    def test_view_step_and_limit_filters(self):
        events = self._make_events()
        server = MetricsServer(
            obs.Recorder(), port=0, decisions=lambda: events
        )
        with server:
            _, _, body = _get(server.url + "/decisions?view=a")
            by_view = json.loads(body)
            _, _, body = _get(server.url + "/decisions?step=1")
            by_step = json.loads(body)
            _, _, body = _get(server.url + "/decisions?limit=1")
            capped = json.loads(body)
        assert by_view["total"] == 2
        assert all(e["view"] == "a" for e in by_view["decisions"])
        assert by_step["total"] == 2
        assert all(e["t"] == 1 for e in by_step["decisions"])
        assert capped["total"] == 3  # total counts matches, not the cap
        assert len(capped["decisions"]) == 1
        assert capped["decisions"][0]["view"] == "b"  # most recent kept

    def test_falls_back_to_global_log(self):
        from repro.obs import decisions as decisions_mod

        with decisions_mod.collecting() as log:
            for event in self._make_events():
                log.record(event)
            with MetricsServer(obs.Recorder(), port=0) as server:
                _, _, body = _get(server.url + "/decisions")
        assert json.loads(body)["total"] == 3

    def test_404_without_provider_or_log(self):
        from repro.obs import decisions as decisions_mod

        assert decisions_mod.get_decision_log() is None
        with MetricsServer(obs.Recorder(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/decisions")
        assert err.value.code == 404
        assert "no decision log" in json.loads(err.value.read())["error"]

    def test_400_on_malformed_query(self):
        server = MetricsServer(obs.Recorder(), port=0, decisions=list)
        with server:
            for query in ("?limit=x", "?limit=-1", "?step=x"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    _get(server.url + "/decisions" + query)
                assert err.value.code == 400


class TestControlRoute:
    def _make_events(self):
        from repro.control.events import ControlEvent

        return [
            ControlEvent(
                t=t,
                governor=governor,
                setting=governor,
                old=old,
                new=new,
                reason="r",
                signals={"s": 1.0},
                view=view,
            )
            for t, governor, view, old, new in [
                (3, "policy", "a", "online", "naive"),
                (5, "block_size", None, 2048, 1024),
                (9, "policy", "b", "online", "naive"),
            ]
        ]

    def test_provider_payload_golden_shape(self):
        events = self._make_events()
        server = MetricsServer(obs.Recorder(), port=0, control=lambda: events)
        with server:
            _, _, body = _get(server.url + "/control")
        payload = json.loads(body)
        assert set(payload) == {"control", "total"}
        assert payload["total"] == 3
        # The per-event JSON shape is the ControlEvent.to_dict contract;
        # goldenned here so scrapers can rely on it.
        assert set(payload["control"][0]) == {
            "t",
            "governor",
            "setting",
            "old",
            "new",
            "reason",
            "signals",
            "view",
            "applied",
        }
        assert "view" not in payload["control"][1]  # omitted when None

    def test_governor_view_and_limit_filters(self):
        events = self._make_events()
        server = MetricsServer(obs.Recorder(), port=0, control=lambda: events)
        with server:
            _, _, body = _get(server.url + "/control?governor=policy")
            by_governor = json.loads(body)
            _, _, body = _get(server.url + "/control?view=a")
            by_view = json.loads(body)
            _, _, body = _get(server.url + "/control?limit=1")
            capped = json.loads(body)
        assert by_governor["total"] == 2
        assert all(e["governor"] == "policy" for e in by_governor["control"])
        assert by_view["total"] == 1
        assert by_view["control"][0]["t"] == 3
        assert capped["total"] == 3  # total counts matches, not the cap
        assert len(capped["control"]) == 1
        assert capped["control"][0]["t"] == 9  # most recent kept

    def test_falls_back_to_global_log(self):
        from repro.control import events as control_mod

        with control_mod.collecting() as log:
            for event in self._make_events():
                log.record(event)
            with MetricsServer(obs.Recorder(), port=0) as server:
                _, _, body = _get(server.url + "/control")
        assert json.loads(body)["total"] == 3

    def test_404_without_provider_or_log(self):
        from repro.control import events as control_mod

        assert control_mod.get_control_log() is None
        with MetricsServer(obs.Recorder(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/control")
        assert err.value.code == 404
        assert "no control log" in json.loads(err.value.read())["error"]

    def test_400_on_malformed_query(self):
        server = MetricsServer(obs.Recorder(), port=0, control=list)
        with server:
            for query in ("?limit=x", "?limit=-1"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    _get(server.url + "/control" + query)
                assert err.value.code == 400


class TestQuantileParity:
    """/snapshot and /metrics must report the same quantile set, computed
    from the same reservoir -- SUMMARY_QUANTILES is the single source."""

    def test_snapshot_and_prometheus_quantiles_agree(self):
        from repro.obs.metrics import SUMMARY_QUANTILES

        recorder = obs.Recorder()
        for i in range(200):
            recorder.observe("ivm.flush.actual_ms", float(i))
        with MetricsServer(recorder, port=0) as server:
            _, _, snap_body = _get(server.url + "/snapshot")
            _, _, prom_body = _get(server.url + "/metrics")
        snap = json.loads(snap_body)["ivm.flush.actual_ms"]
        assert 0.99 in SUMMARY_QUANTILES
        for q in SUMMARY_QUANTILES:
            key = f"p{int(q * 100)}"
            assert key in snap, f"/snapshot missing {key}"
            line = f'ivm_flush_actual_ms{{quantile="{q}"}} '
            match = [
                l for l in prom_body.splitlines() if l.startswith(line)
            ]
            assert match, f"/metrics missing quantile {q}"
            assert float(match[0].split()[-1]) == snap[key]

    def test_snapshot_gauge_reports_peak(self):
        recorder = obs.Recorder()
        recorder.gauge("slo.refresh_margin", 10.0)
        recorder.gauge("slo.refresh_margin", 4.0)
        with MetricsServer(recorder, port=0) as server:
            _, _, snap_body = _get(server.url + "/snapshot")
            _, _, prom_body = _get(server.url + "/metrics")
        snap = json.loads(snap_body)["slo.refresh_margin"]
        assert snap["value"] == 4.0
        assert snap["peak"] == 10.0
        assert "slo_refresh_margin_peak 10" in prom_body


class TestLiveScrape:
    def test_scrape_while_workload_is_running(self):
        """/metrics answers mid-run while another thread records."""
        recorder = obs.Recorder()
        stop = threading.Event()
        started = threading.Event()

        def workload():
            with obs.install_in_thread(recorder):
                while not stop.is_set():
                    obs.counter("live.events")
                    obs.observe("live.latency_ms", 1.0)
                    started.set()

        worker = threading.Thread(target=workload, daemon=True)
        with MetricsServer(recorder, port=0) as server:
            worker.start()
            assert started.wait(timeout=5)
            try:
                for _ in range(3):
                    _, _, body = _get(server.url + "/metrics")
                    assert "live_events_total" in body
            finally:
                stop.set()
                worker.join(timeout=5)

    def test_stop_is_idempotent_and_clean(self):
        import warnings

        server = MetricsServer(obs.Recorder(), port=0)
        server.start()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            server.stop()
            server.stop()  # second stop: no server, no thread, no warning

    def test_stuck_acceptor_thread_is_reported(self):
        """Regression: a serving thread that survives the join timeout
        used to be silently abandoned (port still bound); now it raises
        a RuntimeWarning."""
        server = MetricsServer(obs.Recorder(), port=0)
        release = threading.Event()
        stuck = threading.Thread(target=release.wait, daemon=True)
        stuck.start()
        server._thread = stuck  # simulate an acceptor that won't exit
        server.JOIN_TIMEOUT_S = 0.01
        try:
            with pytest.warns(RuntimeWarning, match="did not exit"):
                server.stop()
            assert server._thread is None
        finally:
            release.set()
            stuck.join(timeout=5)

    def test_stop_releases_port(self):
        recorder = obs.Recorder()
        server = MetricsServer(recorder, port=0)
        port = server.start()
        server.stop()
        # the same port is bindable again immediately
        rebound = MetricsServer(recorder, port=port)
        try:
            assert rebound.start() == port
        finally:
            rebound.stop()
