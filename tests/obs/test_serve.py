"""Tests for the live metrics HTTP endpoint."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.sampler import FlightRecorder
from repro.obs.serve import MetricsServer


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture
def served():
    recorder = obs.Recorder()
    recorder.counter("engine.queries", 3)
    recorder.gauge("slo.refresh_margin", 12.5)
    recorder.observe("astar.plan_cost", 99.0)
    sampler = FlightRecorder(recorder, interval_s=60)
    sampler.sample_now()
    server = MetricsServer(recorder, port=0, sampler=sampler)
    server.start()
    try:
        yield recorder, server
    finally:
        server.stop()


class TestRoutes:
    def test_metrics_prometheus_exposition(self, served):
        recorder, server = served
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "engine_queries_total 3" in body
        assert "slo_refresh_margin 12.5" in body
        assert "astar_plan_cost_count 1" in body

    def test_healthz(self, served):
        _, server = served
        status, _, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["metrics"] == 3
        assert payload["samples"] == 1
        assert payload["uptime_s"] >= 0

    def test_snapshot_matches_registry(self, served):
        recorder, server = served
        _, _, body = _get(server.url + "/snapshot")
        assert json.loads(body) == recorder.registry.snapshot()

    def test_samples_jsonl(self, served):
        _, server = served
        status, headers, body = _get(server.url + "/samples")
        assert status == 200
        lines = [line for line in body.splitlines() if line]
        assert len(lines) == 1
        sample = json.loads(lines[0])
        assert "t_s" in sample and "metrics" in sample

    def test_unknown_route_404(self, served):
        _, server = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404

    def test_port_zero_binds_a_real_port(self, served):
        _, server = served
        assert server.port > 0
        assert str(server.port) in server.url


class TestNoSampler:
    def test_samples_404_without_flight_recorder(self):
        with MetricsServer(obs.Recorder(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/samples")
            assert err.value.code == 404

    def test_healthz_reports_null_samples(self):
        with MetricsServer(obs.Recorder(), port=0) as server:
            _, _, body = _get(server.url + "/healthz")
            assert json.loads(body)["samples"] is None


class TestLiveScrape:
    def test_scrape_while_workload_is_running(self):
        """/metrics answers mid-run while another thread records."""
        recorder = obs.Recorder()
        stop = threading.Event()
        started = threading.Event()

        def workload():
            with obs.install_in_thread(recorder):
                while not stop.is_set():
                    obs.counter("live.events")
                    obs.observe("live.latency_ms", 1.0)
                    started.set()

        worker = threading.Thread(target=workload, daemon=True)
        with MetricsServer(recorder, port=0) as server:
            worker.start()
            assert started.wait(timeout=5)
            try:
                for _ in range(3):
                    _, _, body = _get(server.url + "/metrics")
                    assert "live_events_total" in body
            finally:
                stop.set()
                worker.join(timeout=5)

    def test_stop_is_idempotent_and_clean(self):
        import warnings

        server = MetricsServer(obs.Recorder(), port=0)
        server.start()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            server.stop()
            server.stop()  # second stop: no server, no thread, no warning

    def test_stuck_acceptor_thread_is_reported(self):
        """Regression: a serving thread that survives the join timeout
        used to be silently abandoned (port still bound); now it raises
        a RuntimeWarning."""
        server = MetricsServer(obs.Recorder(), port=0)
        release = threading.Event()
        stuck = threading.Thread(target=release.wait, daemon=True)
        stuck.start()
        server._thread = stuck  # simulate an acceptor that won't exit
        server.JOIN_TIMEOUT_S = 0.01
        try:
            with pytest.warns(RuntimeWarning, match="did not exit"):
                server.stop()
            assert server._thread is None
        finally:
            release.set()
            stuck.join(timeout=5)

    def test_stop_releases_port(self):
        recorder = obs.Recorder()
        server = MetricsServer(recorder, port=0)
        port = server.start()
        server.stop()
        # the same port is bindable again immediately
        rebound = MetricsServer(recorder, port=port)
        try:
            assert rebound.start() == port
        finally:
            rebound.stop()
