"""Tests for Prometheus text-format rendering of the metrics registry."""

import re

import pytest
from hypothesis import given, strategies as st

from repro.obs.export import (
    format_value,
    prometheus_name,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry

# One exposition sample line: name, optional labels, value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9].*|[+-]Inf|NaN)$"
)


def _samples(text: str) -> list[str]:
    return [line for line in text.splitlines() if not line.startswith("#")]


class TestNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("slo.refresh_margin") == "slo_refresh_margin"
        assert prometheus_name("engine.join.nl.rows_in") == (
            "engine_join_nl_rows_in"
        )

    def test_dashes_and_leading_digit(self):
        assert prometheus_name("a-b.c") == "a_b_c"
        assert prometheus_name("7zip.runs") == "_7zip_runs"


class TestValues:
    def test_integers_render_bare(self):
        assert format_value(3.0) == "3"
        assert format_value(-2) == "-2"

    def test_floats_and_specials(self):
        assert format_value(1.5) == "1.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestCounter:
    def test_rendered_with_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("astar.expanded").inc(41)
        text = render_prometheus(registry)
        assert "# TYPE astar_expanded_total counter" in text
        assert "astar_expanded_total 41" in text.splitlines()


class TestGauge:
    def test_rendered_with_peak_companion(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("slo.refresh_margin")
        gauge.set(9.0)
        gauge.set(4.5)
        lines = render_prometheus(registry).splitlines()
        assert "slo_refresh_margin 4.5" in lines
        assert "slo_refresh_margin_peak 9" in lines

    def test_unset_gauge_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("idle.gauge")
        assert render_prometheus(registry) == ""


class TestHistogram:
    def test_rendered_as_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("simulator.backlog")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE simulator_backlog summary" in text
        assert 'simulator_backlog{quantile="0.5"} 2' in lines
        assert 'simulator_backlog{quantile="0.95"} 4' in lines
        assert "simulator_backlog_sum 10" in lines
        assert "simulator_backlog_count 4" in lines
        assert "simulator_backlog_min 1" in lines
        assert "simulator_backlog_max 4" in lines

    def test_empty_histogram_has_count_but_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("ivm.flush.batch_size")
        lines = render_prometheus(registry).splitlines()
        assert "ivm_flush_batch_size_sum 0" in lines
        assert "ivm_flush_batch_size_count 0" in lines
        assert not any("quantile" in line for line in lines)
        assert not any("_min" in line or "_max" in line for line in lines)


class TestWholeRegistry:
    def test_every_kind_renders_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("a.events").inc(7)
        registry.gauge("b.level").set(1.25)
        registry.histogram("c.sizes").observe(10)
        registry.histogram("d.empty")
        text = render_prometheus(registry)
        assert text.endswith("\n")
        for line in _samples(text):
            assert _SAMPLE_RE.match(line), line

    def test_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.counter("a-b").inc()
        with pytest.raises(ValueError, match="both map"):
            render_prometheus(registry)


_NAME_SEGMENT = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
_DOTTED = st.lists(_NAME_SEGMENT, min_size=1, max_size=3).map(".".join)
_FINITE = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


class TestPropertyRendering:
    @given(
        counters=st.dictionaries(
            _DOTTED, st.integers(min_value=0, max_value=10**12), max_size=5
        ),
        gauges=st.dictionaries(_DOTTED, _FINITE, max_size=5),
        histograms=st.dictionaries(
            _DOTTED, st.lists(_FINITE, max_size=20), max_size=5
        ),
    )
    def test_arbitrary_registry_renders_valid_lines(
        self, counters, gauges, histograms
    ):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).inc(value)
        for name, value in gauges.items():
            try:
                registry.gauge(name).set(value)
            except TypeError:
                continue  # name already registered as another kind
        for name, values in histograms.items():
            try:
                hist = registry.histogram(name)
            except TypeError:
                continue
            for v in values:
                hist.observe(v)
        try:
            text = render_prometheus(registry)
        except ValueError:
            return  # flattened-name collision: correctly rejected
        for line in _samples(text):
            assert _SAMPLE_RE.match(line), line
        # every registered metric contributes at least one sample
        for name in counters:
            assert prometheus_name(name) + "_total" in text
