"""End-to-end observability: instrumented layers and the CLI flags."""

import pytest

from repro import obs
from repro.cli import main
from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import LinearCost
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy
from repro.obs.tracing import read_jsonl


@pytest.fixture
def problem():
    return ProblemInstance(
        [LinearCost(slope=0.1, setup=5.0), LinearCost(slope=0.25)],
        limit=12.0,
        arrivals=[(1, 1)] * 30,
    )


class TestAStarMetrics:
    def test_result_registers_search_statistics(self, problem):
        with obs.recording() as rec:
            result = find_optimal_lgm_plan(problem)
        assert rec.registry.get("astar.searches").value == 1
        assert rec.registry.get("astar.expanded").value == result.expanded
        assert rec.registry.get("astar.generated").value == result.generated
        assert result.expanded > 0
        # The rate heuristic is consistent on LGM instances: the deviation
        # counter exists but stays at zero.
        inconsistency = rec.registry.get(
            "astar.heuristic.inconsistency_detected"
        )
        assert inconsistency is not None and inconsistency.value == 0
        plan_cost = rec.registry.get("astar.plan_cost")
        assert plan_cost.count == 1
        assert plan_cost.total == pytest.approx(result.cost)

    def test_search_emits_span_and_heap_peak(self, problem):
        with obs.recording(trace=True) as rec:
            find_optimal_lgm_plan(problem)
        names = {e["name"] for e in rec.events.events()}
        assert "astar.search" in names
        assert rec.registry.get("astar.heap_peak").value > 0


class TestSimulatorMetrics:
    def test_policy_run_reports_steps_and_backlog(self, problem):
        with obs.recording() as rec:
            trace = simulate_policy(problem, OnlinePolicy())
        steps = rec.registry.get("simulator.steps")
        assert steps.value == problem.horizon + 1
        assert rec.registry.get("simulator.actions").value == trace.action_count
        assert rec.registry.get("simulator.backlog").count > 0
        # No decide() at t == horizon: the final refresh is forced.
        assert rec.registry.get("simulator.decide_ms").count == problem.horizon
        assert rec.registry.get("online.decisions").value > 0

    def test_uninstrumented_run_identical_to_observed(self, problem):
        bare = simulate_policy(problem, OnlinePolicy())
        with obs.recording(trace=True):
            observed = simulate_policy(problem, OnlinePolicy())
        assert bare.total_cost == observed.total_cost
        assert bare.plan.actions == observed.plan.actions


# The tiny test-scale workloads legitimately trip the engine's low-fill
# block-size advisory; it must not fail strict-warning runs of this file.
@pytest.mark.filterwarnings("ignore:blocked execution fill:RuntimeWarning")
class TestCliTrace:
    def test_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        """`repro <cmd> --trace FILE` exits 0 and leaves a layered trace."""
        from repro.experiments import common

        # The calibration cache survives across tests in one process; a
        # warm cache would skip the engine work this trace must cover.
        common.calibrated_costs.cache_clear()
        path = tmp_path / "out.jsonl"
        code = main(
            [
                "timeline",
                "--scale", "0.002",
                "--horizon", "30",
                "--policies", "naive", "optimal", "online",
                "--trace", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        events = read_jsonl(path)
        assert len(events) >= 50
        for event in events:
            assert event["ph"] in ("X", "C")
            assert "name" in event and "ts" in event
        cats = {e["cat"] for e in events}
        # Every instrumented layer shows up in one run.
        assert {"astar", "simulator", "engine", "cli"} <= cats
        assert "metric" in out and "p95" in out  # summary table printed
        assert f"trace events to {path}" in out

    def test_metrics_flag_prints_summary_only(self, tmp_path, capsys):
        code = main(
            [
                "--metrics",
                "timeline",
                "--scale", "0.002",
                "--horizon", "20",
                "--policies", "naive",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "simulator.steps" in out
        assert "trace events" not in out

    def test_experiment_shorthand_accepts_trace(self, tmp_path, capsys):
        """`repro bounds --trace ...` == `repro experiment bounds --trace ...`."""
        path = tmp_path / "bounds.jsonl"
        code = main(["bounds", "--trace", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Bounds study" in out
        events = read_jsonl(path)
        assert any(
            e["name"] == "cli.command" and e["args"]["command"] == "experiment"
            for e in events
        )

    def test_no_flags_means_no_recorder_output(self, capsys):
        code = main(
            [
                "timeline",
                "--scale", "0.002",
                "--horizon", "20",
                "--policies", "naive",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "simulator.steps" not in out
