"""Worker threads adopting a recorder: the parallel-pipeline groundwork."""

from concurrent.futures import ThreadPoolExecutor

from repro import obs


class TestInstallInThread:
    def test_pool_workers_record_into_shared_recorder(self):
        recorder = obs.Recorder()

        def work(n):
            with obs.install_in_thread(recorder):
                obs.counter("pool.items")
                obs.observe("pool.payload", n)
                return n

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(work, range(100)))

        assert sorted(results) == list(range(100))
        assert recorder.registry.get("pool.items").value == 100
        hist = recorder.registry.get("pool.payload")
        assert hist.count == 100
        assert hist.total == sum(range(100))

    def test_worker_binding_is_restored(self):
        recorder = obs.Recorder()

        def work(_):
            with obs.install_in_thread(recorder):
                pass
            return obs.get_recorder()  # after the block: clean again

        with ThreadPoolExecutor(max_workers=2) as pool:
            leftovers = list(pool.map(work, range(8)))
        assert leftovers == [None] * 8

    def test_adoption_nests(self):
        outer = obs.Recorder()
        inner = obs.Recorder()
        with obs.install_in_thread(outer):
            with obs.install_in_thread(inner):
                obs.counter("x")
                assert obs.get_recorder() is inner
            assert obs.get_recorder() is outer
        assert obs.get_recorder() is None
        assert inner.registry.get("x").value == 1
        assert outer.registry.get("x") is None

    def test_recorder_wrap_carries_into_pool(self):
        recorder = obs.Recorder()

        def work(n):
            obs.counter("wrapped.items")
            return n * 2

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(recorder.wrap(work), range(50)))

        assert results == [n * 2 for n in range(50)]
        assert recorder.registry.get("wrapped.items").value == 50

    def test_spans_nest_per_thread(self):
        recorder = obs.Recorder(trace=True)

        def work(n):
            with obs.install_in_thread(recorder):
                with obs.trace("pool.task", n=n):
                    pass
            return n

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(20)))
        events = [
            e for e in recorder.trace_events(include_metrics=False)
            if e["name"] == "pool.task"
        ]
        assert len(events) == 20
        # every task span is a root on its own thread (no cross-thread
        # parenting corruption)
        assert all(e["parent"] is None for e in events)
