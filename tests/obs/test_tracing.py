"""Tests for span tracing, the recorder, and JSONL export."""

import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro import obs
from repro.obs.tracing import NULL_SPAN, read_jsonl, write_jsonl


class TestDisabled:
    def test_no_recorder_by_default(self):
        assert obs.get_recorder() is None

    def test_helpers_are_noops_without_recorder(self):
        # Must not raise, must not allocate a registry anywhere.
        obs.counter("astar.expanded", 5)
        obs.gauge("simulator.backlog", 1.0)
        obs.gauge_max("astar.heap_peak", 2.0)
        obs.observe("engine.execute.sim_ms", 3.0)

    def test_trace_returns_shared_null_span(self):
        span = obs.trace("astar.search", horizon=5)
        assert span is NULL_SPAN
        with span as inner:
            assert inner.set(rows=1) is inner


class TestRecording:
    def test_recording_installs_and_restores(self):
        assert obs.get_recorder() is None
        with obs.recording() as rec:
            assert obs.get_recorder() is rec
            obs.counter("x")
            assert rec.registry.get("x").value == 1
        assert obs.get_recorder() is None

    def test_recordings_nest(self):
        with obs.recording() as outer:
            with obs.recording() as inner:
                obs.counter("only.inner")
                assert obs.get_recorder() is inner
            assert obs.get_recorder() is outer
            assert outer.registry.get("only.inner") is None

    def test_install_is_thread_local(self):
        with obs.recording() as rec:
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(obs.get_recorder())
            )
            thread.start()
            thread.join()
        assert seen == [None]
        assert rec is not None


class TestSpans:
    def test_nested_spans_record_parenting(self):
        with obs.recording(trace=True) as rec:
            with obs.trace("outer", depth=0):
                with obs.trace("outer.inner"):
                    pass
                with obs.trace("outer.second"):
                    pass
        events = {e["name"]: e for e in rec.events.events()}
        outer = events["outer"]
        assert outer["parent"] is None
        assert events["outer.inner"]["parent"] == outer["id"]
        assert events["outer.second"]["parent"] == outer["id"]
        assert outer["ph"] == "X"
        assert outer["dur"] >= 0
        # Children finish before the parent, so they appear first.
        assert [e["name"] for e in rec.events.events()][-1] == "outer"

    def test_span_attrs_and_error_flag(self):
        with obs.recording(trace=True) as rec:
            with pytest.raises(RuntimeError):
                with obs.trace("phase", k=40) as span:
                    span.set(rows=7)
                    raise RuntimeError("boom")
        (event,) = rec.events.events()
        assert event["args"] == {"k": 40, "rows": 7, "error": "RuntimeError"}

    def test_spans_feed_ms_histograms_even_without_trace(self):
        with obs.recording(trace=False) as rec:
            with obs.trace("ivm.flush"):
                pass
        assert len(rec.events) == 0  # no trace buffer when disabled
        hist = rec.registry.get("ivm.flush.ms")
        assert hist is not None and hist.count == 1

    def test_category_is_first_dotted_segment(self):
        with obs.recording(trace=True) as rec:
            with obs.trace("engine.io.load_table"):
                pass
        (event,) = rec.events.events()
        assert event["cat"] == "engine"


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.recording(trace=True) as rec:
            with obs.trace("a", k=1):
                with obs.trace("a.b"):
                    pass
            obs.counter("rows", 12)
            count = rec.write_trace(path)
        events = read_jsonl(path)
        assert len(events) == count >= 3
        spans = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in spans} == {"a", "a.b"}
        # Metrics ride along as Chrome counter events.
        assert any(e["name"] == "rows" for e in counters)
        by_name = {e["name"]: e for e in spans}
        assert by_name["a.b"]["parent"] == by_name["a"]["id"]

    def test_read_jsonl_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_summary_table_covers_span_timings(self):
        with obs.recording() as rec:
            with obs.trace("simulator.simulate_policy"):
                pass
        assert "simulator.simulate_policy.ms" in rec.summary_table()


_ATTR_VALUE = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),  # includes unicode, quotes, newlines
    st.booleans(),
    st.none(),
)
_ATTRS = st.dictionaries(
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"
        ),
        min_size=1,
        max_size=10,
    ),
    _ATTR_VALUE,
    max_size=4,
)


class TestJsonlRoundTripProperty:
    """write_jsonl -> read_jsonl is the identity on recorded traces."""

    @given(
        spans=st.lists(
            st.tuples(
                st.sampled_from(["astar.search", "ivm.flush", "engine.io"]),
                _ATTRS,
                st.integers(min_value=0, max_value=2),  # nesting depth
            ),
            max_size=8,
        ),
        counters=st.dictionaries(
            st.sampled_from(["rows", "events", "slo.breaches"]),
            st.integers(min_value=1, max_value=10**9),
            max_size=3,
        ),
    )
    def test_round_trip_preserves_events(self, spans, counters):
        with obs.recording(trace=True) as rec:
            for name, attrs, depth in spans:
                stack = []
                for level in range(depth + 1):
                    span = obs.trace(f"{name}.d{level}" if level else name)
                    stack.append(span)
                    span.__enter__()
                    span.set(**attrs)
                for span in reversed(stack):
                    span.__exit__(None, None, None)
            for name, value in counters.items():
                obs.counter(name, value)
        events = rec.trace_events()
        # hypothesis forbids function-scoped fixtures, so no tmp_path here
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.jsonl"
            count = write_jsonl(events, path)
            loaded = read_jsonl(path)
        assert count == len(events)
        assert loaded == events
        # Span nesting ids survive: each child's parent id is present.
        by_id = {e["id"]: e for e in loaded if e.get("ph") == "X"}
        for event in by_id.values():
            if event["parent"] is not None:
                assert event["parent"] in by_id
