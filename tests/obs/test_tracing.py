"""Tests for span tracing, the recorder, and JSONL export."""

import threading

import pytest

from repro import obs
from repro.obs.tracing import NULL_SPAN, read_jsonl


class TestDisabled:
    def test_no_recorder_by_default(self):
        assert obs.get_recorder() is None

    def test_helpers_are_noops_without_recorder(self):
        # Must not raise, must not allocate a registry anywhere.
        obs.counter("astar.expanded", 5)
        obs.gauge("simulator.backlog", 1.0)
        obs.gauge_max("astar.heap_peak", 2.0)
        obs.observe("engine.execute.sim_ms", 3.0)

    def test_trace_returns_shared_null_span(self):
        span = obs.trace("astar.search", horizon=5)
        assert span is NULL_SPAN
        with span as inner:
            assert inner.set(rows=1) is inner


class TestRecording:
    def test_recording_installs_and_restores(self):
        assert obs.get_recorder() is None
        with obs.recording() as rec:
            assert obs.get_recorder() is rec
            obs.counter("x")
            assert rec.registry.get("x").value == 1
        assert obs.get_recorder() is None

    def test_recordings_nest(self):
        with obs.recording() as outer:
            with obs.recording() as inner:
                obs.counter("only.inner")
                assert obs.get_recorder() is inner
            assert obs.get_recorder() is outer
            assert outer.registry.get("only.inner") is None

    def test_install_is_thread_local(self):
        with obs.recording() as rec:
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(obs.get_recorder())
            )
            thread.start()
            thread.join()
        assert seen == [None]
        assert rec is not None


class TestSpans:
    def test_nested_spans_record_parenting(self):
        with obs.recording(trace=True) as rec:
            with obs.trace("outer", depth=0):
                with obs.trace("outer.inner"):
                    pass
                with obs.trace("outer.second"):
                    pass
        events = {e["name"]: e for e in rec.events.events()}
        outer = events["outer"]
        assert outer["parent"] is None
        assert events["outer.inner"]["parent"] == outer["id"]
        assert events["outer.second"]["parent"] == outer["id"]
        assert outer["ph"] == "X"
        assert outer["dur"] >= 0
        # Children finish before the parent, so they appear first.
        assert [e["name"] for e in rec.events.events()][-1] == "outer"

    def test_span_attrs_and_error_flag(self):
        with obs.recording(trace=True) as rec:
            with pytest.raises(RuntimeError):
                with obs.trace("phase", k=40) as span:
                    span.set(rows=7)
                    raise RuntimeError("boom")
        (event,) = rec.events.events()
        assert event["args"] == {"k": 40, "rows": 7, "error": "RuntimeError"}

    def test_spans_feed_ms_histograms_even_without_trace(self):
        with obs.recording(trace=False) as rec:
            with obs.trace("ivm.flush"):
                pass
        assert len(rec.events) == 0  # no trace buffer when disabled
        hist = rec.registry.get("ivm.flush.ms")
        assert hist is not None and hist.count == 1

    def test_category_is_first_dotted_segment(self):
        with obs.recording(trace=True) as rec:
            with obs.trace("engine.io.load_table"):
                pass
        (event,) = rec.events.events()
        assert event["cat"] == "engine"


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.recording(trace=True) as rec:
            with obs.trace("a", k=1):
                with obs.trace("a.b"):
                    pass
            obs.counter("rows", 12)
            count = rec.write_trace(path)
        events = read_jsonl(path)
        assert len(events) == count >= 3
        spans = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in spans} == {"a", "a.b"}
        # Metrics ride along as Chrome counter events.
        assert any(e["name"] == "rows" for e in counters)
        by_name = {e["name"]: e for e in spans}
        assert by_name["a.b"]["parent"] == by_name["a"]["id"]

    def test_read_jsonl_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_summary_table_covers_span_timings(self):
        with obs.recording() as rec:
            with obs.trace("simulator.simulate_policy"):
                pass
        assert "simulator.simulate_policy.ms" in rec.summary_table()
