"""Tests for the zero-dependency metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_name,
)


class TestNames:
    def test_dotted_names_accepted(self):
        for name in ("astar.expanded", "a", "engine.join.nl.rows_out", "x-1_y"):
            assert check_name(name) == name

    @pytest.mark.parametrize(
        "bad", ["", ".", "a.", ".a", "a..b", "a b", "a/b", None, 7]
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError):
            check_name(bad)


class TestCounter:
    def test_increments(self):
        c = Counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("events").inc(-1)


class TestGauge:
    def test_last_write_wins_with_peak(self):
        g = Gauge("backlog")
        g.set(3.0)
        g.set(9.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.peak == 9.0

    def test_set_max_keeps_peak_only(self):
        g = Gauge("heap_peak")
        g.set_max(5)
        g.set_max(2)
        g.set_max(11)
        assert g.value == 11.0

    def test_unset_snapshot_is_none(self):
        assert Gauge("idle").snapshot()["value"] is None


class TestHistogram:
    def test_exact_quantiles_below_reservoir(self):
        h = Histogram("latency")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.count == 100
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(50.5)
        assert h.quantile(0.50) == 50
        assert h.quantile(0.95) == 95
        assert h.quantile(0.0) == 1
        assert h.quantile(1.0) == 100

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("latency").quantile(1.5)

    def test_reservoir_bounds_memory_counts_stay_exact(self):
        h = Histogram("big", reservoir_size=16)
        for v in range(1000):
            h.observe(v)
        assert h.count == 1000
        assert h.total == sum(range(1000))
        assert h.max == 999
        assert len(h._reservoir) == 16
        # Sampled quantiles stay inside the observed range.
        assert 0 <= h.quantile(0.5) <= 999

    def test_empty_snapshot(self):
        assert Histogram("idle").snapshot() == {"type": "histogram", "count": 0}


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.histogram("a.b")

    def test_names_prefix_respects_dotted_segments(self):
        reg = MetricsRegistry()
        for name in ("astar.expanded", "astar.generated", "astarx.other"):
            reg.counter(name)
        assert reg.names("astar") == ["astar.expanded", "astar.generated"]
        assert reg.names() == sorted(
            ["astar.expanded", "astar.generated", "astarx.other"]
        )

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        parsed = json.loads(json.dumps(reg.snapshot()))
        assert parsed["c"] == {"type": "counter", "value": 3}
        assert parsed["h"]["count"] == 1

    def test_summary_table_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("engine.queries").inc(2)
        reg.gauge("astar.heap_peak").set(7)
        reg.histogram("ivm.flush.batch_size").observe(40)
        table = reg.summary_table()
        assert "engine.queries" in table
        assert "astar.heap_peak" in table
        assert "ivm.flush.batch_size" in table
        assert "p95" in table  # header present
