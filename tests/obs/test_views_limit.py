"""The /views route's fleet-scale row cap (?limit=)."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.serve import VIEWS_DEFAULT_LIMIT, MetricsServer


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read().decode())


def summaries(n: int) -> dict:
    # Distinct sim_ms so the truncation ranking is fully determined.
    return {
        f"view{i:03d}": {"view": f"view{i:03d}", "sim_ms": float(i), "rounds": 1}
        for i in range(n)
    }


@pytest.fixture
def serve():
    servers = []

    def start(views):
        server = MetricsServer(obs.Recorder(), port=0, views=lambda: views)
        server.start()
        servers.append(server)
        return server

    try:
        yield start
    finally:
        for server in servers:
            server.stop()


class TestViewsLimit:
    def test_under_limit_payload_shape_unchanged(self, serve):
        views = summaries(3)
        server = serve(views)
        status, payload = _get(server.url + "/views")
        assert status == 200
        assert payload == {"views": views}  # no truncation keys

    def test_default_limit_applies(self, serve):
        views = summaries(VIEWS_DEFAULT_LIMIT + 7)
        server = serve(views)
        __, payload = _get(server.url + "/views")
        assert len(payload["views"]) == VIEWS_DEFAULT_LIMIT
        assert payload["omitted"] == 7
        assert payload["total_views"] == VIEWS_DEFAULT_LIMIT + 7

    def test_explicit_limit_keeps_costliest(self, serve):
        server = serve(summaries(10))
        __, payload = _get(server.url + "/views?limit=2")
        assert set(payload["views"]) == {"view009", "view008"}
        assert payload["omitted"] == 8
        assert payload["total_views"] == 10

    def test_limit_zero_omits_everything(self, serve):
        server = serve(summaries(3))
        __, payload = _get(server.url + "/views?limit=0")
        assert payload["views"] == {}
        assert payload["omitted"] == 3

    def test_invalid_limit_is_400(self, serve):
        server = serve(summaries(3))
        for bad in ("abc", "-1"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + f"/views?limit={bad}")
            assert excinfo.value.code == 400


class TestRegistryRemovePrefix:
    def test_removes_family_and_counts(self):
        recorder = obs.Recorder()
        recorder.counter("ivm.view.a.rounds")
        recorder.counter("ivm.view.a.flushes")
        recorder.counter("ivm.view.ab.rounds")  # not under "ivm.view.a."
        recorder.gauge("ivm.view.a.backlog", 1)
        assert recorder.registry.remove_prefix("ivm.view.a") == 3
        assert recorder.registry.names("ivm.view.a") == []
        assert recorder.registry.names("ivm.view.ab") == ["ivm.view.ab.rounds"]

    def test_exact_name_also_matches(self):
        recorder = obs.Recorder()
        recorder.counter("solo")
        assert recorder.registry.remove_prefix("solo") == 1
        assert recorder.registry.remove_prefix("solo") == 0
