"""Tests for the multi-view maintenance coordinator."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater
from tests.conftest import make_paper_spec, make_tpcr_db

COSTS = (LinearCost(slope=0.2, setup=1.0), LinearCost(slope=10.0, setup=120.0))


def count_view_spec():
    """A second summary over the same tables: suppliers per region."""
    return QuerySpec(
        base_alias="S",
        base_table="supplier",
        joins=(
            JoinSpec("N", "nation", "S.nationkey", "nationkey"),
            JoinSpec("R", "region", "N.regionkey", "regionkey"),
        ),
        aggregate=AggregateSpec(
            func="count", value=col("S.suppkey"), group_by=("R.name",)
        ),
    )


def make_coordinator():
    db = make_tpcr_db()
    coordinator = MaintenanceCoordinator(db)
    coordinator.add_view(
        ViewConfig(
            name="min_cost",
            query=make_paper_spec(),
            policy=OnlinePolicy(),
            cost_functions=COSTS,
            limit=600.0,
            scheduled_aliases=("PS", "S"),
        )
    )
    coordinator.add_view(
        ViewConfig(
            name="region_counts",
            query=count_view_spec(),
            policy=NaivePolicy(),
            cost_functions=(LinearCost(slope=12.0, setup=20.0),),
            limit=400.0,
            scheduled_aliases=("S",),
        )
    )
    ps = PartSuppCostUpdater(db.table("partsupp"), seed=91)
    sup = SupplierNationUpdater(db.table("supplier"), seed=92)
    return coordinator, ps, sup


class TestCoordination:
    def test_registration(self):
        coordinator, __, __ = make_coordinator()
        assert coordinator.views == ("min_cost", "region_counts")
        with pytest.raises(ValueError, match="already registered"):
            coordinator.add_view(
                ViewConfig(
                    name="min_cost",
                    query=make_paper_spec(),
                    policy=NaivePolicy(),
                    cost_functions=COSTS,
                    limit=600.0,
                    scheduled_aliases=("PS", "S"),
                )
            )

    def test_shared_clock_steps_every_view(self):
        coordinator, ps, sup = make_coordinator()
        for t in range(10):
            ps.apply(6)
            sup.apply(1)
            records = coordinator.step(t)
            assert set(records) == {"min_cost", "region_counts"}
            assert all(r.t == t for r in records.values())

    def test_views_lag_independently(self):
        coordinator, ps, sup = make_coordinator()
        for t in range(8):
            ps.apply(6)
            sup.apply(1)
            coordinator.step(t)
        # Different policies, different constraints: different pending
        # states are expected, and each view matches its own recompute.
        for name, maintainer in coordinator.iter_maintainers():
            assert maintainer.view.contents() == maintainer.view.recompute()

    def test_refresh_all(self):
        coordinator, ps, sup = make_coordinator()
        ps.apply(10)
        sup.apply(2)
        records = coordinator.refresh()
        assert set(records) == {"min_cost", "region_counts"}
        for __, maintainer in coordinator.iter_maintainers():
            assert not maintainer.view.is_stale()

    def test_refresh_subset(self):
        coordinator, ps, sup = make_coordinator()
        ps.apply(4)
        sup.apply(1)
        coordinator.refresh(names=["min_cost"])
        assert not coordinator.maintainer("min_cost").view.is_stale()
        # The other view has not even pulled yet; force a pull to see lag.
        other = coordinator.maintainer("region_counts").view
        other.deltas["S"].pull()
        assert other.is_stale()

    def test_cost_accounting(self):
        coordinator, ps, sup = make_coordinator()
        for t in range(6):
            ps.apply(6)
            sup.apply(1)
            coordinator.step(t)
        coordinator.refresh()
        breakdown = coordinator.cost_breakdown()
        assert set(breakdown) == {"min_cost", "region_counts"}
        assert coordinator.total_cost_ms() == pytest.approx(
            sum(breakdown.values())
        )
        assert coordinator.total_cost_ms() > 0

    def test_remove_view(self):
        coordinator, __, __ = make_coordinator()
        coordinator.remove_view("region_counts")
        assert coordinator.views == ("min_cost",)
        with pytest.raises(KeyError):
            coordinator.remove_view("region_counts")
        with pytest.raises(KeyError):
            coordinator.maintainer("region_counts")
