"""Unit and behavior tests for shared-scan maintenance rounds."""

import pytest

from repro import obs
from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.engine.errors import ExecutionError
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, OrderSpec, QuerySpec
from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig
from repro.ivm.sharedscan import SharedScanRound, _merge_intervals
from repro.ivm.view import MaterializedView
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater
from tests.conftest import make_paper_spec, make_tpcr_db

NAIVE_COST = (LinearCost(slope=0.5, setup=2.0),)


def availqty_spec() -> QuerySpec:
    """Single-table aggregate that never reads ``supplycost``: every event
    of a PartSuppCostUpdater stream is a provable no-op for it."""
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        aggregate=AggregateSpec(
            func="sum", value=col("PS.availqty"), group_by=("PS.suppkey",)
        ),
    )


def supplycost_spec() -> QuerySpec:
    """Single-table aggregate that *does* read ``supplycost``."""
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
    )


def _reshard_history(table, chunk_size: int):
    """Replace a table's ModLog with an equivalent small-chunk one, so
    truncation (whole chunks only) has granularity at test volumes."""
    from repro.engine.table import ModLog

    new = ModLog(chunk_size=chunk_size)
    for event in table.history:
        new.append(event)
    table.history = new
    return new


def add_naive(coordinator, name, spec):
    # NaivePolicy flushes only when the state is full; a limit below one
    # event's refresh cost makes every non-empty state full, so the view
    # flushes everything every step (f(0) = 0 keeps the empty state legal).
    return coordinator.add_view(
        ViewConfig(
            name=name,
            query=spec,
            policy=NaivePolicy(),
            cost_functions=NAIVE_COST,
            limit=1.0,
            scheduled_aliases=("PS",),
        )
    )


class TestMergeIntervals:
    def test_disjoint_stay_separate(self):
        assert _merge_intervals([(0, 3), (5, 8)]) == [(0, 3), (5, 8)]

    def test_overlap_and_containment_merge(self):
        assert _merge_intervals([(0, 5), (3, 8), (6, 7)]) == [(0, 8)]

    def test_adjacent_merge(self):
        assert _merge_intervals([(0, 3), (3, 6)]) == [(0, 6)]

    def test_unsorted_input(self):
        assert _merge_intervals([(5, 9), (0, 2), (1, 4)]) == [(0, 4), (5, 9)]


class TestReferencedColumns:
    def test_aggregate_view_collects_value_and_group_refs(self):
        db = make_tpcr_db()
        view = MaterializedView("v", db, availqty_spec())
        assert view.referenced_columns("PS") == {"availqty", "suppkey"}

    def test_join_keys_and_filters_count(self):
        db = make_tpcr_db()
        view = MaterializedView("v", db, make_paper_spec())
        assert view.referenced_columns("PS") == {"supplycost", "suppkey"}
        assert view.referenced_columns("S") == {"suppkey", "nationkey"}
        assert view.referenced_columns("R") == {"regionkey", "name"}

    def test_whole_row_spj_is_never_suppressible(self):
        db = make_tpcr_db()
        spec = QuerySpec(base_alias="PS", base_table="partsupp")
        view = MaterializedView("v", db, spec)
        assert view.referenced_columns("PS") is None

    def test_order_by_and_limit_are_conservative(self):
        db = make_tpcr_db()
        spec = QuerySpec(
            base_alias="PS",
            base_table="partsupp",
            projection=("PS.partkey",),
            order_by=(OrderSpec("PS.partkey"),),
            limit=5,
        )
        view = MaterializedView("v", db, spec)
        assert view.referenced_columns("PS") is None


class TestSharedScanRound:
    def _setup(self):
        db = make_tpcr_db()
        views = [
            MaterializedView("a", db, availqty_spec()),
            MaterializedView("b", db, supplycost_spec()),
        ]
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=7)
        return db, views, updater

    def test_scan_charges_once_regardless_of_subscribers(self):
        db, views, updater = self._setup()
        updater.apply(20)
        for view in views:
            for delta in view.deltas.values():
                delta.pull()
        round_ = SharedScanRound(db)
        for view in views:
            round_.request(view.deltas["PS"], 20)
        before = db.counter.snapshot()
        assert round_.run() == 1
        after = db.counter.snapshot()
        # 20 update events -> 40 split rows, charged exactly once.
        assert after["tuple_cpu"] - before["tuple_cpu"] == 40
        assert round_.tables == ("partsupp",)

    def test_requests_closed_after_run(self):
        db, views, __ = self._setup()
        round_ = SharedScanRound(db)
        round_.run()
        with pytest.raises(ExecutionError, match="already ran"):
            round_.request(views[0].deltas["PS"], 1)
        with pytest.raises(ExecutionError, match="already ran"):
            round_.run()

    def test_batch_requires_run(self):
        db, views, updater = self._setup()
        updater.apply(2)
        views[0].deltas["PS"].pull()
        round_ = SharedScanRound(db)
        round_.request(views[0].deltas["PS"], 2)
        with pytest.raises(ExecutionError, match="not run yet"):
            round_.batch_for(views[0], "PS", 2)

    def test_unrequested_window_rejected(self):
        db, views, updater = self._setup()
        updater.apply(4)
        for view in views:
            view.deltas["PS"].pull()
        round_ = SharedScanRound(db)
        round_.request(views[0].deltas["PS"], 2)
        round_.run()
        with pytest.raises(ExecutionError, match="was not requested"):
            round_.batch_for(views[1], "PS", 4)

    def test_fingerprint_suppresses_untouched_view_only(self):
        db, views, updater = self._setup()
        insensitive, sensitive = views
        updater.apply(10)
        for view in views:
            view.deltas["PS"].pull()
        round_ = SharedScanRound(db)
        for view in views:
            round_.request(view.deltas["PS"], 10)
        round_.run()
        assert round_.batch_for(insensitive, "PS", 10).suppressed
        batch = round_.batch_for(sensitive, "PS", 10)
        assert not batch.suppressed
        assert len(batch.deleted) == 10 and len(batch.inserted) == 10

    def test_mixed_kind_window_never_suppressed(self):
        db, views, updater = self._setup()
        updater.apply(3)
        # Append a genuine insert: reuse an existing row's values.
        row = next(iter(db.table("partsupp").live_rows()))
        db.table("partsupp").insert(row)
        insensitive = views[0]
        insensitive.deltas["PS"].pull()
        round_ = SharedScanRound(db)
        round_.request(insensitive.deltas["PS"], 4)
        round_.run()
        assert not round_.batch_for(insensitive, "PS", 4).suppressed


class TestCoordinatorSharedRounds:
    def test_suppressed_rounds_stay_correct_and_visible(self):
        db = make_tpcr_db()
        coordinator = MaintenanceCoordinator(db)
        add_naive(coordinator, "insensitive", availqty_spec())
        add_naive(coordinator, "sensitive", supplycost_spec())
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=17)
        with obs.recording() as recorder:
            for t in range(5):
                updater.apply(8)
                coordinator.step(t)
        for __, maintainer in coordinator.iter_maintainers():
            assert maintainer.view.contents() == maintainer.view.recompute()
            assert not maintainer.view.is_stale()
        skipped = recorder.registry.get("ivm.skip.fingerprint")
        assert skipped is not None and skipped.value == 5
        assert recorder.registry.get("ivm.coordinator.rounds").value == 5
        assert recorder.registry.get("ivm.coordinator.scan.tables").value == 5
        # The insensitive view's ledger shows rounds where mods were
        # incorporated without any join charges.
        ledger = coordinator.maintainer("insensitive").ledger
        assert ledger.total_mods == 40
        assert ledger.charge_totals() == {}

    def test_idle_rounds_emit_skip_empty_and_full_series(self):
        db = make_tpcr_db()
        coordinator = MaintenanceCoordinator(db)
        add_naive(coordinator, "only", availqty_spec())
        with obs.recording() as recorder:
            for t in range(3):
                coordinator.step(t)  # no modifications at all
        assert recorder.registry.get("ivm.skip.empty").value == 3
        ledger = coordinator.maintainer("only").ledger
        assert ledger.rounds == 3 and ledger.total_sim_ms == 0.0
        vid = ledger.metric_id
        assert recorder.registry.get(f"ivm.view.{vid}.rounds").value == 3
        assert (
            recorder.registry.get(f"ivm.view.{vid}.round_ms").count
            == ledger.rounds
        )

    def test_log_truncates_once_all_views_catch_up(self):
        db = make_tpcr_db()
        # Small chunks so truncation has granularity at test volumes.
        log = _reshard_history(db.table("partsupp"), chunk_size=16)
        coordinator = MaintenanceCoordinator(db)
        add_naive(coordinator, "a", availqty_spec())
        add_naive(coordinator, "b", supplycost_spec())
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=23)
        with obs.recording() as recorder:
            for t in range(6):
                updater.apply(16)
                coordinator.step(t)
        assert log.truncated_lsn > 0
        truncated = recorder.registry.get("ivm.coordinator.log_truncated")
        assert truncated is not None and truncated.value == log.truncated_lsn

    def test_remove_view_releases_pin_ledger_and_metrics(self):
        db = make_tpcr_db()
        log = db.table("partsupp").history
        coordinator = MaintenanceCoordinator(db)
        add_naive(coordinator, "keeper", availqty_spec())
        laggard = add_naive(coordinator, "laggard", supplycost_spec())
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=29)
        with obs.recording() as recorder:
            updater.apply(32)
            coordinator.step(0)
            # Make the laggard actually lag: new mods it never processes.
            updater.apply(32)
            coordinator.refresh(names=["keeper"], t=1)
            assert log.safe_truncation_lsn() == laggard.deltas["PS"].applied_lsn
            vid = coordinator.maintainer("laggard").ledger.metric_id
            assert recorder.registry.names(f"ivm.view.{vid}")
            coordinator.remove_view("laggard")
            # Pin released: the log could truncate past the laggard...
            assert log.safe_truncation_lsn() == db.table(
                "partsupp"
            ).current_lsn
            # ...its metric series are gone, the keeper's remain.
            assert recorder.registry.names(f"ivm.view.{vid}") == []
            keeper_vid = coordinator.maintainer("keeper").ledger.metric_id
            assert recorder.registry.names(f"ivm.view.{keeper_vid}")

    def test_shared_flag_per_call_override(self):
        db = make_tpcr_db()
        coordinator = MaintenanceCoordinator(db, shared_scans=False)
        add_naive(coordinator, "only", availqty_spec())
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=31)
        with obs.recording() as recorder:
            updater.apply(4)
            coordinator.step(0)  # independent (constructor default)
            updater.apply(4)
            coordinator.step(1, shared=True)  # forced shared
        assert recorder.registry.get("ivm.coordinator.rounds").value == 1


class TestLedgerSummaryCap:
    def test_under_limit_sorts_ties_by_view_id(self):
        # Rows are always (cost desc, id asc) -- registration order must
        # not leak into the rendering even below the row cap.
        db = make_tpcr_db()
        coordinator = MaintenanceCoordinator(db)
        add_naive(coordinator, "zz_first", availqty_spec())
        add_naive(coordinator, "aa_second", supplycost_spec())
        lines = coordinator.ledger_summary().splitlines()
        assert lines[2].startswith("aa_second")
        assert lines[3].startswith("zz_first")

    def test_over_limit_ranks_by_cost_and_aggregates_rest(self):
        db = make_tpcr_db()
        coordinator = MaintenanceCoordinator(db)
        for i in range(6):
            add_naive(coordinator, f"v{i}", availqty_spec())
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=37)
        updater.apply(10)
        coordinator.refresh()
        table = coordinator.ledger_summary(limit=3)
        lines = table.splitlines()
        assert len(lines) == 2 + 3 + 1  # header, rule, 3 rows, remainder
        assert "(+3 more views)" in lines[-1]
        full = coordinator.ledger_summary(limit=None)
        assert len(full.splitlines()) == 2 + 6
