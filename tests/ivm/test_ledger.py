"""Tests for the per-view maintenance ledger (``repro.ivm.ledger``).

Unit coverage of the entry/ledger data model and the golden summary
table, plus the acceptance scenario: a coordinator hosting eight views
over shared TPC-R base tables reports per-view per-round cost, with
cumulative ledger totals agreeing with the maintenance log and the
``ivm.view.*`` metric family.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.engine.costmodel import CostModel
from repro.ivm.ledger import RoundEntry, ViewLedger, ledger_summary
from repro.ivm.maintainer import ViewMaintainer
from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig
from repro.ivm.view import MaterializedView
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater
from tests.conftest import make_paper_spec, make_tpcr_db
from tests.ivm.test_multiview import COSTS, count_view_spec


def alpha_ledger() -> ViewLedger:
    """Two fixed rounds with hand-picked charges (used by golden tests)."""
    ledger = ViewLedger(view="alpha", aliases=("PS", "S"))
    ledger.record(
        RoundEntry(
            t=0,
            arrivals=(2, 1),
            pre_state=(2, 1),
            action=(2, 0),
            forced=False,
            predicted_ms=1.0,
            sim_ms=12.5,
            wall_ms=0.8,
            backlog=1,
            charges={"index_probes": 10, "agg_updates": 5},
        )
    )
    ledger.record(
        RoundEntry(
            t=1,
            arrivals=(1, 1),
            pre_state=(2, 1),
            action=(1, 1),
            forced=True,
            predicted_ms=2.0,
            sim_ms=7.5,
            wall_ms=0.2,
            backlog=0,
            charges={"hash_probes": 100, "sort_items": 3},
        )
    )
    return ledger


class TestRoundEntry:
    def test_mods_and_flushes(self):
        entry = alpha_ledger().entries[0]
        assert entry.mods_applied == 2
        assert entry.flushes == 1  # only the PS component flushed
        both = alpha_ledger().entries[1]
        assert both.mods_applied == 2
        assert both.flushes == 2

    def test_frozen(self):
        entry = alpha_ledger().entries[0]
        with pytest.raises(AttributeError):
            entry.t = 99


class TestViewLedger:
    def test_cumulative_totals(self):
        ledger = alpha_ledger()
        assert ledger.rounds == 2
        assert ledger.flushes == 3
        assert ledger.total_mods == 4
        assert ledger.total_sim_ms == pytest.approx(20.0)
        assert ledger.total_wall_ms == pytest.approx(1.0)
        assert ledger.backlog == 0  # last round cleared it

    def test_charge_totals_merge_fields(self):
        assert alpha_ledger().charge_totals() == {
            "index_probes": 10,
            "agg_updates": 5,
            "hash_probes": 100,
            "sort_items": 3,
        }

    def test_join_and_agg_cost_split(self):
        model = CostModel()  # index_probe=0.02 hash_probe=0.008 ...
        ledger = alpha_ledger()
        assert ledger.join_ms(model) == pytest.approx(
            10 * model.index_probe + 100 * model.hash_probe
        )
        assert ledger.agg_ms(model) == pytest.approx(
            5 * model.agg_update + 3 * model.sort_item
        )

    def test_metric_id_sanitizes_view_names(self):
        assert ViewLedger(view="min cost.v2", aliases=()).metric_id == (
            "min_cost_v2"
        )
        assert ViewLedger(view="plain-name_3", aliases=()).metric_id == (
            "plain-name_3"
        )

    def test_empty_ledger(self):
        ledger = ViewLedger(view="v", aliases=("PS",))
        assert ledger.rounds == 0
        assert ledger.backlog == 0
        assert ledger.charge_totals() == {}
        assert ledger.summary(CostModel())["sim_ms"] == 0


class TestGoldenSummary:
    def test_ledger_summary_golden(self):
        beta = ViewLedger(view="beta", aliases=("S",))
        table = ledger_summary([alpha_ledger(), beta], CostModel())
        assert table == (
            "view            rounds  flushes     mods     sim ms"
            "    join ms     agg ms  backlog\n"
            "-----------------------------------------------------"
            "-----------------------------\n"
            "alpha                2        3        4     20.000"
            "      1.000      0.110        0\n"
            "beta                 0        0        0      0.000"
            "      0.000      0.000        0"
        )

    def test_equal_cost_views_sort_by_id_regardless_of_order(self):
        """Regression: the summary used to keep registration order below
        the row cap, so two equal-cost fleets rendered differently
        depending on ``add_view`` order.  Rows now always sort
        (cost desc, view id asc)."""
        names = ["zulu", "alpha", "mike"]
        ledgers = {name: ViewLedger(view=name, aliases=("PS",)) for name in names}
        for ledger in ledgers.values():  # identical costs across views
            ledger.record(
                RoundEntry(
                    t=0,
                    arrivals=(1,),
                    pre_state=(1,),
                    action=(1,),
                    forced=False,
                    predicted_ms=1.0,
                    sim_ms=5.0,
                    wall_ms=0.1,
                    backlog=0,
                    charges={},
                )
            )
        reference = ledger_summary(
            [ledgers[n] for n in sorted(names)], CostModel()
        )
        shuffled = ledger_summary([ledgers[n] for n in names], CostModel())
        assert shuffled == reference
        rows = [line.split()[0] for line in shuffled.splitlines()[2:]]
        assert rows == ["alpha", "mike", "zulu"]

    def test_ledger_summary_empty(self):
        table = ledger_summary([], CostModel())
        assert table.splitlines()[-1] == "(no views)"

    def test_long_view_names_widen_the_column(self):
        long = ViewLedger(view="a" * 25, aliases=())
        table = ledger_summary([long], CostModel())
        header, dashes, row = table.splitlines()
        assert header.startswith("view" + " " * 21)
        assert row.startswith("a" * 25)
        assert len(dashes) == len(header)


class TestMaintainerLedger:
    def make_maintainer(self):
        db = make_tpcr_db()
        view = MaterializedView("paper", db, make_paper_spec())
        maintainer = ViewMaintainer(
            view,
            COSTS,
            limit=600.0,
            policy=OnlinePolicy(),
            scheduled_aliases=("PS", "S"),
        )
        ps = PartSuppCostUpdater(db.table("partsupp"), seed=21)
        sup = SupplierNationUpdater(db.table("supplier"), seed=22)
        return maintainer, ps, sup

    def test_one_entry_per_round(self):
        maintainer, ps, sup = self.make_maintainer()
        for t in range(6):
            ps.apply(6)
            sup.apply(1)
            maintainer.step(t)
        maintainer.refresh()
        assert maintainer.ledger.rounds == 7
        assert [e.t for e in maintainer.ledger.entries] == list(range(7))
        assert maintainer.ledger.entries[-1].forced
        assert maintainer.ledger.backlog == 0

    def test_ledger_agrees_with_maintenance_log(self):
        maintainer, ps, sup = self.make_maintainer()
        for t in range(5):
            ps.apply(6)
            sup.apply(1)
            maintainer.step(t)
        maintainer.refresh()
        ledger, log = maintainer.ledger, maintainer.log
        assert ledger.total_sim_ms == pytest.approx(log.total_actual_cost_ms)
        assert ledger.total_mods == sum(sum(s.action) for s in log.steps)
        for entry, step in zip(ledger.entries, log.steps, strict=True):
            assert entry.t == step.t
            assert entry.action == step.action
            assert entry.pre_state == step.pre_state
            assert entry.sim_ms == pytest.approx(step.actual_cost_ms)
            assert entry.wall_ms >= 0

    def test_round_charges_weigh_up_to_round_cost(self):
        """Per-round charge deltas priced under the model reproduce the
        round's simulated cost exactly -- the ledger loses nothing."""
        maintainer, ps, sup = self.make_maintainer()
        model = maintainer.view.database.counter.model
        from repro.engine.costmodel import OperationCounter

        weights = OperationCounter._WEIGHT_BY_FIELD
        for t in range(4):
            ps.apply(8)
            sup.apply(1)
            maintainer.step(t)
        maintainer.refresh()
        flushed = [e for e in maintainer.ledger.entries if e.flushes]
        assert flushed, "workload never flushed; test is vacuous"
        for entry in flushed:
            priced = sum(
                count * getattr(model, weights[f])
                for f, count in entry.charges.items()
            )
            assert priced == pytest.approx(entry.sim_ms)

    def test_view_metrics_emitted_under_recorder(self):
        maintainer, ps, sup = self.make_maintainer()
        with obs.recording() as rec:
            for t in range(4):
                ps.apply(6)
                sup.apply(1)
                maintainer.step(t)
            maintainer.refresh()
        registry = rec.registry
        ledger = maintainer.ledger
        vid = ledger.metric_id
        assert registry.get(f"ivm.view.{vid}.rounds").value == ledger.rounds
        assert registry.get(f"ivm.view.{vid}.flushes").value == ledger.flushes
        assert registry.get(
            f"ivm.view.{vid}.mods_applied"
        ).value == ledger.total_mods
        assert registry.get(
            f"ivm.view.{vid}.cost_ms"
        ).value == pytest.approx(ledger.total_sim_ms)
        assert registry.get(f"ivm.view.{vid}.backlog").value == ledger.backlog
        assert registry.get(
            f"ivm.view.{vid}.round_ms"
        ).count == ledger.rounds

    def test_no_metrics_without_recorder(self):
        maintainer, ps, sup = self.make_maintainer()
        ps.apply(6)
        sup.apply(1)
        maintainer.step(0)
        # The ledger still filled (always on); only export was skipped.
        assert maintainer.ledger.rounds == 1


class TestCoordinatorFleet:
    """The acceptance scenario: >= 8 views over shared base tables."""

    N_PAPER, N_COUNT = 4, 4

    def make_fleet(self):
        db = make_tpcr_db()
        coordinator = MaintenanceCoordinator(db)
        for i in range(self.N_PAPER):
            coordinator.add_view(
                ViewConfig(
                    name=f"min_cost_{i}",
                    query=make_paper_spec(),
                    policy=OnlinePolicy() if i % 2 else NaivePolicy(),
                    cost_functions=COSTS,
                    limit=600.0 + 50.0 * i,
                    scheduled_aliases=("PS", "S"),
                )
            )
        for i in range(self.N_COUNT):
            coordinator.add_view(
                ViewConfig(
                    name=f"region_counts_{i}",
                    query=count_view_spec(),
                    policy=NaivePolicy(),
                    cost_functions=(LinearCost(slope=12.0, setup=20.0),),
                    limit=300.0 + 100.0 * i,
                    scheduled_aliases=("S",),
                )
            )
        ps = PartSuppCostUpdater(db.table("partsupp"), seed=91)
        sup = SupplierNationUpdater(db.table("supplier"), seed=92)
        return coordinator, ps, sup

    def run_fleet(self, coordinator, ps, sup, steps=5):
        for t in range(steps):
            ps.apply(6)
            sup.apply(1)
            coordinator.step(t)
        coordinator.refresh()

    def test_every_view_has_a_full_ledger(self):
        coordinator, ps, sup = self.make_fleet()
        self.run_fleet(coordinator, ps, sup)
        ledgers = coordinator.ledgers()
        assert len(ledgers) == self.N_PAPER + self.N_COUNT >= 8
        for name, ledger in ledgers.items():
            assert ledger.view == name
            assert ledger.rounds == 6  # 5 steps + forced refresh
            assert ledger.backlog == 0
            assert ledger.total_sim_ms > 0

    def test_ledger_snapshot_matches_cost_breakdown(self):
        coordinator, ps, sup = self.make_fleet()
        self.run_fleet(coordinator, ps, sup)
        snapshot = coordinator.ledger_snapshot()
        breakdown = coordinator.cost_breakdown()
        assert set(snapshot) == set(breakdown)
        for name, summary in snapshot.items():
            assert summary["sim_ms"] == pytest.approx(breakdown[name])
            assert summary["join_ms"] + summary["agg_ms"] <= (
                summary["sim_ms"] + 1e-9
            )

    def test_views_differ_per_policy_and_spec(self):
        """Eight ledgers over the same base tables are genuinely per-view:
        paper views see two scheduled aliases, count views one, and the
        per-view cost split reflects each view's own plan."""
        coordinator, ps, sup = self.make_fleet()
        self.run_fleet(coordinator, ps, sup)
        ledgers = coordinator.ledgers()
        for i in range(self.N_PAPER):
            assert ledgers[f"min_cost_{i}"].aliases == ("PS", "S")
        for i in range(self.N_COUNT):
            assert ledgers[f"region_counts_{i}"].aliases == ("S",)
        model = coordinator.database.counter.model
        paper_join = ledgers["min_cost_0"].join_ms(model)
        assert paper_join > 0  # the 4-way join pays probe work

    def test_summary_table_lists_all_views(self):
        coordinator, ps, sup = self.make_fleet()
        self.run_fleet(coordinator, ps, sup, steps=2)
        table = coordinator.ledger_summary()
        lines = table.splitlines()
        assert lines[0].split() == [
            "view", "rounds", "flushes", "mods",
            "sim", "ms", "join", "ms", "agg", "ms", "backlog",
        ]
        assert len(lines) == 2 + self.N_PAPER + self.N_COUNT
        for name in coordinator.views:
            assert any(line.startswith(name) for line in lines[2:])

    def test_fleet_metrics_per_view(self):
        coordinator, ps, sup = self.make_fleet()
        with obs.recording() as rec:
            self.run_fleet(coordinator, ps, sup, steps=3)
        names = set(rec.registry.names(prefix="ivm.view."))
        for name, ledger in coordinator.ledgers().items():
            vid = ledger.metric_id
            assert f"ivm.view.{vid}.rounds" in names
            assert rec.registry.get(
                f"ivm.view.{vid}.rounds"
            ).value == ledger.rounds
