"""Tests for the response-time-constrained view maintainer runtime."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import Policy, PolicyError, ReplayPolicy
from repro.ivm.maintainer import ViewMaintainer
from tests.conftest import make_paper_spec, make_tpcr_db
from repro.ivm.view import MaterializedView
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater

COSTS = (LinearCost(slope=0.2, setup=1.0), LinearCost(slope=10.0, setup=120.0))
LIMIT = 600.0


def make_maintainer(policy, verify=False):
    db = make_tpcr_db()
    view = MaterializedView("v", db, make_paper_spec())
    maintainer = ViewMaintainer(
        view,
        COSTS,
        limit=LIMIT,
        policy=policy,
        verify=verify,
        scheduled_aliases=("PS", "S"),
    )
    ps = PartSuppCostUpdater(db.table("partsupp"), seed=21)
    sup = SupplierNationUpdater(db.table("supplier"), seed=22)
    return maintainer, ps, sup


class TestStepAndRefresh:
    def test_naive_run_stays_consistent(self):
        maintainer, ps, sup = make_maintainer(NaivePolicy(), verify=True)
        for t in range(12):
            ps.apply(8)
            sup.apply(1)
            maintainer.step(t)
        maintainer.refresh(12)
        assert not maintainer.view.is_stale()
        assert maintainer.view.contents() == maintainer.view.recompute()

    def test_online_run_stays_consistent(self):
        maintainer, ps, sup = make_maintainer(OnlinePolicy(), verify=True)
        for t in range(12):
            ps.apply(8)
            sup.apply(1)
            maintainer.step(t)
        maintainer.refresh(12)
        assert maintainer.view.contents() == maintainer.view.recompute()

    def test_log_records_every_step(self):
        maintainer, ps, sup = make_maintainer(NaivePolicy())
        for t in range(5):
            ps.apply(2)
            maintainer.step(t)
        assert len(maintainer.log.steps) == 5
        assert maintainer.log.steps[0].arrivals == (2, 0)
        assert maintainer.log.total_actual_cost_ms >= 0.0

    def test_predicted_cost_uses_calibrated_functions(self):
        maintainer, ps, sup = make_maintainer(NaivePolicy())
        sup.apply(60)  # f_S(60) = 120 + 600 = 720 > C: forced flush
        record = maintainer.step(0)
        assert record.action == (0, 60)
        assert record.predicted_cost == pytest.approx(720.0)
        assert record.actual_cost_ms > 0.0

    def test_clock_auto_increments(self):
        maintainer, ps, sup = make_maintainer(NaivePolicy())
        ps.apply(1)
        r0 = maintainer.step()
        ps.apply(1)
        r1 = maintainer.step()
        assert (r0.t, r1.t) == (0, 1)

    def test_refresh_empties_all_deltas(self):
        maintainer, ps, sup = make_maintainer(NaivePolicy())
        ps.apply(5)
        sup.apply(2)
        maintainer.refresh()
        assert maintainer.pre_state() == (0, 0)
        assert not maintainer.view.is_stale()

    def test_action_counts(self):
        maintainer, ps, sup = make_maintainer(NaivePolicy())
        for t in range(4):
            ps.apply(1)
            maintainer.step(t)
        maintainer.refresh()
        assert maintainer.log.action_count == 1  # only the final refresh
        plan = maintainer.log.actions_plan()
        assert len(plan) == 5


class TestPolicyViolations:
    def test_constraint_violation_raises(self):
        class DoNothing(Policy):
            def decide(self, t, pre_state):
                return (0,) * self.n

        maintainer, ps, sup = make_maintainer(DoNothing())
        sup.apply(60)  # refresh cost 720 > C
        with pytest.raises(PolicyError, match="violates"):
            maintainer.step(0)

    def test_overdraw_raises(self):
        class Overdraw(Policy):
            def decide(self, t, pre_state):
                return tuple(s + 1 for s in pre_state)

        maintainer, ps, sup = make_maintainer(Overdraw())
        ps.apply(1)
        with pytest.raises(PolicyError, match="exceeds"):
            maintainer.step(0)

    def test_unscheduled_table_modification_detected(self):
        maintainer, ps, sup = make_maintainer(NaivePolicy())
        # Nation is not a scheduled alias; modifying it must be flagged.
        nation = maintainer.view.database.table("nation")
        nation.update_rid(0, {"regionkey": 1})
        with pytest.raises(PolicyError, match="unscheduled"):
            maintainer.step(0)


class TestConstructionGuards:
    def test_wrong_cost_function_count(self):
        db = make_tpcr_db()
        view = MaterializedView("v", db, make_paper_spec())
        with pytest.raises(ValueError, match="one cost function"):
            ViewMaintainer(
                view, COSTS, limit=LIMIT, policy=NaivePolicy(),
                scheduled_aliases=("PS",),
            )

    def test_unknown_scheduled_alias(self):
        db = make_tpcr_db()
        view = MaterializedView("v", db, make_paper_spec())
        with pytest.raises(ValueError, match="not in view"):
            ViewMaintainer(
                view, COSTS, limit=LIMIT, policy=NaivePolicy(),
                scheduled_aliases=("PS", "ZZ"),
            )


class TestReplayThroughMaintainer:
    def test_replayed_plan_executes_live(self):
        # A hand-written plan: flush everything at t=2, and at refresh.
        plan_actions = [(0, 0), (0, 0), (6, 2), (0, 0)]
        maintainer, ps, sup = make_maintainer(
            ReplayPolicy(plan_actions), verify=True
        )
        for t in range(4):
            ps.apply(2)
            if t < 2:
                sup.apply(1)
            maintainer.step(t)
        maintainer.refresh(4)
        assert maintainer.view.contents() == maintainer.view.recompute()
        executed = maintainer.log.actions_plan()
        assert executed[2] == (6, 2)
