"""Hypothesis property tests for incremental view maintenance.

The invariant everything rests on: after ANY interleaving of base-table
modifications and partial batch applications, each view's incrementally
maintained contents equal a from-scratch recomputation at its
view-incorporated snapshot LSNs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.database import Database
from repro.engine.expr import col
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.engine.types import ColumnType, Schema
from repro.ivm.maintenance import apply_batch, full_refresh
from repro.ivm.view import MaterializedView


def fresh_db(r_rows, s_rows):
    db = Database()
    r = db.create_table("r", Schema.of(k=ColumnType.INT, a=ColumnType.INT))
    s = db.create_table("s", Schema.of(k=ColumnType.INT, b=ColumnType.INT))
    for row in r_rows:
        r.insert(row)
    for row in s_rows:
        s.insert(row)
    s.create_index("k")
    return db


def spj_spec():
    return QuerySpec(
        base_alias="R",
        base_table="r",
        joins=(JoinSpec("S", "s", "R.k", "k"),),
    )


def min_spec():
    return QuerySpec(
        base_alias="R",
        base_table="r",
        joins=(JoinSpec("S", "s", "R.k", "k"),),
        aggregate=AggregateSpec(func="min", value=col("R.a")),
    )


rows_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(-4, 4)),
    min_size=1,
    max_size=8,
)

#: One step of the interleaving script:
#: ("mod", table_choice, key, value)  -- modify a base table
#: ("apply", alias_choice, amount)   -- pull + apply a partial batch
script_steps = st.lists(
    st.one_of(
        st.tuples(
            st.just("mod"),
            st.sampled_from(["r", "s"]),
            st.sampled_from(["insert", "delete", "update"]),
            st.integers(0, 3),
            st.integers(-4, 4),
        ),
        st.tuples(
            st.just("apply"),
            st.sampled_from(["R", "S"]),
            st.integers(1, 5),
        ),
    ),
    min_size=1,
    max_size=30,
)


def run_script(view, db, steps):
    """Execute an interleaving script, checking the invariant after every
    batch application."""
    for step in steps:
        if step[0] == "mod":
            __, table_name, kind, k, v = step
            table = db.table(table_name)
            if kind == "insert":
                table.insert((k, v))
            else:
                rids = table.find_rids(lambda row: True)
                if not rids:
                    continue
                rid = rids[k % len(rids)]
                if kind == "delete":
                    table.delete_rid(rid)
                else:
                    column = "a" if table_name == "r" else "b"
                    table.update_rid(rid, {column: v})
        else:
            __, alias, amount = step
            delta = view.deltas[alias]
            delta.pull()
            take = min(amount, delta.size)
            if take:
                apply_batch(view, alias, take)
                assert view.contents() == view.recompute()


@given(r=rows_strategy, s=rows_strategy, steps=script_steps)
@settings(max_examples=40, deadline=None)
def test_spj_view_invariant_under_interleaving(r, s, steps):
    db = fresh_db(r, s)
    view = MaterializedView("v", db, spj_spec())
    run_script(view, db, steps)
    for delta in view.deltas.values():
        delta.pull()
    full_refresh(view)
    assert view.contents() == view.recompute()
    assert not view.is_stale()


@given(r=rows_strategy, s=rows_strategy, steps=script_steps)
@settings(max_examples=40, deadline=None)
def test_min_view_invariant_under_interleaving(r, s, steps):
    db = fresh_db(r, s)
    view = MaterializedView("v", db, min_spec())
    run_script(view, db, steps)
    for delta in view.deltas.values():
        delta.pull()
    full_refresh(view)
    assert view.contents() == view.recompute()


@given(r=rows_strategy, s=rows_strategy, steps=script_steps)
@settings(max_examples=25, deadline=None)
def test_two_views_over_shared_tables_stay_independent(r, s, steps):
    """Two views with different lags over the same base tables must each
    satisfy their own invariant (delta tables are per-view state)."""
    db = fresh_db(r, s)
    spj = MaterializedView("spj", db, spj_spec())
    agg = MaterializedView("agg", db, min_spec())
    # Drive only the SPJ view through the script; the MIN view lags fully.
    run_script(spj, db, steps)
    assert agg.contents() == agg.recompute()  # untouched, fully lagged
    for view in (spj, agg):
        for delta in view.deltas.values():
            delta.pull()
        full_refresh(view)
        assert view.contents() == view.recompute()
