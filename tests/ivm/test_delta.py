"""Unit tests for delta tables (pending-modification queues)."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.table import Table
from repro.engine.types import ColumnType, Schema
from repro.ivm.delta import DeltaTable


@pytest.fixture
def table():
    t = Table("t", Schema.of(k=ColumnType.INT))
    for i in range(3):
        t.insert((i,))
    return t


class TestPull:
    def test_starts_caught_up(self, table):
        delta = DeltaTable(table)
        assert delta.size == 0
        assert delta.applied_lsn == table.current_lsn

    def test_pull_ingests_new_events(self, table):
        delta = DeltaTable(table)
        table.insert((10,))
        table.insert((11,))
        assert delta.pull() == 2
        assert delta.size == 2
        assert delta.seen_lsn == table.current_lsn

    def test_pull_is_incremental(self, table):
        delta = DeltaTable(table)
        table.insert((10,))
        delta.pull()
        table.insert((11,))
        assert delta.pull() == 1
        assert delta.size == 2

    def test_pull_with_nothing_new(self, table):
        delta = DeltaTable(table)
        assert delta.pull() == 0


class TestTake:
    def test_fifo_order(self, table):
        delta = DeltaTable(table)
        table.insert((10,))
        table.insert((11,))
        delta.pull()
        events = delta.take(2)
        assert [e.new_values for e in events] == [(10,), (11,)]
        assert delta.size == 0

    def test_take_advances_applied_lsn(self, table):
        delta = DeltaTable(table)
        base_lsn = table.current_lsn
        table.insert((10,))
        table.insert((11,))
        delta.pull()
        delta.take(1)
        assert delta.applied_lsn == base_lsn + 1
        delta.take(1)
        assert delta.applied_lsn == base_lsn + 2

    def test_partial_take_keeps_remainder(self, table):
        delta = DeltaTable(table)
        for i in range(4):
            table.insert((100 + i,))
        delta.pull()
        delta.take(2)
        assert delta.size == 2
        assert delta.peek(1)[0].new_values == (102,)

    def test_overtake_rejected(self, table):
        delta = DeltaTable(table)
        table.insert((10,))
        delta.pull()
        with pytest.raises(ExecutionError, match="only 1 pending"):
            delta.take(2)

    def test_take_zero_on_empty_syncs_applied(self, table):
        delta = DeltaTable(table)
        table.insert((10,))
        delta.pull()
        delta.take(1)
        assert delta.take(0) == []
        assert delta.applied_lsn == delta.seen_lsn

    def test_negative_take_rejected(self, table):
        delta = DeltaTable(table)
        with pytest.raises(ValueError):
            delta.take(-1)
        with pytest.raises(ValueError):
            delta.peek(-1)

    def test_take_all(self, table):
        delta = DeltaTable(table)
        for i in range(3):
            table.insert((i,))
        delta.pull()
        assert len(delta.take_all()) == 3
        assert delta.size == 0

    def test_snapshot_at_applied_lsn_matches_processed_state(self, table):
        """The invariant the state-bug fix rests on."""
        delta = DeltaTable(table)
        table.insert((10,))
        table.update_rid(0, {"k": 99})
        delta.pull()
        delta.take(1)  # incorporate only the insert of 10
        snap = table.snapshot(delta.applied_lsn)
        assert sorted(snap.rows()) == [(0,), (1,), (2,), (10,)]
        delta.take(1)  # incorporate the update 0 -> 99
        snap = table.snapshot(delta.applied_lsn)
        assert sorted(snap.rows()) == [(1,), (2,), (10,), (99,)]
