"""Tests for materialized views and batch delta propagation.

The central correctness property: after any interleaving of base-table
modifications and partial batch applications, the view's incrementally
maintained contents equal a from-scratch recomputation at the
view-incorporated snapshot LSNs -- i.e. no state bug.
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.errors import ExecutionError
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.engine.types import ColumnType, Schema
from repro.ivm.maintenance import apply_batch, full_refresh, refresh_cost_breakdown
from repro.ivm.view import MaterializedView


def make_join_db():
    db = Database()
    r = db.create_table("r", Schema.of(k=ColumnType.INT, a=ColumnType.INT))
    s = db.create_table("s", Schema.of(k=ColumnType.INT, b=ColumnType.INT))
    for i in range(6):
        r.insert((i % 3, i))
    for i in range(3):
        s.insert((i, i * 10))
    return db


def join_spec(**overrides):
    defaults = dict(
        base_alias="R",
        base_table="r",
        joins=(JoinSpec("S", "s", "R.k", "k"),),
    )
    defaults.update(overrides)
    return QuerySpec(**defaults)


class TestSPJView:
    def test_initial_contents(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        contents = view.contents()
        assert sum(contents.values()) == 6  # every r row joins one s row

    def test_insert_propagation(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        db.table("r").insert((0, 99))
        view.deltas["R"].pull()
        apply_batch(view, "R", 1)
        assert view.contents() == view.recompute()
        assert sum(view.contents().values()) == 7

    def test_delete_propagation(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        db.table("r").delete_rid(0)
        view.deltas["R"].pull()
        apply_batch(view, "R", 1)
        assert view.contents() == view.recompute()
        assert sum(view.contents().values()) == 5

    def test_update_propagation(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        db.table("s").update_rid(0, {"b": 777})
        view.deltas["S"].pull()
        apply_batch(view, "S", 1)
        assert view.contents() == view.recompute()

    def test_duplicates_tracked_as_multiset(self):
        db = make_join_db()
        db.table("r").insert((0, 0))  # duplicate of rid 0's values
        view = MaterializedView("v", db, join_spec())
        dup_count = [c for c in view.contents().values() if c == 2]
        assert dup_count  # at least one row with multiplicity 2

    def test_projection_view(self):
        db = make_join_db()
        view = MaterializedView(
            "v", db, join_spec(projection=("R.k", "S.b"))
        )
        db.table("r").insert((1, 50))
        view.deltas["R"].pull()
        apply_batch(view, "R", 1)
        assert view.contents() == view.recompute()

    def test_deferred_view_sees_old_state(self):
        """Modifications not yet applied must not affect contents."""
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        before = view.contents()
        db.table("r").insert((0, 99))
        db.table("s").update_rid(0, {"b": -1})
        for d in view.deltas.values():
            d.pull()
        assert view.contents() == before
        assert view.is_stale()
        assert view.contents() == view.recompute()  # recompute at old LSNs


class TestStateBugSafety:
    def test_interleaved_partial_batches(self):
        """The classic state-bug scenario: R's batch must join S at the
        state the view has incorporated, not S's current state."""
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        # Both tables are modified; S's modification stays unprocessed.
        db.table("r").insert((0, 99))
        db.table("s").update_rid(0, {"b": 12345})
        for d in view.deltas.values():
            d.pull()
        apply_batch(view, "R", 1)  # processes R against *old* S
        assert view.contents() == view.recompute()
        # The derived row for (0, 99) must use the old S.b value.
        joined_bs = {row[3] for row in view.contents()}
        assert 12345 not in joined_bs
        # Now process S; the update flows through, including for (0, 99).
        apply_batch(view, "S", 1)
        assert view.contents() == view.recompute()
        joined_bs = {row[3] for row in view.contents()}
        assert 12345 in joined_bs

    def test_randomized_interleaving_invariant(self):
        rng = random.Random(99)
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        r, s = db.table("r"), db.table("s")
        for __ in range(120):
            op = rng.random()
            if op < 0.4:
                r.insert((rng.randint(0, 2), rng.randint(0, 100)))
            elif op < 0.55:
                rids = r.find_rids(lambda row: True)
                if rids:
                    r.delete_rid(rng.choice(rids))
            elif op < 0.75:
                rids = s.find_rids(lambda row: True)
                if rids:
                    s.update_rid(rng.choice(rids), {"b": rng.randint(0, 100)})
            else:
                alias = rng.choice(["R", "S"])
                delta = view.deltas[alias]
                delta.pull()
                if delta.size:
                    apply_batch(view, alias, rng.randint(1, delta.size))
                    assert view.contents() == view.recompute()
        for d in view.deltas.values():
            d.pull()
        full_refresh(view)
        assert view.contents() == view.recompute()
        assert not view.is_stale()


class TestAggregateView:
    def make_min_view(self):
        db = make_join_db()
        spec = join_spec(
            aggregate=AggregateSpec(func="min", value=col("R.a")),
        )
        return db, MaterializedView("v", db, spec)

    def test_initial_scalar(self):
        __, view = self.make_min_view()
        assert view.scalar() == 0

    def test_min_tracks_deletes(self):
        db, view = self.make_min_view()
        # Delete the row carrying the minimum a = 0 (rid 0).
        db.table("r").delete_rid(0)
        view.deltas["R"].pull()
        apply_batch(view, "R", 1)
        assert view.scalar() == 1
        assert view.contents() == view.recompute()

    def test_min_tracks_inserts(self):
        db, view = self.make_min_view()
        db.table("r").insert((2, -5))
        view.deltas["R"].pull()
        apply_batch(view, "R", 1)
        assert view.scalar() == -5

    def test_supplier_style_update_moves_whole_group(self):
        db, view = self.make_min_view()
        # Re-keying an s row drops/adds all matching r rows at once.
        db.table("s").update_rid(0, {"k": 99})
        view.deltas["S"].pull()
        apply_batch(view, "S", 1)
        assert view.contents() == view.recompute()
        assert view.scalar() == 1  # rows with k=0 (a=0,3) left the join

    def test_empty_view_scalar_none(self):
        db = make_join_db()
        spec = join_spec(
            filters=(col("S.b") == lit(-1),),
            aggregate=AggregateSpec(func="min", value=col("R.a")),
        )
        view = MaterializedView("v", db, spec)
        assert view.scalar() is None

    def test_grouped_aggregate_view(self):
        db = make_join_db()
        spec = join_spec(
            aggregate=AggregateSpec(
                func="sum", value=col("R.a"), group_by=("S.b",)
            ),
        )
        view = MaterializedView("v", db, spec)
        db.table("r").insert((1, 40))
        view.deltas["R"].pull()
        apply_batch(view, "R", 1)
        assert view.contents() == view.recompute()

    def test_scalar_guard_on_spj_view(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        with pytest.raises(Exception):
            view.scalar()


class TestApplyBatchErrors:
    def test_unknown_alias(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        with pytest.raises(ExecutionError, match="no base table"):
            apply_batch(view, "Z", 1)

    def test_too_large_batch(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        with pytest.raises(ExecutionError, match="only 0 pending"):
            apply_batch(view, "R", 1)

    def test_zero_batch_is_noop(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        before = view.contents()
        apply_batch(view, "R", 0)
        assert view.contents() == before


class TestRefreshHelpers:
    def test_full_refresh_clears_everything(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        db.table("r").insert((0, 1))
        db.table("s").update_rid(1, {"b": 5})
        for d in view.deltas.values():
            d.pull()
        full_refresh(view)
        assert not view.is_stale()
        assert view.contents() == view.recompute()

    def test_refresh_cost_breakdown(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        db.table("r").insert((0, 1))
        view.deltas["R"].pull()
        breakdown = refresh_cost_breakdown(view)
        assert breakdown["R"] > 0
        assert breakdown["S"] == 0.0
        assert not view.is_stale()

    def test_pending_sizes(self):
        db = make_join_db()
        view = MaterializedView("v", db, join_spec())
        db.table("r").insert((0, 1))
        view.deltas["R"].pull()
        assert view.pending_sizes() == {"R": 1, "S": 0}
