"""Differential: shared-scan rounds vs independent view-at-a-time rounds.

Two coordinators over identically seeded databases and update streams,
one running table-at-a-time shared scans (the default), one the legacy
independent rounds.  Across the (block_size x workers x policy) matrix:

* every view's contents are identical between the modes (and match a
  from-scratch recompute);
* the fleet's total simulated maintenance cost is **strictly lower** in
  shared mode once >= 2 views share a base table -- the scan de-dup plus
  fingerprint suppression is a real saving, not an accounting shuffle;
* with a single subscriber and no fingerprint in play the totals are
  **exactly equal** -- shared scanning moves the charge, never the amount.
"""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.engine.expr import col
from repro.engine.query import AggregateSpec, QuerySpec
from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig
from repro.tpcr.updates import PartSuppCostUpdater
from tests.conftest import make_tpcr_db

STEPS = 5
MODS_PER_STEP = 8
COST = (LinearCost(slope=0.5, setup=2.0),)


def min_cost_spec() -> QuerySpec:
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
    )


def qty_spec() -> QuerySpec:
    """Never reads ``supplycost``: suppressible under the update stream."""
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        aggregate=AggregateSpec(
            func="sum", value=col("PS.availqty"), group_by=("PS.suppkey",)
        ),
    )


def whole_row_spec() -> QuerySpec:
    """Whole-row SPJ: ``referenced_columns`` is None, never fingerprinted."""
    return QuerySpec(base_alias="PS", base_table="partsupp")


def make_policy(kind: str):
    # Views sharing a table get identical policy configs, so their flush
    # windows coincide -- the regime where scan sharing pays.
    if kind == "naive":
        return NaivePolicy(), 1.0  # any non-empty state is full
    return OnlinePolicy(), 30.0


def run_fleet(
    specs: dict,
    policy_kind: str,
    shared: bool,
    block_size: int,
    workers: int,
) -> tuple[dict, float]:
    """Maintain ``specs`` over a fresh seeded TPC-R db; returns
    (per-view contents, total simulated maintenance cost in ms)."""
    db = make_tpcr_db()
    db.block_size = block_size
    db.set_workers(workers)
    coordinator = MaintenanceCoordinator(db, shared_scans=shared)
    for name, spec in specs.items():
        policy, limit = make_policy(policy_kind)
        coordinator.add_view(
            ViewConfig(
                name=name,
                query=spec,
                policy=policy,
                cost_functions=COST,
                limit=limit,
                scheduled_aliases=("PS",),
            )
        )
    updater = PartSuppCostUpdater(db.table("partsupp"), seed=101)
    total = 0.0
    for t in range(STEPS):
        updater.apply(MODS_PER_STEP)
        with db.counter.window() as window:
            coordinator.step(t)
        total += window.elapsed_ms
    with db.counter.window() as window:
        coordinator.refresh(t=STEPS)
    total += window.elapsed_ms
    contents = {
        name: maintainer.view.contents()
        for name, maintainer in coordinator.iter_maintainers()
    }
    for name, maintainer in coordinator.iter_maintainers():
        assert maintainer.view.contents() == maintainer.view.recompute(), name
    return contents, total


MATRIX = [
    pytest.param(bs, w, p, id=f"bs{bs}-w{w}-{p}")
    for bs in (16, 256)
    for w in (0, 2)
    for p in ("naive", "online")
]


@pytest.mark.parametrize("block_size,workers,policy", MATRIX)
def test_shared_fleet_identical_and_strictly_cheaper(
    block_size, workers, policy
):
    specs = {
        "min_a": min_cost_spec(),
        "min_b": min_cost_spec(),
        "qty": qty_spec(),
    }
    independent, cost_ind = run_fleet(
        specs, policy, shared=False, block_size=block_size, workers=workers
    )
    shared, cost_shared = run_fleet(
        specs, policy, shared=True, block_size=block_size, workers=workers
    )
    assert shared == independent
    assert cost_shared < cost_ind


@pytest.mark.parametrize("block_size,workers", [(16, 0), (256, 2)])
def test_single_view_totals_exactly_equal(block_size, workers):
    specs = {"rows": whole_row_spec()}
    independent, cost_ind = run_fleet(
        specs, "naive", shared=False, block_size=block_size, workers=workers
    )
    shared, cost_shared = run_fleet(
        specs, "naive", shared=True, block_size=block_size, workers=workers
    )
    assert shared == independent
    assert cost_shared == pytest.approx(cost_ind, abs=1e-9)
