"""Tests for cost-function calibration against the live engine."""

import pytest

from repro.ivm.calibration import measure_cost_function


class TestMeasureCostFunction:
    def test_produces_monotone_samples(self, paper_view, updaters):
        ps_updater, __ = updaters
        result = measure_cost_function(
            paper_view, "PS", (5, 20, 60), ps_updater
        )
        ks = [k for k, __ in result.samples]
        costs = [c for __, c in result.samples]
        assert ks == [5, 20, 60]
        assert costs == sorted(costs)
        assert all(c > 0 for c in costs)

    def test_asymmetry_between_tables(self, paper_view, updaters):
        """Supplier batches must carry a much larger setup than PartSupp
        (the paper's central observation)."""
        ps_updater, sup_updater = updaters
        cal_ps = measure_cost_function(
            paper_view, "PS", (5, 20, 60), ps_updater
        )
        cal_s = measure_cost_function(
            paper_view, "S", (5, 20, 60), sup_updater
        )
        assert cal_s.linear_fit.setup > 10 * max(cal_ps.linear_fit.setup, 1.0)

    def test_linear_fit_quality(self, paper_view, updaters):
        ps_updater, __ = updaters
        result = measure_cost_function(
            paper_view, "PS", (10, 30, 60, 120), ps_updater
        )
        assert result.max_relative_fit_error() < 0.25

    def test_tabulated_replays_measurements(self, paper_view, updaters):
        ps_updater, __ = updaters
        result = measure_cost_function(
            paper_view, "PS", (10, 40), ps_updater
        )
        for k, measured in result.samples:
            assert result.tabulated(k) == pytest.approx(measured)

    def test_view_remains_consistent_after_calibration(
        self, paper_view, updaters
    ):
        ps_updater, sup_updater = updaters
        measure_cost_function(paper_view, "PS", (5, 10), ps_updater)
        measure_cost_function(paper_view, "S", (2, 4), sup_updater)
        assert paper_view.contents() == paper_view.recompute()
        assert not paper_view.is_stale()

    def test_repetitions_average(self, paper_view, updaters):
        ps_updater, __ = updaters
        result = measure_cost_function(
            paper_view, "PS", (5, 10), ps_updater, repetitions=2
        )
        assert len(result.samples) == 2

    def test_guards(self, paper_view, updaters):
        ps_updater, __ = updaters
        with pytest.raises(ValueError, match="no alias"):
            measure_cost_function(paper_view, "ZZ", (5, 10), ps_updater)
        with pytest.raises(ValueError, match="repetitions"):
            measure_cost_function(
                paper_view, "PS", (5, 10), ps_updater, repetitions=0
            )
        with pytest.raises(ValueError, match="two non-zero"):
            measure_cost_function(paper_view, "PS", (0, 5), ps_updater)

    def test_mismatched_mutator_detected(self, paper_view, updaters):
        __, sup_updater = updaters
        # Mutator touches Supplier while we calibrate PS.
        with pytest.raises(RuntimeError, match="expected"):
            measure_cost_function(
                paper_view, "PS", (3, 6), sup_updater
            )
