"""Tests for operator-level asymmetric batching (pipelines)."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.policies import PolicyError
from repro.staged import (
    CutPolicy,
    NaiveStagedPolicy,
    Pipeline,
    Stage,
    choose_best_cut,
    simulate_staged,
)


def three_stage_pipeline():
    """cheap-linear -> setup-heavy -> cheap-linear (the interesting shape)."""
    return Pipeline(
        [
            Stage("probe", LinearCost(slope=0.3), fanout=0.5),
            Stage("scan", LinearCost(slope=0.8, setup=100.0), fanout=2.0),
            Stage("fold", LinearCost(slope=0.05), fanout=0.0),
        ]
    )


class TestStage:
    def test_output_size_is_expected_cardinality(self):
        stage = Stage("s", LinearCost(1.0), fanout=0.2)
        assert stage.output_size(2) == pytest.approx(0.4)

    def test_negative_fanout_rejected(self):
        with pytest.raises(ValueError):
            Stage("s", LinearCost(1.0), fanout=-1.0)


class TestPipeline:
    def test_depth_and_zero_state(self):
        pipe = three_stage_pipeline()
        assert pipe.depth == 3
        assert pipe.zero_state() == (0.0, 0.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_flush_cost_cascades_with_fanout(self):
        pipe = three_stage_pipeline()
        # 10 at queue 0: stage0 cost .3*10=3, emits 5; stage1 cost
        # 100+.8*5=104, emits 10; stage2 cost .05*10=0.5.
        assert pipe.flush_cost((10, 0, 0)) == pytest.approx(107.5)

    def test_flush_cost_combines_queues(self):
        pipe = three_stage_pipeline()
        # 10 at queue 0 (emits 5 into stage 1's input) plus 7 already
        # queued at stage 1: one batch of 12 through the scan.
        expected = 0.3 * 10 + (100 + 0.8 * 12) + 0.05 * 24
        assert pipe.flush_cost((10, 7, 0)) == pytest.approx(expected)

    def test_flush_cost_empty_is_zero(self):
        assert three_stage_pipeline().flush_cost((0, 0, 0)) == 0.0

    def test_propagate_partial(self):
        pipe = three_stage_pipeline()
        state, cost = pipe.propagate((10, 0, 0), through=1)
        assert state == (0.0, 5.0, 0.0)
        assert cost == pytest.approx(3.0)

    def test_propagate_through_everything(self):
        pipe = three_stage_pipeline()
        state, cost = pipe.propagate((10, 0, 0), through=3)
        assert state == (0.0, 0.0, 0.0)
        assert cost == pytest.approx(107.5)

    def test_propagate_zero_is_noop(self):
        pipe = three_stage_pipeline()
        state, cost = pipe.propagate((4, 2, 1), through=0)
        assert state == (4.0, 2.0, 1.0)
        assert cost == 0.0

    def test_conservation_through_selective_stage(self):
        """Fluid model: small batches do not vanish through fan-out < 1."""
        pipe = Pipeline([Stage("sel", LinearCost(1.0), fanout=0.2),
                         Stage("sink", LinearCost(1.0), fanout=0.0)])
        state, __ = pipe.propagate((2, 0), through=1)
        assert state[1] == pytest.approx(0.4)

    def test_bad_states_rejected(self):
        pipe = three_stage_pipeline()
        with pytest.raises(ValueError):
            pipe.flush_cost((1, 2))
        with pytest.raises(ValueError):
            pipe.flush_cost((-1, 0, 0))
        with pytest.raises(ValueError):
            pipe.propagate((0, 0, 0), through=4)


class TestPolicies:
    def test_naive_flushes_only_when_full(self):
        pipe = three_stage_pipeline()
        trace = simulate_staged(pipe, 150.0, [2] * 100, NaiveStagedPolicy())
        assert trace.peak_flush_cost <= 150.0 + 1e-9
        # Several full flushes plus the final one.
        assert trace.propagation_count >= 2
        assert all(d in (0, 3) for d in trace.depths)

    def test_cut_policy_beats_naive_on_setup_heavy_middle(self):
        pipe = three_stage_pipeline()
        limit = 180.0
        arrivals = [2] * 200
        naive = simulate_staged(pipe, limit, arrivals, NaiveStagedPolicy())
        cut1 = simulate_staged(pipe, limit, arrivals, CutPolicy(1))
        assert cut1.total_cost < naive.total_cost

    def test_eager_through_setup_stage_loses(self):
        pipe = three_stage_pipeline()
        limit = 180.0
        arrivals = [2] * 200
        cut1 = simulate_staged(pipe, limit, arrivals, CutPolicy(1))
        cut2 = simulate_staged(pipe, limit, arrivals, CutPolicy(2))
        assert cut2.total_cost > 10 * cut1.total_cost

    def test_cut_zero_equals_naive(self):
        pipe = three_stage_pipeline()
        limit = 180.0
        arrivals = [2] * 150
        naive = simulate_staged(pipe, limit, arrivals, NaiveStagedPolicy())
        cut0 = simulate_staged(pipe, limit, arrivals, CutPolicy(0))
        assert cut0.total_cost == pytest.approx(naive.total_cost)

    def test_choose_best_cut(self):
        pipe = three_stage_pipeline()
        best_cut, best_cost = choose_best_cut(pipe, 180.0, [2] * 200)
        assert best_cut == 1
        cut1 = simulate_staged(pipe, 180.0, [2] * 200, CutPolicy(1))
        assert best_cost == pytest.approx(cut1.total_cost)

    def test_cut_deeper_than_pipeline_rejected(self):
        pipe = three_stage_pipeline()
        with pytest.raises(ValueError, match="deeper"):
            simulate_staged(pipe, 100.0, [1] * 5, CutPolicy(9))
        with pytest.raises(ValueError):
            CutPolicy(-1)


class TestSimulator:
    def test_forced_final_flush(self):
        pipe = three_stage_pipeline()
        trace = simulate_staged(pipe, 1e9, [1] * 10, NaiveStagedPolicy())
        assert trace.depths[-1] == pipe.depth
        assert trace.states[-1] == pipe.zero_state()
        # Only the final flush costs anything under a huge budget.
        assert trace.propagation_count == 1

    def test_violating_policy_caught(self):
        class StuckPolicy(NaiveStagedPolicy):
            def decide(self, t, state):
                return 0

        pipe = three_stage_pipeline()
        with pytest.raises(PolicyError, match="not\\s+refreshable"):
            simulate_staged(pipe, 105.0, [5] * 30, StuckPolicy())

    def test_bad_inputs(self):
        pipe = three_stage_pipeline()
        with pytest.raises(ValueError):
            simulate_staged(pipe, 100.0, [], NaiveStagedPolicy())
        with pytest.raises(ValueError):
            simulate_staged(pipe, -1.0, [1], NaiveStagedPolicy())
        with pytest.raises(ValueError):
            simulate_staged(pipe, 100.0, [-1], NaiveStagedPolicy())

    def test_trace_statistics(self):
        pipe = three_stage_pipeline()
        trace = simulate_staged(pipe, 150.0, [2] * 50, NaiveStagedPolicy())
        assert trace.horizon == 49
        assert len(trace.action_costs) == 50
        assert trace.total_cost == pytest.approx(sum(trace.action_costs))


class TestOperatorAsymmetryDriver:
    def test_driver_shape(self):
        from repro.experiments.operator_asymmetry import (
            run_operator_asymmetry,
        )

        result = run_operator_asymmetry(horizon=150)
        assert result.best_cut >= 1
        assert result.naive_cost > result.best_cost
        assert "Operator-level" in result.format()
