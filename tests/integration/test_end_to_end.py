"""End-to-end integration tests: the full stack on the paper's scenario.

These runs exercise engine -> TPC-R -> IVM -> core policies together and
assert both scheduling behaviour (constraint never violated, asymmetric
plans win) and data correctness (view contents always equal a from-scratch
recomputation).
"""

import random

import pytest

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import Policy, ReplayPolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy
from repro.ivm.calibration import measure_cost_function
from repro.ivm.maintainer import ViewMaintainer
from repro.ivm.view import MaterializedView
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater
from tests.conftest import make_paper_spec, make_tpcr_db


def calibrate(view, ps_updater, sup_updater):
    cal_ps = measure_cost_function(view, "PS", (4, 12, 30), ps_updater)
    cal_s = measure_cost_function(view, "S", (2, 6, 12), sup_updater)
    return cal_ps.tabulated, cal_s.tabulated


class TestFullPipeline:
    def test_calibrate_plan_execute(self):
        """The complete workflow: measure costs, plan with A*, replay the
        plan live, and verify both cost accounting and view contents."""
        # Calibrate on a scratch database.
        scratch = make_tpcr_db(seed=1)
        scratch_view = MaterializedView("v", scratch, make_paper_spec())
        f_ps, f_s = calibrate(
            scratch_view,
            PartSuppCostUpdater(scratch.table("partsupp"), seed=31),
            SupplierNationUpdater(scratch.table("supplier"), seed=32),
        )
        limit = f_s(10) * 1.2
        horizon = 30
        arrivals = [(8, 1)] * (horizon + 1)
        problem = ProblemInstance((f_ps, f_s), limit, arrivals)
        optimal = find_optimal_lgm_plan(problem)

        # Execute the plan on a fresh, identical live system.
        db = make_tpcr_db(seed=1)
        view = MaterializedView("v", db, make_paper_spec())
        maintainer = ViewMaintainer(
            view, (f_ps, f_s), limit=limit,
            policy=ReplayPolicy(optimal.plan.actions),
            scheduled_aliases=("PS", "S"),
        )
        ps_updater = PartSuppCostUpdater(db.table("partsupp"), seed=41)
        sup_updater = SupplierNationUpdater(db.table("supplier"), seed=42)
        for t in range(horizon + 1):
            ps_updater.apply(8)
            sup_updater.apply(1)
            if t == horizon:
                maintainer.refresh(t)
            else:
                maintainer.step(t)
        assert view.contents() == view.recompute()
        assert not view.is_stale()
        # Simulated and live cost agree to within a modest tolerance.
        assert maintainer.log.total_actual_cost_ms == pytest.approx(
            optimal.cost, rel=0.30
        )

    def test_online_policy_live_beats_naive_live(self):
        results = {}
        for name, policy in (("naive", NaivePolicy()), ("online", OnlinePolicy())):
            db = make_tpcr_db(seed=2)
            view = MaterializedView("v", db, make_paper_spec())
            costs = (
                LinearCost(slope=0.2, setup=1.0),
                LinearCost(slope=10.0, setup=120.0),
            )
            maintainer = ViewMaintainer(
                view, costs, limit=500.0, policy=policy,
                scheduled_aliases=("PS", "S"),
            )
            ps_updater = PartSuppCostUpdater(db.table("partsupp"), seed=51)
            sup_updater = SupplierNationUpdater(db.table("supplier"), seed=52)
            # 50 PartSupp : 1 Supplier per step keeps both tables' budget
            # drains comparable, where asymmetric scheduling pays off.
            for t in range(60):
                ps_updater.apply(50)
                sup_updater.apply(1)
                maintainer.step(t)
            maintainer.refresh(60)
            assert view.contents() == view.recompute()
            results[name] = maintainer.log.total_actual_cost_ms
        assert results["online"] < results["naive"]

    def test_random_policy_interleaving_preserves_consistency(self):
        """Fuzz: a random-but-valid policy must never corrupt the view."""

        class RandomValidPolicy(Policy):
            def __init__(self, seed):
                self.rng = random.Random(seed)

            def decide(self, t, pre_state):
                from repro.core.actions import (
                    enumerate_greedy_minimal_actions,
                )

                class View:
                    cost_functions = self.cost_functions
                    limit = self.limit
                    n = self.n

                    def refresh_cost(inner, state):
                        return sum(
                            f(k) for f, k in zip(self.cost_functions, state)
                        )

                    def is_full(inner, state):
                        return inner.refresh_cost(state) > self.limit + 1e-9

                view = View()
                if not view.is_full(pre_state):
                    # Occasionally act early (legal, just not lazy).
                    if self.rng.random() < 0.2 and any(pre_state):
                        return pre_state
                    return (0,) * self.n
                actions = list(
                    enumerate_greedy_minimal_actions(pre_state, view)
                )
                return self.rng.choice(actions)

        db = make_tpcr_db(seed=3)
        view = MaterializedView("v", db, make_paper_spec())
        costs = (
            LinearCost(slope=0.2, setup=1.0),
            LinearCost(slope=10.0, setup=120.0),
        )
        maintainer = ViewMaintainer(
            view, costs, limit=500.0, policy=RandomValidPolicy(13),
            verify=True,  # recompute-and-compare after every action
            scheduled_aliases=("PS", "S"),
        )
        ps_updater = PartSuppCostUpdater(db.table("partsupp"), seed=61)
        sup_updater = SupplierNationUpdater(db.table("supplier"), seed=62)
        rng = random.Random(14)
        for t in range(25):
            ps_updater.apply(rng.randint(0, 12))
            sup_updater.apply(rng.randint(0, 2))
            maintainer.step(t)
        maintainer.refresh(25)
        assert view.contents() == view.recompute()

    def test_min_recomputation_path_exercised_live(self):
        """Deleting the current MIN through supplier re-keying must flow
        through the recomputation fallback and stay correct."""
        db = make_tpcr_db(seed=4)
        view = MaterializedView("v", db, make_paper_spec())
        sup = db.table("supplier")
        sup_updater = SupplierNationUpdater(sup, seed=71)
        recomputes_before = sum(
            s.recomputations for s in view._groups.values()
        )
        # Re-key every supplier a few times: the MIN holder will move.
        for __ in range(4):
            sup_updater.apply(sup.live_count)
            view.deltas["S"].pull()
            from repro.ivm.maintenance import full_refresh

            full_refresh(view)
            assert view.contents() == view.recompute()
        recomputes_after = sum(
            s.recomputations for s in view._groups.values()
        ) if view._groups else 0
        assert recomputes_after >= recomputes_before
