"""Differential tests: blocked execution == row-at-a-time execution.

The chunked :class:`~repro.engine.block.RowBlock` pipeline promises two
invariants (see ``docs/DESIGN.md``, "Execution model"):

1. **Result equivalence** -- identical rows, in identical order, for any
   block size, including view contents maintained incrementally;
2. **Charge equivalence** -- the shared
   :class:`~repro.engine.costmodel.OperationCounter` ends every workload
   with *bit-identical* tallies, so all simulated costs (the paper's
   observable) are unchanged by the refactor.

These tests drive seeded random schemas, update streams, joins, and
aggregates through the row engine (``block_size=None``) and the blocked
engine at sizes {1, 7, 64, 1024}, and compare everything.

Also here: the shared-modification-log identity tests (a base table with
8 views holds exactly one copy of its history).
"""

from __future__ import annotations

import random

import pytest

from repro.engine.block import RowBlock, blocks_to_rows, iter_blocks
from repro.engine.costmodel import OperationCounter
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.join import NestedLoopJoin
from repro.engine.operators import Filter, Project, RowSource
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.engine.table import ModEvent, ModLog
from repro.engine.types import ColumnType, Schema
from repro.ivm.maintenance import apply_batch, full_refresh
from repro.ivm.view import MaterializedView

BLOCK_SIZES = (1, 7, 64, 1024)
ENGINE_MODES = (None,) + BLOCK_SIZES  # None = row-at-a-time reference
SEEDS = (3, 17, 101)
WORKER_COUNTS = (1, 2, 8)  # parallel pool sizes under differential test


# ----------------------------------------------------------------------
# Workload construction (deterministic per seed, independent of engine)
# ----------------------------------------------------------------------


def build_db(
    block_size: int | None,
    seed: int,
    workers: int | None = None,
    backend: str | None = None,
    index_dim: bool | None = None,
) -> Database:
    """A two-table random database, identical for every engine mode.

    ``workers=None`` defers to the environment (the CI leg that sets
    ``REPRO_WORKERS=4`` runs this whole file through the pool); the
    explicit worker-matrix tests below pin ``workers`` so their serial
    reference stays serial regardless of environment.  ``index_dim``
    forces the join access path: ``False`` guarantees hash joins (the
    parallel probe stage), ``True`` index-nested-loop, ``None`` the
    seed's coin flip.
    """
    rng = random.Random(seed)
    db = Database(block_size=block_size, workers=workers, parallel_backend=backend)
    fact = db.create_table(
        "fact",
        Schema.of(
            id=ColumnType.INT,
            k=ColumnType.INT,
            grp=ColumnType.INT,
            val=ColumnType.FLOAT,
        ),
    )
    dim = db.create_table(
        "dim",
        Schema.of(k=ColumnType.INT, cat=ColumnType.INT, w=ColumnType.FLOAT),
    )
    for i in range(rng.randint(40, 90)):
        fact.insert(
            (i, rng.randint(0, 9), rng.randint(0, 4), round(rng.uniform(0, 100), 3))
        )
    for k in range(10):
        dim.insert((k, rng.randint(0, 2), round(rng.uniform(0, 10), 3)))
    if rng.random() < 0.5:
        dim.create_index("k")
    return db


def query_specs(seed: int) -> list[QuerySpec]:
    """A spread of SPJ(A) queries over the random database."""
    rng = random.Random(seed * 7 + 1)
    join = (JoinSpec("D", "dim", "F.k", "k"),)
    cutoff = round(rng.uniform(20, 80), 3)
    return [
        # plain scan + filter + projection
        QuerySpec(
            base_alias="F",
            base_table="fact",
            filters=(col("F.val") > lit(cutoff),),
            projection=("F.id", "F.val"),
        ),
        # equi-join (hash or index-NL depending on the random index flag)
        QuerySpec(
            base_alias="F",
            base_table="fact",
            joins=join,
            filters=(col("D.cat") != lit(1),),
            projection=("F.id", "D.w"),
        ),
        # grouped aggregates over the join
        QuerySpec(
            base_alias="F",
            base_table="fact",
            joins=join,
            aggregate=AggregateSpec(
                func=rng.choice(["min", "max", "sum", "avg", "count"]),
                value=col("F.val"),
                group_by=("F.grp",),
            ),
        ),
        # scalar aggregate with a selective (possibly empty) filter
        QuerySpec(
            base_alias="F",
            base_table="fact",
            joins=join,
            filters=(col("F.val") > lit(99.999), col("D.cat") == lit(0)),
            aggregate=AggregateSpec(func="min", value=col("F.val")),
        ),
        # distinct projection
        QuerySpec(
            base_alias="F",
            base_table="fact",
            projection=("F.grp", "F.k"),
            distinct=True,
        ),
    ]


def run_queries(block_size: int | None, seed: int, workers: int | None = None):
    """Build, run every spec, and return (all result rows, final charges)."""
    with build_db(block_size, seed, workers) as db:
        results = [db.execute(spec).rows for spec in query_specs(seed)]
        return results, db.counter.snapshot()


def _mutate(rng: random.Random, db: Database, steps: int) -> None:
    """A burst of random inserts/updates/deletes, identical per seed
    because both engines expose identical table state to ``find_rids``."""
    fact = db.table("fact")
    for __ in range(steps):
        action = rng.random()
        live = fact.find_rids(lambda row: True)
        if action < 0.45 or not live:
            fact.insert(
                (
                    rng.randint(1000, 9999),
                    rng.randint(0, 9),
                    rng.randint(0, 4),
                    round(rng.uniform(0, 100), 3),
                )
            )
        elif action < 0.8:
            fact.update_rid(
                rng.choice(live), {"val": round(rng.uniform(0, 100), 3)}
            )
        else:
            fact.delete_rid(rng.choice(live))


def run_ivm(block_size: int | None, seed: int):
    """Maintain a MIN view under a random update stream with random batch
    sizes; return (contents trace, final contents, recompute, charges)."""
    db = build_db(block_size, seed)
    spec = QuerySpec(
        base_alias="F",
        base_table="fact",
        joins=(JoinSpec("D", "dim", "F.k", "k"),),
        filters=(col("D.cat") != lit(2),),
        aggregate=AggregateSpec(func="min", value=col("F.val"), group_by=("F.grp",)),
    )
    view = MaterializedView("v", db, spec)
    rng = random.Random(seed * 13 + 5)
    trace = []
    for __ in range(12):
        _mutate(rng, db, rng.randint(0, 4))
        delta = view.deltas["F"]
        delta.pull()
        k = rng.randint(0, delta.size)
        if k:
            apply_batch(view, "F", k)
        trace.append(sorted(view.contents().items(), key=repr))
    for d in view.deltas.values():
        d.pull()
    full_refresh(view)
    return trace, view.contents(), view.recompute(), db.counter.snapshot()


# ----------------------------------------------------------------------
# Differential tests
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_queries_identical_across_block_sizes(seed):
    reference_rows, reference_charges = run_queries(None, seed)
    for block_size in BLOCK_SIZES:
        rows, charges = run_queries(block_size, seed)
        assert rows == reference_rows, f"rows diverge at block_size={block_size}"
        assert charges == reference_charges, (
            f"simulated charges diverge at block_size={block_size}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_view_maintenance_identical_across_block_sizes(seed):
    ref_trace, ref_contents, ref_recompute, ref_charges = run_ivm(None, seed)
    assert ref_contents == ref_recompute  # the reference engine is sound
    for block_size in BLOCK_SIZES:
        trace, contents, recompute, charges = run_ivm(block_size, seed)
        assert trace == ref_trace
        assert contents == ref_contents
        assert recompute == ref_recompute
        assert charges == ref_charges, (
            f"simulated charges diverge at block_size={block_size}"
        )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_parallel_queries_identical_to_serial(block_size, workers):
    """The full (block_size x workers) matrix: the worker pool must be
    invisible -- byte-identical result rows (in order) and byte-identical
    simulated charges versus the serial blocked engine."""
    for seed in SEEDS:
        ref_rows, ref_charges = run_queries(block_size, seed, workers=0)
        rows, charges = run_queries(block_size, seed, workers=workers)
        assert rows == ref_rows, (
            f"rows diverge at block_size={block_size} workers={workers}"
        )
        assert charges == ref_charges, (
            f"simulated charges diverge at block_size={block_size} "
            f"workers={workers}"
        )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_view_maintenance_identical_to_serial(workers):
    seed, block_size = SEEDS[0], 64
    reference = run_ivm_with_workers(block_size, seed, workers=0)
    assert run_ivm_with_workers(block_size, seed, workers=workers) == reference


def run_ivm_with_workers(block_size, seed, workers):
    db = build_db(block_size, seed, workers)
    try:
        spec = QuerySpec(
            base_alias="F",
            base_table="fact",
            filters=(col("F.grp") != lit(2),),
            aggregate=AggregateSpec(
                func="min", value=col("F.val"), group_by=("F.grp",)
            ),
        )
        view = MaterializedView("v", db, spec)
        rng = random.Random(seed * 29 + 11)
        trace = []
        for __ in range(8):
            _mutate(rng, db, rng.randint(0, 4))
            delta = view.deltas["F"]
            delta.pull()
            k = rng.randint(0, delta.size)
            if k:
                apply_batch(view, "F", k)
            trace.append(sorted(view.contents().items(), key=repr))
        full_refresh(view)
        return trace, view.contents(), db.counter.snapshot()
    finally:
        db.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_mid_query_exception_propagates(workers):
    """A worker raising mid-query must surface to the caller (not hang
    the merge), and the database must remain usable afterwards."""
    with build_db(64, seed=SEEDS[0], workers=workers) as db:
        bad = QuerySpec(
            base_alias="F",
            base_table="fact",
            filters=((col("F.val") / lit(0.0)) > lit(1.0),),
        )
        with pytest.raises(ZeroDivisionError):
            db.execute(bad)
        ok = QuerySpec(base_alias="F", base_table="fact")
        assert len(db.execute(ok)) > 0


# ----------------------------------------------------------------------
# Forced hash-join plans: the parallel probe + partial-aggregation path
# ----------------------------------------------------------------------

AGG_FUNCS = ("min", "max", "sum", "avg", "count")


def hash_join_specs(seed: int) -> list[QuerySpec]:
    """Join-bearing specs that always plan a HashJoin probe stage (the
    driving database is built with ``index_dim=False``): one SPJ
    projection plus every aggregate function, grouped and scalar."""
    rng = random.Random(seed * 31 + 7)
    join = (JoinSpec("D", "dim", "F.k", "k"),)
    cutoff = round(rng.uniform(20, 80), 3)
    specs = [
        QuerySpec(
            base_alias="F",
            base_table="fact",
            joins=join,
            filters=(col("F.val") > lit(cutoff), col("D.cat") != lit(2)),
            projection=("F.id", "D.w", "F.val"),
        ),
    ]
    for func in AGG_FUNCS:
        specs.append(
            QuerySpec(
                base_alias="F",
                base_table="fact",
                joins=join,
                filters=(col("F.grp") < lit(4),),
                aggregate=AggregateSpec(
                    func=func, value=col("F.val"), group_by=("D.cat",)
                ),
            )
        )
    specs.append(
        QuerySpec(
            base_alias="F",
            base_table="fact",
            joins=join,
            aggregate=AggregateSpec(func="sum", value=col("D.w")),
        )
    )
    return specs


def run_hash_join_queries(
    block_size: int | None,
    seed: int,
    workers: int | None = None,
    backend: str | None = None,
):
    with build_db(
        block_size, seed, workers, backend=backend, index_dim=False
    ) as db:
        results = [db.execute(spec).rows for spec in hash_join_specs(seed)]
        return results, db.counter.snapshot()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_parallel_hash_join_agg_identical_to_serial(block_size, workers):
    """The (block_size x workers) matrix over forced hash-join plans:
    build-once/probe-parallel joins and partitioned partial aggregation
    must produce byte-identical rows and byte-identical cost tables."""
    for seed in SEEDS:
        ref_rows, ref_charges = run_hash_join_queries(block_size, seed, workers=0)
        rows, charges = run_hash_join_queries(
            block_size, seed, workers=workers
        )
        assert rows == ref_rows, (
            f"rows diverge at block_size={block_size} workers={workers}"
        )
        assert charges == ref_charges, (
            f"simulated charges diverge at block_size={block_size} "
            f"workers={workers}"
        )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_process_backend_hash_join_agg_identical_to_serial(workers):
    """Same plans through the process pool (spooled hash-table snapshot):
    cost tables stay byte-identical at every worker count."""
    seed, block_size = SEEDS[0], 64
    ref_rows, ref_charges = run_hash_join_queries(block_size, seed, workers=0)
    rows, charges = run_hash_join_queries(
        block_size, seed, workers=workers, backend="process"
    )
    assert rows == ref_rows
    assert charges == ref_charges


def run_ivm_join_with_workers(block_size, seed, workers, backend=None):
    """Maintain a join-bearing MIN view (hash join forced) so the delta
    substituted probe path runs through the worker pool."""
    db = build_db(block_size, seed, workers, backend=backend, index_dim=False)
    try:
        spec = QuerySpec(
            base_alias="F",
            base_table="fact",
            joins=(JoinSpec("D", "dim", "F.k", "k"),),
            filters=(col("D.cat") != lit(2),),
            aggregate=AggregateSpec(
                func="min", value=col("F.val"), group_by=("F.grp",)
            ),
        )
        view = MaterializedView("v", db, spec)
        rng = random.Random(seed * 37 + 3)
        trace = []
        for __ in range(8):
            _mutate(rng, db, rng.randint(0, 4))
            delta = view.deltas["F"]
            delta.pull()
            k = rng.randint(0, delta.size)
            if k:
                apply_batch(view, "F", k)
            trace.append(sorted(view.contents().items(), key=repr))
        full_refresh(view)
        return trace, view.contents(), view.recompute(), db.counter.snapshot()
    finally:
        db.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_view_maintenance_with_join_identical_to_serial(workers):
    """IVM maintenance trace through the hash-join delta path: identical
    contents at every batch boundary and identical final charges."""
    seed, block_size = SEEDS[1], 32
    reference = run_ivm_join_with_workers(block_size, seed, workers=0)
    assert reference[1] == reference[2]  # maintained == recompute
    assert run_ivm_join_with_workers(block_size, seed, workers) == reference


def test_process_backend_view_maintenance_with_join_identical():
    seed, block_size = SEEDS[1], 32
    reference = run_ivm_join_with_workers(block_size, seed, workers=0)
    result = run_ivm_join_with_workers(
        block_size, seed, workers=2, backend="process"
    )
    assert result == reference


@pytest.mark.parametrize(
    "workers,backend",
    [(w, "thread") for w in WORKER_COUNTS] + [(2, "process")],
)
def test_parallel_mid_probe_exception_propagates(workers, backend):
    """A poisoned predicate *above* the hash-join probe (it references a
    build-side column, so it runs post-join inside worker tasks) must
    surface to the caller, and the pool must stay usable afterwards."""
    with build_db(
        64, seed=SEEDS[0], workers=workers, backend=backend, index_dim=False
    ) as db:
        bad = QuerySpec(
            base_alias="F",
            base_table="fact",
            joins=(JoinSpec("D", "dim", "F.k", "k"),),
            filters=((col("D.w") / lit(0.0)) > lit(1.0),),
        )
        with pytest.raises(ZeroDivisionError):
            db.execute(bad)
        ok = QuerySpec(
            base_alias="F",
            base_table="fact",
            joins=(JoinSpec("D", "dim", "F.k", "k"),),
            aggregate=AggregateSpec(func="count", value=col("F.id")),
        )
        assert db.execute(ok).rows[0][0] > 0


def test_operator_level_equivalence():
    """Exercise operators the planner does not emit (NestedLoopJoin) and
    the block fast paths (all-pass filter) directly."""
    rows_left = [(i, i % 3, float(i)) for i in range(25)]
    rows_right = [(j, j * 10) for j in range(3)]

    def build(counter):
        left = RowSource(rows_left, ("a", "b", "c"), "L", counter)
        right = RowSource(rows_right, ("b", "d"), "R", counter)
        join = NestedLoopJoin(left, right, col("L.b") == col("R.b"))
        filt = Filter(join, col("L.a") >= lit(0))  # all-pass: zero-copy path
        return Project(filt, ("L.a", "R.d"))

    ref_counter = OperationCounter()
    reference = build(ref_counter).rows()
    for block_size in BLOCK_SIZES:
        counter = OperationCounter()
        out = blocks_to_rows(build(counter).blocks(block_size))
        assert out == reference
        assert counter.snapshot() == ref_counter.snapshot()


def test_fallback_blocks_covers_custom_operators():
    """Operators without a specialized blocks() still stream correctly
    through the base-class chunker (with row-granular charging)."""
    from repro.engine.operators import Operator

    counter = OperationCounter()
    source = RowSource([(1,), (2,), (3,)], ("x",), "T", counter)
    chunks = list(Operator.blocks(source, 2))
    assert [len(c) for c in chunks] == [2, 1]
    assert blocks_to_rows(chunks) == [(1,), (2,), (3,)]
    assert counter.tuple_cpu == 3


# ----------------------------------------------------------------------
# Shared modification log: one history, N windows
# ----------------------------------------------------------------------


def _simple_view_spec() -> QuerySpec:
    return QuerySpec(
        base_alias="F",
        base_table="fact",
        joins=(JoinSpec("D", "dim", "F.k", "k"),),
        aggregate=AggregateSpec(func="count", value=col("F.id")),
    )


def test_eight_views_share_one_history_copy():
    db = build_db(64, seed=5)
    fact = db.table("fact")
    baseline_events = len(fact.history)
    views = [
        MaterializedView(f"v{i}", db, _simple_view_spec()) for i in range(8)
    ]
    rng = random.Random(99)
    _mutate(rng, db, 60)
    for view in views:
        view.deltas["F"].pull()

    # Identity: every delta table windows the *same* log object; no view
    # holds a private event container of any kind.
    for view in views:
        delta = view.deltas["F"]
        assert delta.log is fact.history
        assert not hasattr(delta, "_pending")
    # Exactly one copy: the table logged one event per modification, and
    # the peeked event objects are identical (is) across all views.
    assert len(fact.history) == baseline_events + 60
    first = views[0].deltas["F"].peek(10)
    for view in views[1:]:
        other = view.deltas["F"].peek(10)
        assert all(a is b for a, b in zip(first, other, strict=True))
    # Window arithmetic: sizes agree with the log without any scan.
    for view in views:
        delta = view.deltas["F"]
        assert delta.size == delta.seen_lsn - delta.applied_lsn == 60


def test_modlog_chunked_window_and_invariants():
    log = ModLog(chunk_size=4)
    events = [
        ModEvent(lsn=i + 1, kind="insert", old_values=None, new_values=(i,))
        for i in range(11)
    ]
    for e in events:
        log.append(e)
    assert len(log) == 11
    assert list(log) == events
    # Windows spanning chunk boundaries, empty windows, and full windows.
    assert log.window(0, 11) == events
    assert log.window(3, 9) == events[3:9]
    assert log.window(7, 7) == []
    assert log[4] is events[4]
    # LSN-density is enforced: a gap or duplicate LSN is rejected.
    from repro.engine.errors import ExecutionError

    with pytest.raises(ExecutionError):
        log.append(
            ModEvent(lsn=20, kind="insert", old_values=None, new_values=(0,))
        )
    with pytest.raises(ExecutionError):
        log.window(5, 99)


def test_rowblock_views_and_iter_blocks():
    layout = {"T.a": 0, "T.b": 1}
    rows = [(1, "x"), (2, "y"), (3, "z")]
    block = RowBlock.from_rows(rows, layout)
    assert len(block) == 3
    assert block.column(1) == ["x", "y", "z"]
    assert block.rows() is block.rows()  # cached
    taken = block.take([2, 0])
    assert taken.rows() == [(3, "z"), (1, "x")]
    columnar = RowBlock.from_columns([[1, 2], ["x", "y"]], layout)
    assert columnar.rows() == [(1, "x"), (2, "y")]
    assert [len(b) for b in iter_blocks(rows, layout, 2)] == [2, 1]
    with pytest.raises(ValueError):
        list(iter_blocks(rows, layout, 0))
