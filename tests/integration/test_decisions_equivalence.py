"""Differential: decision tracing + calibration are strictly observational.

The tracing layer (:mod:`repro.obs.decisions`) and the calibration layer
(:mod:`repro.obs.calibration`) promise never to touch the operation
counter.  These tests enforce that the way the attribution and block
refactors are enforced: run the same workload twice on identically
seeded databases -- once with *everything* on (recorder, decision log,
calibration tracker, drift alerts with a hair-trigger threshold) and
once with everything off -- and require byte-identical view contents
and byte-identical :class:`OperationCounter` cost tables across a
(block_size x workers) grid.

The traced leg must also be *non-vacuous*: it has to actually produce
view-tagged joined decisions and calibration samples, otherwise the
equality proves nothing.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.receding import RecedingHorizonPolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy
from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig
from repro.obs import calibration, decisions
from repro.tpcr.updates import PartSuppCostUpdater
from tests.conftest import make_tpcr_db
from tests.ivm.test_sharedscan_differential import min_cost_spec, qty_spec

STEPS = 4
MODS_PER_STEP = 8
COST = (LinearCost(slope=0.5, setup=2.0),)

#: The acceptance grid: small/default blocks, serial/parallel.
CONFIGS = (
    # (block_size, workers)
    (256, 0),
    (16, 0),
    (256, 2),
    (16, 2),
)


def run_fleet(block_size: int, workers: int, traced: bool):
    """Maintain a two-view fleet; returns (contents, cost table, evidence).

    ``evidence`` is ``None`` untraced; otherwise the (decision log,
    calibration tracker, drift events) the traced leg accumulated.
    """
    db = make_tpcr_db()
    db.block_size = block_size
    db.set_workers(workers)

    def drive():
        coordinator = MaintenanceCoordinator(db)
        # min_cost reads the updated column, so its flushes are never
        # fingerprint-suppressed and always do (and charge) real work;
        # NaivePolicy with limit=1 flushes it every round.  qty defers
        # until the forced refresh under its generous ONLINE limit.
        for name, spec, policy, limit in (
            ("min_cost", min_cost_spec(), NaivePolicy(), 1.0),
            ("qty", qty_spec(), OnlinePolicy(), 30.0),
        ):
            coordinator.add_view(
                ViewConfig(
                    name=name,
                    query=spec,
                    policy=policy,
                    cost_functions=COST,
                    limit=limit,
                    scheduled_aliases=("PS",),
                )
            )
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=7)
        for t in range(STEPS):
            updater.apply(MODS_PER_STEP)
            coordinator.step(t)
        coordinator.refresh(t=STEPS)
        return {
            name: maintainer.view.contents()
            for name, maintainer in coordinator.iter_maintainers()
        }

    if not traced:
        return drive(), db.counter.snapshot(), None

    drift_events = []
    # Hair-trigger drift config: every flush window fires, exercising
    # the alert path inside the maintained run.
    calibration.configure_drift(threshold=0.0, window=1)
    try:
        with obs.recording():
            with decisions.collecting() as log:
                with calibration.tracking() as tracker:
                    with calibration.drift_alerts(drift_events.append):
                        contents = drive()
    finally:
        calibration.configure_drift()  # restore default monitor
    return contents, db.counter.snapshot(), (log, tracker, drift_events)


class TestMaintainedFleetEquivalence:
    @pytest.mark.parametrize("block_size,workers", CONFIGS)
    def test_cost_tables_identical_with_tracing_on_and_off(
        self, block_size, workers
    ):
        ref_contents, ref_charges, _ = run_fleet(
            block_size, workers, traced=False
        )
        contents, charges, evidence = run_fleet(
            block_size, workers, traced=True
        )
        assert contents == ref_contents, (
            f"view contents diverge under tracing at "
            f"block_size={block_size} workers={workers}"
        )
        assert charges == ref_charges, (
            f"cost table diverges under tracing at "
            f"block_size={block_size} workers={workers}"
        )
        # Non-vacuity: the traced run really traced.
        log, tracker, drift_events = evidence
        joined = [e for e in log.events() if e.actual_ms is not None]
        assert joined, "no decision was ever joined with its execution"
        assert {e.view for e in joined} == {"min_cost", "qty"}
        assert all(e.source == "ivm" for e in log.events())
        flushed = [e for e in joined if e.is_flush]
        assert flushed
        assert any(e.charges for e in flushed), (
            "maintainer joins must carry the round's charge delta"
        )
        assert any(e.actual_table_ms for e in flushed)
        assert len(tracker) >= len(
            [e for e in flushed if e.actual_ms]
        ), "every per-table flush should yield a calibration sample"
        assert drift_events, "threshold=0 drift never fired"

    def test_calibration_samples_match_ledger_predictions(self):
        """Each sample's prediction is the planner's own f_i(k) for the
        flushed batch -- recomputable from the cost family."""
        _, _, (log, tracker, _) = run_fleet(256, 0, traced=True)
        (f,) = COST
        for sample in tracker.samples():
            assert sample.k > 0
            assert sample.predicted_ms == pytest.approx(f(sample.k))


class TestSimulatorEquivalence:
    @pytest.mark.parametrize(
        "policy_factory",
        [NaivePolicy, OnlinePolicy, lambda: RecedingHorizonPolicy(window=4)],
        ids=["naive", "online", "receding"],
    )
    def test_plans_identical_with_tracing_on_and_off(self, policy_factory):
        problem = ProblemInstance(
            cost_functions=(
                LinearCost(slope=1.0, setup=0.5),
                LinearCost(slope=0.5, setup=1.0),
            ),
            limit=4.0,
            arrivals=[(1, 1)] * 10,
        )
        reference = simulate_policy(problem, policy_factory())
        with obs.recording():
            with decisions.collecting() as log:
                traced = simulate_policy(problem, policy_factory())
        assert traced.plan.actions == reference.plan.actions
        assert traced.action_costs == reference.action_costs
        assert traced.total_cost == reference.total_cost
        assert log.events(), "tracing produced no events"
