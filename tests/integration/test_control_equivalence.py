"""Differential: a fully-disabled controller vs no controller at all.

The adaptive runtime's contract is **disabled == invisible**: a
controller whose governors are all off never subscribes to an alert
hub, never reads the metric registry, and never touches a knob.  This
suite proves it differentially -- two identically seeded maintenance
runs, one with a disabled controller attached and ticked every step,
one with no controller object at all, must produce byte-identical view
contents and byte-identical simulated-cost (OperationCounter) tables
across the (block_size x workers) matrix.  CI's
"Gate on controller differential equivalence" step runs exactly this
file.
"""

import pytest

from repro import obs
from repro.control import build_controller
from repro.control import events as control_events
from repro.core.costfuncs import LinearCost
from repro.core.online import OnlinePolicy
from repro.engine.expr import col
from repro.engine.query import AggregateSpec, QuerySpec
from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig
from repro.tpcr.updates import PartSuppCostUpdater
from tests.conftest import make_tpcr_db

STEPS = 6
MODS_PER_STEP = 8
COST = (LinearCost(slope=0.5, setup=2.0),)
LIMIT = 30.0


def _specs() -> dict:
    return {
        "min_cost": QuerySpec(
            base_alias="PS",
            base_table="partsupp",
            aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
        ),
        "qty_by_supp": QuerySpec(
            base_alias="PS",
            base_table="partsupp",
            aggregate=AggregateSpec(
                func="sum",
                value=col("PS.availqty"),
                group_by=("PS.suppkey",),
            ),
        ),
    }


def run_fleet(with_controller: bool, block_size: int, workers: int):
    """One seeded maintenance run; returns (per-view contents, charges).

    ``with_controller=True`` attaches a controller whose governors are
    all disabled and ticks it after every round -- the leg that must be
    indistinguishable from ``with_controller=False``.
    """
    db = make_tpcr_db()
    db.block_size = block_size
    db.set_workers(workers)
    coordinator = MaintenanceCoordinator(db)
    for name, spec in _specs().items():
        coordinator.add_view(
            ViewConfig(
                name=name,
                query=spec,
                policy=OnlinePolicy(),
                cost_functions=COST,
                limit=LIMIT,
                scheduled_aliases=("PS",),
            )
        )
    updater = PartSuppCostUpdater(db.table("partsupp"), seed=101)
    controller = (
        build_controller(coordinator, policy=False, workers=False, block=False)
        if with_controller
        else None
    )
    if controller is not None:
        controller.attach()
    try:
        # A live recorder plus a control-event sink make the check
        # strict: even with telemetry flowing, the disabled leg must
        # read nothing, emit nothing, and actuate nothing.
        with obs.recording(), control_events.collecting() as log:
            for t in range(STEPS):
                updater.apply(MODS_PER_STEP)
                coordinator.step(t)
                if controller is not None:
                    controller.tick(t)
            coordinator.refresh(t=STEPS)
    finally:
        if controller is not None:
            controller.detach()
    assert not log.events()
    contents = {
        name: maintainer.view.contents()
        for name, maintainer in coordinator.iter_maintainers()
    }
    return contents, dict(db.counter.snapshot())


MATRIX = [
    pytest.param(bs, w, id=f"bs{bs}-w{w}")
    for bs in (7, 64)
    for w in (0, 2)
]


@pytest.mark.parametrize("block_size,workers", MATRIX)
def test_disabled_controller_is_invisible(block_size, workers):
    bare_contents, bare_charges = run_fleet(
        with_controller=False, block_size=block_size, workers=workers
    )
    ctl_contents, ctl_charges = run_fleet(
        with_controller=True, block_size=block_size, workers=workers
    )
    assert ctl_contents == bare_contents
    assert ctl_charges == bare_charges
    # Sanity: the run did real maintenance work, so equality above is
    # comparing populated tables, not two empty dicts.
    assert bare_contents["min_cost"]
    assert any(bare_charges.values())
