"""Differential tests: profiled execution == unprofiled execution.

Attribution (:mod:`repro.obs.attrib`) is observational by contract --
nodes copy charges the operators already made, never charging anything
themselves.  These tests enforce the contract the way the block/parallel
refactors are enforced: run the same workload twice on identical fresh
databases, once with ``profile=True`` (or a global sink installed) and
once without, and require byte-identical result rows **and**
byte-identical :class:`OperationCounter` cost tables across a
(block_size x workers x backend) grid, including the TPC-R paper query.

Also here: the profile's summed tally must equal the counter's delta for
the query -- attribution is *complete*, not just harmless.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.obs import attrib
from repro.tpcr.gen import load_tpcr
from tests.conftest import TEST_SCALE, make_paper_spec, make_tpcr_db
from tests.integration.test_block_equivalence import (
    SEEDS,
    build_db,
    hash_join_specs,
    query_specs,
)

#: The acceptance grid: small/default blocks, serial/parallel, both pools.
CONFIGS = (
    # (block_size, workers, backend)
    (64, 0, "thread"),
    (7, 0, "thread"),
    (64, 2, "thread"),
    (7, 2, "thread"),
    (64, 2, "process"),
)


def run_specs(specs, block_size, workers, backend, seed, profile):
    """Fresh DB, run every spec, return (rows, charges, profiles)."""
    profiles = []
    with build_db(
        block_size, seed, workers, backend=backend, index_dim=False
    ) as db:
        rows = []
        for spec in specs(seed):
            before = db.counter.snapshot()
            result = db.execute(spec, profile=profile)
            after = db.counter.snapshot()
            rows.append(result.rows)
            if profile:
                delta = {
                    f: after[f] - before[f]
                    for f in after
                    if after[f] != before[f]
                }
                profiles.append((result.profile, delta))
        return rows, db.counter.snapshot(), profiles


class TestAnalyzeEquivalence:
    @pytest.mark.parametrize("block_size,workers,backend", CONFIGS)
    def test_cost_tables_identical_with_and_without_profiling(
        self, block_size, workers, backend
    ):
        for seed in SEEDS[:2]:
            for specs in (query_specs, hash_join_specs):
                ref_rows, ref_charges, __ = run_specs(
                    specs, block_size, workers, backend, seed, profile=False
                )
                rows, charges, profiles = run_specs(
                    specs, block_size, workers, backend, seed, profile=True
                )
                assert rows == ref_rows, (
                    f"rows diverge under profiling at block_size="
                    f"{block_size} workers={workers} backend={backend}"
                )
                assert charges == ref_charges, (
                    f"simulated charges diverge under profiling at "
                    f"block_size={block_size} workers={workers} "
                    f"backend={backend}"
                )
                # Completeness: every charge the query made is attributed
                # to some plan node -- the profile total IS the delta.
                for profile, delta in profiles:
                    assert profile is not None
                    assert profile.total_tally() == delta

    @pytest.mark.parametrize("block_size,workers,backend", CONFIGS)
    def test_sink_mode_is_charge_neutral(self, block_size, workers, backend):
        seed = SEEDS[0]
        ref_rows, ref_charges, __ = run_specs(
            query_specs, block_size, workers, backend, seed, profile=False
        )
        captured: list[dict] = []
        previous = attrib.set_profile_sink(captured.append)
        try:
            rows, charges, __ = run_specs(
                query_specs, block_size, workers, backend, seed, profile=None
            )
        finally:
            attrib.set_profile_sink(previous)
        assert rows == ref_rows
        assert charges == ref_charges
        assert len(captured) == len(query_specs(seed))


def make_tpcr_parallel_db(workers: int) -> Database:
    """The paper's physical design at an explicit worker count."""
    db = Database(workers=workers)
    load_tpcr(db, scale=TEST_SCALE, seed=42)
    db.table("supplier").create_index("suppkey")
    db.table("nation").create_index("nationkey")
    db.table("region").create_index("regionkey")
    return db


class TestPaperQueryProfile:
    """The acceptance scenario: a per-operator profile of the TPC-R
    join-aggregate query under workers in {0, 2}, with byte-identical
    cost tables between the profiled and unprofiled runs."""

    @pytest.mark.parametrize("workers", (0, 2))
    def test_paper_query_profiled_matches_unprofiled(self, workers):
        spec = make_paper_spec()

        def run(profile):
            with make_tpcr_parallel_db(workers) as db:
                result = db.execute(spec, profile=profile)
                return result, db.counter.snapshot()

        plain, plain_charges = run(False)
        profiled, profiled_charges = run(True)
        assert profiled.rows == plain.rows
        assert profiled_charges == plain_charges
        profile = profiled.profile
        assert profile is not None
        # The tree names the paper's physical plan: index-NL joins up the
        # dimension chain under a scalar MIN.
        text = attrib.render_profile(profile)
        assert "SeqScan(partsupp AS PS)" in text
        assert "IndexNestedLoopJoin" in text
        assert "Aggregate(MIN" in text
        assert profile.query == "partsupp ⋈ supplier ⋈ nation ⋈ region → MIN"

    def test_explain_analyze_does_not_disturb_later_queries(self):
        db = make_tpcr_db()
        reference = make_tpcr_db()
        spec = make_paper_spec()
        db.explain(spec, analyze=True)

        def delta(database):
            before = database.counter.snapshot()
            database.execute(spec)
            after = database.counter.snapshot()
            return {f: after[f] - before[f] for f in after}

        assert delta(db) == delta(reference)
