"""Validation tests for subscription construction."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.pubsub import EveryNSteps, Subscription
from tests.conftest import make_paper_spec


def make(**overrides):
    defaults = dict(
        name="s",
        query=make_paper_spec(),
        condition=EveryNSteps(5),
        policy=NaivePolicy(),
        cost_functions=(
            LinearCost(1.0), LinearCost(1.0),
            LinearCost(1.0), LinearCost(1.0),
        ),
        limit=100.0,
    )
    defaults.update(overrides)
    return Subscription(**defaults)


class TestValidation:
    def test_valid_defaults(self):
        sub = make()
        assert sub.name == "s"
        assert sub.metadata == {}

    def test_name_required(self):
        with pytest.raises(ValueError, match="name"):
            make(name="")

    def test_positive_limit_required(self):
        with pytest.raises(ValueError, match="guarantee"):
            make(limit=0.0)

    def test_cost_function_count_vs_all_aliases(self):
        with pytest.raises(ValueError, match="one cost function"):
            make(cost_functions=(LinearCost(1.0),))

    def test_cost_function_count_vs_scheduled_aliases(self):
        sub = make(
            scheduled_aliases=("PS", "S"),
            cost_functions=(LinearCost(1.0), LinearCost(1.0)),
        )
        assert sub.scheduled_aliases == ("PS", "S")
        with pytest.raises(ValueError, match="one cost function"):
            make(
                scheduled_aliases=("PS",),
                cost_functions=(LinearCost(1.0), LinearCost(1.0)),
            )

    def test_metadata_carried(self):
        sub = make(metadata={"owner": "analyst-7"})
        assert sub.metadata["owner"] == "analyst-7"
