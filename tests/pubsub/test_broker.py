"""Integration tests for the pub/sub broker over the TPC-R scenario."""

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.pubsub import (
    EveryNSteps,
    PubSubBroker,
    Subscription,
    ValueWatch,
)
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater
from tests.conftest import make_paper_spec, make_tpcr_db

COSTS = (LinearCost(slope=0.2, setup=1.0), LinearCost(slope=10.0, setup=120.0))
LIMIT = 600.0


def make_subscription(name, condition, policy=None):
    return Subscription(
        name=name,
        query=make_paper_spec(),
        condition=condition,
        policy=policy or OnlinePolicy(),
        cost_functions=COSTS,
        limit=LIMIT,
        scheduled_aliases=("PS", "S"),
    )


def make_broker():
    db = make_tpcr_db()
    broker = PubSubBroker(db)
    ps = PartSuppCostUpdater(db.table("partsupp"), seed=81)
    sup = SupplierNationUpdater(db.table("supplier"), seed=82)
    return broker, ps, sup


class TestRegistration:
    def test_subscribe_materializes_immediately(self):
        broker, __, __ = make_broker()
        broker.subscribe(make_subscription("s1", EveryNSteps(5)))
        assert broker.subscriptions == ("s1",)
        assert broker.result("s1") is not None  # MIN over non-empty join

    def test_duplicate_name_rejected(self):
        broker, __, __ = make_broker()
        broker.subscribe(make_subscription("s1", EveryNSteps(5)))
        with pytest.raises(ValueError, match="already registered"):
            broker.subscribe(make_subscription("s1", EveryNSteps(5)))

    def test_unsubscribe(self):
        broker, __, __ = make_broker()
        broker.subscribe(make_subscription("s1", EveryNSteps(5)))
        broker.unsubscribe("s1")
        assert broker.subscriptions == ()
        with pytest.raises(KeyError):
            broker.unsubscribe("s1")
        with pytest.raises(KeyError):
            broker.result("s1")


class TestNotifications:
    def test_periodic_notifications_fire(self):
        broker, ps, sup = make_broker()
        broker.subscribe(
            make_subscription("hourly", EveryNSteps(4, phase=3))
        )
        fired_at = []
        for t in range(12):
            ps.apply(5)
            sup.apply(1)
            fired = broker.tick(t)
            fired_at.extend(n.t for n in fired)
        assert fired_at == [3, 7, 11]

    def test_notification_carries_fresh_result(self):
        broker, ps, sup = make_broker()
        broker.subscribe(make_subscription("s", EveryNSteps(3, phase=2)))
        for t in range(3):
            ps.apply(5)
            sup.apply(1)
            fired = broker.tick(t)
        assert len(fired) == 1
        notification = fired[0]
        # After the refresh the view must match a from-scratch recompute.
        registration = broker._registration("s")
        assert not registration.view.is_stale()
        assert notification.new_result == registration.view.scalar()

    def test_guarantee_respected(self):
        broker, ps, sup = make_broker()
        broker.subscribe(make_subscription("s", EveryNSteps(6, phase=5)))
        for t in range(18):
            ps.apply(10)
            sup.apply(1)
            broker.tick(t)
        assert broker.guarantee_violations("s") == 0
        for n in broker.notifications("s"):
            assert n.within_guarantee

    def test_value_watch_subscription(self):
        broker, ps, sup = make_broker()
        db = broker.database

        def min_acctbal(database):
            return min(
                row[5] for row in database.table("supplier").live_rows()
            )

        broker.subscribe(
            make_subscription(
                "watch", ValueWatch(min_acctbal, absolute=1.0)
            )
        )
        # Quiet steps: no notification.
        assert broker.tick(0) == []
        assert broker.tick(1) == []
        # Drop a supplier's balance far below the baseline.
        sup_table = db.table("supplier")
        rid = sup_table.find_rids(lambda r: True)[0]
        sup_table.update_rid(rid, {"acctbal": -99999.0})
        # nationkey unchanged => this is an unscheduled-column update on a
        # scheduled table; it still flows through the S delta queue.
        fired = broker.tick(2)
        assert [n.subscription for n in fired] == ["watch"]

    def test_changed_flag(self):
        broker, ps, sup = make_broker()
        broker.subscribe(make_subscription("s", EveryNSteps(1)))
        # No modifications: consecutive notifications carry equal results.
        broker.tick(0)
        fired = broker.tick(1)
        assert fired and not fired[0].changed


class TestMultipleSubscriptions:
    def test_independent_policies_and_costs(self):
        broker, ps, sup = make_broker()
        broker.subscribe(
            make_subscription("naive", EveryNSteps(8, phase=7), NaivePolicy())
        )
        broker.subscribe(
            make_subscription("online", EveryNSteps(8, phase=7), OnlinePolicy())
        )
        for t in range(24):
            ps.apply(25)
            sup.apply(1)
            broker.tick(t)
        assert len(broker.notifications("naive")) == 3
        assert len(broker.notifications("online")) == 3
        # Results agree (same data), costs may differ (different policies).
        for a, b in zip(
            broker.notifications("naive"), broker.notifications("online")
        ):
            assert a.new_result == b.new_result
        assert broker.maintenance_cost_ms("naive") > 0
        assert broker.maintenance_cost_ms("online") > 0

    def test_on_demand_pull(self):
        broker, ps, sup = make_broker()
        broker.subscribe(make_subscription("s", EveryNSteps(1000, phase=999)))
        ps.apply(5)
        sup.apply(1)
        broker.tick(0)
        stale = broker.result("s")
        fresh = broker.result("s", refresh=True)
        registration = broker._registration("s")
        assert not registration.view.is_stale()
        assert fresh == registration.view.scalar()
        assert stale is not None
