"""Unit tests for notification conditions."""

import pytest

from repro.engine.database import Database
from repro.engine.types import ColumnType, Schema
from repro.pubsub.conditions import (
    AllOf,
    AnyOf,
    EveryNSteps,
    OnEveryChange,
    ValueWatch,
)


@pytest.fixture
def db():
    database = Database()
    prices = database.create_table(
        "prices", Schema.of(symbol=ColumnType.STR, price=ColumnType.FLOAT)
    )
    prices.insert(("OIL", 100.0))
    return database


def oil_price(database):
    for symbol, price in database.table("prices").live_rows():
        if symbol == "OIL":
            return price
    raise LookupError("no OIL row")


class TestEveryNSteps:
    def test_fires_on_period(self, db):
        cond = EveryNSteps(3)
        fires = [cond.should_notify(t, db) for t in range(7)]
        assert fires == [True, False, False, True, False, False, True]

    def test_phase(self, db):
        cond = EveryNSteps(3, phase=1)
        fires = [cond.should_notify(t, db) for t in range(5)]
        assert fires == [False, True, False, False, True]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            EveryNSteps(0)


class TestValueWatch:
    def test_first_observation_baselines_without_firing(self, db):
        cond = ValueWatch(oil_price, relative=0.10)
        assert not cond.should_notify(0, db)

    def test_relative_threshold(self, db):
        cond = ValueWatch(oil_price, relative=0.10)
        cond.should_notify(0, db)  # baseline at 100
        prices = db.table("prices")
        prices.update_rid(prices.find_rids(lambda r: True)[0], {"price": 109.0})
        assert not cond.should_notify(1, db)  # 9% drift: under threshold
        rid = prices.find_rids(lambda r: True)[0]
        prices.update_rid(rid, {"price": 111.0})
        assert cond.should_notify(2, db)  # 11% drift

    def test_absolute_threshold(self, db):
        cond = ValueWatch(oil_price, absolute=5.0)
        cond.should_notify(0, db)
        prices = db.table("prices")
        prices.update_rid(prices.find_rids(lambda r: True)[0], {"price": 104.0})
        assert not cond.should_notify(1, db)
        rid = prices.find_rids(lambda r: True)[0]
        prices.update_rid(rid, {"price": 106.0})
        assert cond.should_notify(2, db)

    def test_rebaselines_after_notification(self, db):
        cond = ValueWatch(oil_price, relative=0.10)
        cond.should_notify(0, db)
        prices = db.table("prices")
        prices.update_rid(prices.find_rids(lambda r: True)[0], {"price": 120.0})
        assert cond.should_notify(1, db)
        cond.notified(1, 120.0)
        # New baseline is 120; a move to 125 is only ~4%.
        assert not cond.should_notify(2, db)  # re-baselines at 120
        rid = prices.find_rids(lambda r: True)[0]
        prices.update_rid(rid, {"price": 125.0})
        assert not cond.should_notify(3, db)

    def test_requires_some_threshold(self, db):
        with pytest.raises(ValueError):
            ValueWatch(oil_price)
        with pytest.raises(ValueError):
            ValueWatch(oil_price, relative=0.0)
        with pytest.raises(ValueError):
            ValueWatch(oil_price, absolute=-1.0)


class TestOnEveryChange:
    def test_fires_after_modification(self, db):
        cond = OnEveryChange(["prices"])
        assert not cond.should_notify(0, db)  # first call baselines
        prices = db.table("prices")
        prices.update_rid(prices.find_rids(lambda r: True)[0], {"price": 1.0})
        assert cond.should_notify(1, db)
        assert not cond.should_notify(2, db)  # quiet step

    def test_requires_tables(self):
        with pytest.raises(ValueError):
            OnEveryChange([])


class TestCombinators:
    def test_all_of(self, db):
        cond = AllOf(EveryNSteps(2), EveryNSteps(3))
        fires = [cond.should_notify(t, db) for t in range(7)]
        assert fires == [True, False, False, False, False, False, True]

    def test_any_of(self, db):
        cond = AnyOf(EveryNSteps(2), EveryNSteps(3))
        fires = [cond.should_notify(t, db) for t in range(5)]
        assert fires == [True, False, True, True, True]

    def test_notified_propagates(self, db):
        watch = ValueWatch(oil_price, relative=0.10)
        cond = AnyOf(watch, EveryNSteps(100, phase=99))
        cond.should_notify(0, db)
        prices = db.table("prices")
        prices.update_rid(prices.find_rids(lambda r: True)[0], {"price": 150.0})
        assert cond.should_notify(1, db)
        cond.notified(1, 150.0)
        assert not cond.should_notify(2, db)  # watch re-baselined via AnyOf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AllOf()
        with pytest.raises(ValueError):
            AnyOf()
