"""Smoke tests for the extension experiments (small parameters)."""

import pytest

from repro.experiments.online_bound_study import run_online_bound_study
from repro.experiments.operator_asymmetry import run_operator_asymmetry
from repro.experiments.three_way import run_three_way
from tests.conftest import TEST_SCALE


class TestOnlineBoundStudy:
    def test_ratios_within_envelope(self):
        result = run_online_bound_study(samples_per_family=2, seed=5)
        assert 1.0 <= result.worst_ratio < 2.0
        for family, online_mean, online_max, naive_mean, naive_max in (
            result.rows()
        ):
            assert online_mean <= online_max
            assert naive_mean <= naive_max
            assert online_max < 2.0  # inside the LGM factor-2 envelope
        assert "ONLINE cost bound" in result.format()


class TestOperatorAsymmetry:
    def test_cut_beats_naive(self):
        result = run_operator_asymmetry(horizon=120)
        assert result.naive_cost > result.best_cost
        assert result.best_cut >= 1
        assert "Operator-level" in result.format()


class TestThreeWay:
    def test_hierarchy_and_advantage(self):
        result = run_three_way(scale=TEST_SCALE, horizon=120)
        assert result.naive_cost > result.opt_cost
        ps, s, n = result.opt_action_counts
        assert ps >= s >= n >= 1
        # The calibrated setups are ordered: PS tiny, S and N large.
        assert result.fits["PS"][1] < result.fits["S"][1]
        assert result.fits["PS"][1] < result.fits["N"][1]
        assert "Three-way" in result.format()


class TestConcavityStudy:
    def test_gap_ordering(self):
        from repro.experiments.concavity_study import run_concavity_study

        result = run_concavity_study(random_trials=5, climb_steps=4, seed=9)
        assert result.worst("linear") == pytest.approx(1.0)
        assert result.worst("concave") < result.worst("step")
        assert result.worst("step") >= 1.5
        assert "Concavity" in result.format()
