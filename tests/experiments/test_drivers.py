"""Smoke tests for every experiment driver, at reduced scale.

Each driver must run end to end and reproduce the paper's *qualitative*
findings; the full-size runs live in ``benchmarks/``.
"""

import pytest

from repro.experiments import common
from repro.experiments.ablations import (
    run_astar_heuristic_ablation,
    run_cost_family_study,
    run_estimator_ablation,
    run_plan_class_ablation,
)
from repro.experiments.bounds_study import run_bounds_study, tightness_instance
from repro.experiments.fig1_join_costs import run_fig1
from repro.experiments.fig4_maintenance_costs import run_fig4
from repro.experiments.fig5_validation import run_fig5
from repro.experiments.fig6_refresh_time import run_fig6
from repro.experiments.fig7_nonuniform import run_fig7
from repro.experiments.intro_example import run_intro_example
from tests.conftest import TEST_SCALE

SMALL_BATCHES = (5, 15, 40)


class TestFig1:
    def test_asymmetric_shapes(self):
        result = run_fig1(scale=TEST_SCALE, batches=SMALL_BATCHES)
        # c_dR: setup-dominated; c_dS: near-linear through origin.
        assert result.setup_ratio() > 5.0
        assert result.c_delta_r.linear_fit.setup > 10.0
        rows = result.rows()
        assert len(rows) == len(SMALL_BATCHES)
        # The expensive side costs more at every batch size.
        for __, cost_r, cost_s in rows:
            assert cost_r > cost_s
        assert "Figure 1" in result.format()


class TestIntroExample:
    def test_asymmetric_beats_symmetric(self):
        result = run_intro_example(scale=TEST_SCALE, horizon=120)
        assert result.analytic_factor > 1.3
        assert result.simulated_factor > 1.3
        # Simulation and analytics must roughly agree.
        assert result.simulated_naive == pytest.approx(
            result.analytic_symmetric, rel=0.25
        )
        assert "Intro example" in result.format()


class TestFig4:
    def test_partsupp_cheaper_than_supplier(self):
        result = run_fig4(scale=TEST_SCALE, batches=SMALL_BATCHES)
        for __, cost_ps, cost_s in result.rows():
            assert cost_s > cost_ps
        # Both curves follow linear trends (the paper's observation).
        assert result.partsupp.max_relative_fit_error() < 0.5
        assert result.supplier.max_relative_fit_error() < 0.5
        assert "Figure 4" in result.format()


class TestFig5:
    def test_simulation_validates(self):
        result = run_fig5(scale=TEST_SCALE, horizon=40)
        assert result.max_relative_error() < 0.25
        assert {r[0] for r in result.rows()} == {"NAIVE", "OPT_LGM", "ONLINE"}
        assert "Figure 5" in result.format()


class TestFig6:
    def test_ranking_matches_paper(self):
        result = run_fig6(scale=TEST_SCALE, refresh_times=(60, 120))
        for naive, opt, adapt, online in zip(
            result.naive, result.opt_lgm, result.adapt, result.online
        ):
            assert naive > 1.1 * opt  # NAIVE clearly outperformed
            assert adapt <= naive
            assert online <= naive
            assert opt <= adapt + 1e-6
            assert opt <= online + 1e-6
        # ADAPT and ONLINE track OPT closely.
        assert result.worst_ratio_vs_opt("adapt") < 1.15
        assert result.worst_ratio_vs_opt("online") < 1.15
        assert "Figure 6" in result.format()

    def test_cost_grows_with_refresh_time(self):
        result = run_fig6(scale=TEST_SCALE, refresh_times=(60, 120))
        assert result.opt_lgm[1] > result.opt_lgm[0]


class TestFig7:
    def test_naive_loses_on_all_streams(self):
        result = run_fig7(scale=TEST_SCALE, horizon=120, seed=7)
        for naive, opt in zip(result.naive, result.opt_lgm):
            assert naive > opt
        for online, opt in zip(result.online, result.opt_lgm):
            assert online < 1.3 * opt
        assert result.classes == ("SS", "SU", "FS", "FU")
        assert "Figure 7" in result.format()


class TestBoundsStudy:
    def test_theorems_hold(self):
        result = run_bounds_study(linear_trials=3, subadditive_trials=2)
        assert result.max_ratio("linear") == pytest.approx(1.0)
        assert result.max_ratio("step (tightness)") > 1.4
        for row in result.rows_data:
            assert row.ratio <= 2.0 + 1e-9
            assert row.ratio >= 1.0 - 1e-9
        assert "Bounds study" in result.format()

    def test_tightness_instance_shape(self):
        prob = tightness_instance(eps=0.5, periods=2)
        assert prob.horizon == 3
        assert prob.arrivals[0] == (5,)


class TestAblations:
    def test_astar_heuristic(self):
        result = run_astar_heuristic_ablation(
            horizons=(40, 80), scale=TEST_SCALE
        )
        assert result.costs_equal
        for astar, dijkstra in zip(
            result.astar_expanded, result.dijkstra_expanded
        ):
            assert astar <= dijkstra
        assert "ablation" in result.format()

    def test_plan_classes_ordered(self):
        result = run_plan_class_ablation(horizon=80, scale=TEST_SCALE)
        assert result.eager > result.naive > result.opt_lgm
        assert "Plan-class" in result.format()

    def test_estimators(self):
        result = run_estimator_ablation(horizon=100, scale=TEST_SCALE)
        assert result.estimator_names == ("ewma", "window", "oracle")
        for row in result.ratios:
            for ratio in row:
                assert 0.9 < ratio < 2.0
        assert "TimeToFull" in result.format()

    def test_cost_families(self):
        result = run_cost_family_study(horizon=100)
        rows = {name: ratio for name, __, __, ratio in result.rows()}
        # Bigger setup => bigger asymmetric gain.
        assert rows["linear b=120"] > rows["linear b=40"]
        for ratio in rows.values():
            assert ratio >= 1.0 - 1e-9
        assert "cost families" in result.format()
