"""Tests for the shared experiment infrastructure and reporting helpers."""

import pytest

from repro.core.costfuncs import LinearCost, TabulatedCost
from repro.experiments import common
from repro.experiments.reporting import format_kv_block, format_table
from tests.conftest import TEST_SCALE


class TestBuildSetup:
    def test_physical_design(self):
        setup = common.build_setup(scale=TEST_SCALE)
        db = setup.database
        assert db.table("supplier").index_on("suppkey") is not None
        assert db.table("partsupp").index_on("suppkey") is None  # the knob
        assert setup.view.scalar() is not None

    def test_updater_for(self):
        setup = common.build_setup(scale=TEST_SCALE)
        assert setup.updater_for("PS") is setup.ps_updater
        assert setup.updater_for("S") is setup.supplier_updater
        with pytest.raises(KeyError):
            setup.updater_for("N")

    def test_apply_arrivals(self):
        setup = common.build_setup(scale=TEST_SCALE)
        ps_lsn = setup.database.table("partsupp").current_lsn
        s_lsn = setup.database.table("supplier").current_lsn
        setup.apply_arrivals((3, 2))
        assert setup.database.table("partsupp").current_lsn == ps_lsn + 3
        assert setup.database.table("supplier").current_lsn == s_lsn + 2


class TestCalibratedCosts:
    def test_cached_and_asymmetric(self):
        a = common.calibrated_costs(TEST_SCALE)
        b = common.calibrated_costs(TEST_SCALE)
        assert a is b  # lru-cached
        cal_ps, cal_s = a
        assert cal_s.linear_fit.setup > 10 * max(cal_ps.linear_fit.setup, 1)

    def test_cost_function_forms(self):
        tab = common.cost_functions(TEST_SCALE, form="tabulated")
        lin = common.cost_functions(TEST_SCALE, form="linear")
        assert all(isinstance(f, TabulatedCost) for f in tab)
        assert all(isinstance(f, LinearCost) for f in lin)
        with pytest.raises(ValueError, match="form"):
            common.cost_functions(TEST_SCALE, form="quadratic")

    def test_small_batches_anchored(self):
        """The k=1 calibration anchor: f(1) must carry the real setup, not
        an interpolated fraction of it (planners exploit such fictions)."""
        __, f_s = common.cost_functions(TEST_SCALE)
        assert f_s(1) > 0.5 * f_s(4)

    def test_default_limit_headroom(self):
        costs = common.cost_functions(TEST_SCALE)
        limit = common.default_limit(costs)
        __, f_s = costs
        assert f_s(30) < limit < f_s(60)

    def test_make_problem_shapes(self):
        problem = common.make_problem(
            [(2, 1)] * 5, 100.0, common.cost_functions(TEST_SCALE)
        )
        assert problem.n == 2
        assert problem.horizon == 4


class TestReportingHelpers:
    def test_format_table_alignment(self):
        text = format_table(
            "Title", ["a", "long-header"], [(1, 2.5), (300, 4.0)]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "long-header" in lines[2]
        assert "2.50" in text  # float precision applied
        assert "300" in text

    def test_format_table_bool_rendering(self):
        text = format_table("T", ["x"], [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_format_kv_block(self):
        text = format_kv_block("Params", [("alpha", 1), ("beta-long", "x")])
        assert "alpha" in text and "beta-long : x" in text
