"""Tests for the metric-catalog lint (``tools/check_metric_catalog.py``).

The real repository must pass the lint (that is the tier-1 guarantee CI
relies on); the unit tests drive the collector and matcher over small
synthetic trees to pin the failure modes -- undocumented emissions,
stale catalog rows, f-string holes, and placeholder matching.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "check_metric_catalog.py"

spec = importlib.util.spec_from_file_location("check_metric_catalog", TOOL)
catalog = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_metric_catalog", catalog)
spec.loader.exec_module(catalog)


def write_src(tmp_path: Path, code: str) -> Path:
    src = tmp_path / "src"
    src.mkdir(exist_ok=True)
    (src / "mod.py").write_text(code)
    return src


def write_docs(tmp_path: Path, rows: list[str]) -> Path:
    docs = tmp_path / "observability.md"
    lines = ["# Catalog", "", "| metric | meaning |", "|---|---|"]
    lines += [f"| `{name}` | something |" for name in rows]
    docs.write_text("\n".join(lines) + "\n")
    return docs


class TestRealRepository:
    def test_catalog_is_clean(self):
        """The committed source and docs agree -- the CI gate."""
        assert catalog.check() == []

    def test_main_exit_code_zero(self, capsys):
        assert catalog.main([]) == 0
        assert "metric catalog OK" in capsys.readouterr().out


class TestEmittedCollection:
    def test_plain_and_multiline_strings(self, tmp_path):
        src = write_src(
            tmp_path,
            'A = "engine.queries"\n'
            "def f(rec):\n"
            "    rec.counter(\n"
            '        "ivm.flushes"\n'
            "    )\n"
            'NOT_A_METRIC = "hello world"\n'
            'OTHER = "some.unknown.family"\n',
        )
        names = catalog.emitted_names(src)
        assert set(names) == {"engine.queries", "ivm.flushes"}
        assert names["engine.queries"] == ["src/mod.py"] or names[
            "engine.queries"
        ][0].endswith("mod.py")

    def test_fstring_holes_become_globs(self, tmp_path):
        src = write_src(
            tmp_path,
            "def f(rec, vid):\n"
            '    rec.counter(f"ivm.view.{vid}.rounds")\n',
        )
        assert set(catalog.emitted_names(src)) == {"ivm.view.*.rounds"}

    def test_dict_key_tallies_are_seen(self, tmp_path):
        src = write_src(
            tmp_path,
            'TALLY = {"engine.scan.pages": 1, "engine.scan.rows": 2}\n',
        )
        assert set(catalog.emitted_names(src)) == {
            "engine.scan.pages",
            "engine.scan.rows",
        }


class TestDocumentedCollection:
    def test_first_cell_only_with_placeholders(self, tmp_path):
        docs = tmp_path / "d.md"
        docs.write_text(
            "| `slo.breaches` | counts `slo.margin` crossings |\n"
            "| `ivm.view.<view>.rounds` | per view |\n"
            "| plain text | no backticks |\n"
        )
        names = catalog.documented_names(docs)
        assert set(names) == {"slo.breaches", "ivm.view.*.rounds"}

    def test_slash_separated_cells(self, tmp_path):
        docs = tmp_path / "d.md"
        docs.write_text("| `engine.io.rows_read` / `engine.io.rows_written` | io |\n")
        assert set(catalog.documented_names(docs)) == {
            "engine.io.rows_read",
            "engine.io.rows_written",
        }


class TestCheck:
    def test_clean(self, tmp_path):
        src = write_src(tmp_path, 'N = "engine.queries"\n')
        docs = write_docs(tmp_path, ["engine.queries"])
        assert catalog.check(src, docs) == []

    def test_undocumented_emission_fails(self, tmp_path):
        src = write_src(tmp_path, 'N = "engine.queries"\nM = "slo.breaches"\n')
        docs = write_docs(tmp_path, ["engine.queries"])
        problems = catalog.check(src, docs)
        assert len(problems) == 1
        assert "undocumented metric 'slo.breaches'" in problems[0]

    def test_stale_doc_row_fails(self, tmp_path):
        src = write_src(tmp_path, 'N = "engine.queries"\n')
        docs = write_docs(tmp_path, ["engine.queries", "engine.gone"])
        problems = catalog.check(src, docs)
        assert len(problems) == 1
        assert "stale catalog entry 'engine.gone'" in problems[0]

    def test_placeholder_covers_fstring_hole(self, tmp_path):
        src = write_src(
            tmp_path,
            'def f(rec, vid):\n    rec.counter(f"ivm.view.{vid}.rounds")\n',
        )
        docs = write_docs(tmp_path, ["ivm.view.<view>.rounds"])
        assert catalog.check(src, docs) == []

    def test_concrete_emission_matches_placeholder_row(self, tmp_path):
        src = write_src(tmp_path, 'N = "engine.parallel.fallback.spool_failed"\n')
        docs = write_docs(tmp_path, ["engine.parallel.fallback.<reason>"])
        assert catalog.check(src, docs) == []

    def test_main_reports_problems_and_exits_nonzero(self, tmp_path, capsys):
        src = write_src(tmp_path, 'N = "engine.rogue"\n')
        docs = write_docs(tmp_path, [])
        code = catalog.main(["--src", str(src), "--docs", str(docs)])
        err = capsys.readouterr().err
        assert code == 1
        assert "undocumented metric" in err
        assert "1 metric-catalog problem(s)" in err
