"""Unit tests for scans, filters, projections, and the join operators."""

import pytest

from repro.engine.costmodel import OperationCounter
from repro.engine.errors import SchemaError
from repro.engine.expr import col, lit
from repro.engine.join import HashJoin, IndexNestedLoopJoin, NestedLoopJoin
from repro.engine.operators import (
    Filter,
    Project,
    RowSource,
    SeqScan,
    merged_layout,
)


@pytest.fixture
def emp(toy_db):
    return toy_db.table("emp")


@pytest.fixture
def dept(toy_db):
    return toy_db.table("dept")


class TestSeqScan:
    def test_yields_all_rows_with_alias_layout(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        rows = scan.rows()
        assert len(rows) == 5
        assert scan.layout["E.empno"] == 0
        assert scan.layout["E.salary"] == 3

    def test_charges_pages_and_cpu(self, toy_db, emp):
        before = toy_db.counter.snapshot()
        SeqScan(emp.snapshot(), "E", toy_db.counter).rows()
        after = toy_db.counter.snapshot()
        assert after["page_reads"] == before["page_reads"] + 1
        assert after["tuple_cpu"] == before["tuple_cpu"] + 5


class TestRowSource:
    def test_serves_in_memory_rows(self):
        counter = OperationCounter()
        src = RowSource([(1, "a"), (2, "b")], ("k", "v"), "D", counter)
        assert src.rows() == [(1, "a"), (2, "b")]
        assert src.layout == {"D.k": 0, "D.v": 1}
        assert len(src) == 2
        assert counter.page_reads == 0  # deltas live in memory

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            RowSource([], ("k", "k"), "D", OperationCounter())


class TestFilterAndProject:
    def test_filter(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        high = Filter(scan, col("E.salary") >= lit(200.0))
        names = sorted(row[1] for row in high)
        assert names == ["bob", "carol", "erin"]

    def test_project_reorders(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        proj = Project(scan, ["E.salary", "E.name"])
        rows = proj.rows()
        assert rows[0] == (100.0, "alice")
        assert proj.layout == {"E.salary": 0, "E.name": 1}

    def test_project_unknown_column(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        with pytest.raises(SchemaError):
            Project(scan, ["E.nope"])

    def test_project_duplicate_rejected(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        with pytest.raises(SchemaError, match="duplicate"):
            Project(scan, ["E.name", "E.name"])


class TestMergedLayout:
    def test_concatenates(self):
        left = {"A.x": 0, "A.y": 1}
        right = {"B.z": 0}
        assert merged_layout(left, right) == {"A.x": 0, "A.y": 1, "B.z": 2}

    def test_overlap_rejected(self):
        with pytest.raises(SchemaError, match="share"):
            merged_layout({"A.x": 0}, {"A.x": 0})


class TestNestedLoopJoin:
    def test_cross_product_with_predicate(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        join = NestedLoopJoin(left, right, col("E.deptno") == col("D.deptno"))
        rows = join.rows()
        assert len(rows) == 5
        layout = join.layout
        for row in rows:
            assert row[layout["E.deptno"]] == row[layout["D.deptno"]]

    def test_no_predicate_is_cross_product(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        assert len(NestedLoopJoin(left, right, None).rows()) == 15


class TestIndexNestedLoopJoin:
    def test_join_via_index(self, toy_db, emp, dept):
        dept.create_index("deptno")
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        join = IndexNestedLoopJoin(
            left, dept.snapshot(), "D", "E.deptno", "deptno"
        )
        rows = join.rows()
        assert len(rows) == 5
        names = {
            (row[join.layout["E.name"]], row[join.layout["D.dname"]])
            for row in rows
        }
        assert ("alice", "eng") in names
        assert ("erin", "ops") in names

    def test_requires_index(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        with pytest.raises(SchemaError, match="needs an index"):
            IndexNestedLoopJoin(
                left, dept.snapshot(), "D", "E.deptno", "deptno"
            )

    def test_charges_one_probe_per_outer_tuple(self, toy_db, emp, dept):
        dept.create_index("deptno")
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        before = toy_db.counter.index_probes
        IndexNestedLoopJoin(
            left, dept.snapshot(), "D", "E.deptno", "deptno"
        ).rows()
        assert toy_db.counter.index_probes == before + 5


class TestHashJoin:
    def test_equi_join(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        join = HashJoin(left, right, "E.deptno", "D.deptno")
        assert len(join.rows()) == 5

    def test_build_cost_paid_at_construction(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        before = toy_db.counter.hash_builds
        HashJoin(left, right, "E.deptno", "D.deptno")  # not iterated
        assert toy_db.counter.hash_builds == before + 3

    def test_dangling_keys_produce_nothing(self, toy_db, emp, dept):
        emp.insert((9, "zed", 99, 1.0))  # department 99 doesn't exist
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        join = HashJoin(left, right, "E.deptno", "D.deptno")
        assert len(join.rows()) == 5  # zed joins nothing

    def test_agrees_with_nested_loop(self, toy_db, emp, dept):
        left1 = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right1 = SeqScan(dept.snapshot(), "D", toy_db.counter)
        hash_rows = sorted(
            HashJoin(left1, right1, "E.deptno", "D.deptno").rows()
        )
        left2 = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right2 = SeqScan(dept.snapshot(), "D", toy_db.counter)
        nl_rows = sorted(
            NestedLoopJoin(
                left2, right2, col("E.deptno") == col("D.deptno")
            ).rows()
        )
        assert hash_rows == nl_rows


class TestProbeBlockColumnarFastPath:
    """probe_block(): column-major inputs gather without a transpose."""

    LAYOUT = {"L.k": 0, "L.v": 1}
    OUT = {"L.k": 0, "L.v": 1, "R.k": 2, "R.w": 3}
    TABLE = {1: [(1, "a")], 2: [(2, "b"), (2, "c")]}

    def test_columnar_input_is_never_transposed(self):
        from repro.engine.block import RowBlock
        from repro.engine.join import probe_block

        block = RowBlock.from_columns([[1, 2, 3], [10, 20, 30]], self.LAYOUT)
        joined = probe_block(block, 0, self.TABLE, self.OUT)
        # The source block's row view was never materialized...
        assert block._rows is None
        # ...and the output stays column-major (no row view either).
        assert joined._rows is None
        assert joined.rows() == [
            (1, 10, 1, "a"),
            (2, 20, 2, "b"),
            (2, 20, 2, "c"),
        ]

    def test_row_major_input_uses_row_path(self):
        from repro.engine.block import RowBlock
        from repro.engine.join import probe_block

        block = RowBlock.from_rows([(2, 20), (9, 90)], self.LAYOUT)
        joined = probe_block(block, 0, self.TABLE, self.OUT)
        assert joined.rows() == [(2, 20, 2, "b"), (2, 20, 2, "c")]

    def test_no_matches_returns_none(self):
        from repro.engine.block import RowBlock
        from repro.engine.join import probe_block

        block = RowBlock.from_columns([[7, 8], [70, 80]], self.LAYOUT)
        assert probe_block(block, 0, self.TABLE, self.OUT) is None
        assert block._rows is None

    def test_hash_join_blocks_keeps_projected_input_columnar(
        self, toy_db, emp, dept
    ):
        """End-to-end: a Project child emits column-major blocks; the
        join's blocked probe must consume them without transposing."""
        seen: list = []

        class Spy(Project):
            def blocks(self, block_size):
                for block in super().blocks(block_size):
                    seen.append(block)
                    yield block

        left = Spy(
            SeqScan(emp.snapshot(), "E", toy_db.counter),
            ["E.name", "E.deptno"],
        )
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        join = HashJoin(left, right, "E.deptno", "D.deptno")
        rows = [row for block in join.blocks(4) for row in block.rows()]
        assert len(rows) == 5
        assert seen and all(block._rows is None for block in seen)
