"""Unit tests for scans, filters, projections, and the join operators."""

import pytest

from repro.engine.costmodel import OperationCounter
from repro.engine.errors import SchemaError
from repro.engine.expr import col, lit
from repro.engine.join import HashJoin, IndexNestedLoopJoin, NestedLoopJoin
from repro.engine.operators import (
    Filter,
    Project,
    RowSource,
    SeqScan,
    merged_layout,
)


@pytest.fixture
def emp(toy_db):
    return toy_db.table("emp")


@pytest.fixture
def dept(toy_db):
    return toy_db.table("dept")


class TestSeqScan:
    def test_yields_all_rows_with_alias_layout(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        rows = scan.rows()
        assert len(rows) == 5
        assert scan.layout["E.empno"] == 0
        assert scan.layout["E.salary"] == 3

    def test_charges_pages_and_cpu(self, toy_db, emp):
        before = toy_db.counter.snapshot()
        SeqScan(emp.snapshot(), "E", toy_db.counter).rows()
        after = toy_db.counter.snapshot()
        assert after["page_reads"] == before["page_reads"] + 1
        assert after["tuple_cpu"] == before["tuple_cpu"] + 5


class TestRowSource:
    def test_serves_in_memory_rows(self):
        counter = OperationCounter()
        src = RowSource([(1, "a"), (2, "b")], ("k", "v"), "D", counter)
        assert src.rows() == [(1, "a"), (2, "b")]
        assert src.layout == {"D.k": 0, "D.v": 1}
        assert len(src) == 2
        assert counter.page_reads == 0  # deltas live in memory

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            RowSource([], ("k", "k"), "D", OperationCounter())


class TestFilterAndProject:
    def test_filter(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        high = Filter(scan, col("E.salary") >= lit(200.0))
        names = sorted(row[1] for row in high)
        assert names == ["bob", "carol", "erin"]

    def test_project_reorders(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        proj = Project(scan, ["E.salary", "E.name"])
        rows = proj.rows()
        assert rows[0] == (100.0, "alice")
        assert proj.layout == {"E.salary": 0, "E.name": 1}

    def test_project_unknown_column(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        with pytest.raises(SchemaError):
            Project(scan, ["E.nope"])

    def test_project_duplicate_rejected(self, toy_db, emp):
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        with pytest.raises(SchemaError, match="duplicate"):
            Project(scan, ["E.name", "E.name"])


class TestMergedLayout:
    def test_concatenates(self):
        left = {"A.x": 0, "A.y": 1}
        right = {"B.z": 0}
        assert merged_layout(left, right) == {"A.x": 0, "A.y": 1, "B.z": 2}

    def test_overlap_rejected(self):
        with pytest.raises(SchemaError, match="share"):
            merged_layout({"A.x": 0}, {"A.x": 0})


class TestNestedLoopJoin:
    def test_cross_product_with_predicate(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        join = NestedLoopJoin(left, right, col("E.deptno") == col("D.deptno"))
        rows = join.rows()
        assert len(rows) == 5
        layout = join.layout
        for row in rows:
            assert row[layout["E.deptno"]] == row[layout["D.deptno"]]

    def test_no_predicate_is_cross_product(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        assert len(NestedLoopJoin(left, right, None).rows()) == 15


class TestIndexNestedLoopJoin:
    def test_join_via_index(self, toy_db, emp, dept):
        dept.create_index("deptno")
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        join = IndexNestedLoopJoin(
            left, dept.snapshot(), "D", "E.deptno", "deptno"
        )
        rows = join.rows()
        assert len(rows) == 5
        names = {
            (row[join.layout["E.name"]], row[join.layout["D.dname"]])
            for row in rows
        }
        assert ("alice", "eng") in names
        assert ("erin", "ops") in names

    def test_requires_index(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        with pytest.raises(SchemaError, match="needs an index"):
            IndexNestedLoopJoin(
                left, dept.snapshot(), "D", "E.deptno", "deptno"
            )

    def test_charges_one_probe_per_outer_tuple(self, toy_db, emp, dept):
        dept.create_index("deptno")
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        before = toy_db.counter.index_probes
        IndexNestedLoopJoin(
            left, dept.snapshot(), "D", "E.deptno", "deptno"
        ).rows()
        assert toy_db.counter.index_probes == before + 5


class TestHashJoin:
    def test_equi_join(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        join = HashJoin(left, right, "E.deptno", "D.deptno")
        assert len(join.rows()) == 5

    def test_build_cost_paid_at_construction(self, toy_db, emp, dept):
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        before = toy_db.counter.hash_builds
        HashJoin(left, right, "E.deptno", "D.deptno")  # not iterated
        assert toy_db.counter.hash_builds == before + 3

    def test_dangling_keys_produce_nothing(self, toy_db, emp, dept):
        emp.insert((9, "zed", 99, 1.0))  # department 99 doesn't exist
        left = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right = SeqScan(dept.snapshot(), "D", toy_db.counter)
        join = HashJoin(left, right, "E.deptno", "D.deptno")
        assert len(join.rows()) == 5  # zed joins nothing

    def test_agrees_with_nested_loop(self, toy_db, emp, dept):
        left1 = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right1 = SeqScan(dept.snapshot(), "D", toy_db.counter)
        hash_rows = sorted(
            HashJoin(left1, right1, "E.deptno", "D.deptno").rows()
        )
        left2 = SeqScan(emp.snapshot(), "E", toy_db.counter)
        right2 = SeqScan(dept.snapshot(), "D", toy_db.counter)
        nl_rows = sorted(
            NestedLoopJoin(
                left2, right2, col("E.deptno") == col("D.deptno")
            ).rows()
        )
        assert hash_rows == nl_rows
