"""Unit tests for the operation-count cost model."""

import pytest

from repro.engine.costmodel import (
    ROWS_PER_PAGE,
    CostModel,
    OperationCounter,
)


class TestOperationCounter:
    def test_starts_at_zero(self):
        counter = OperationCounter()
        assert counter.elapsed_ms() == 0.0

    def test_charge_and_elapsed(self):
        model = CostModel(page_read=2.0, tuple_cpu=0.5)
        counter = OperationCounter(model=model)
        counter.charge("page_reads", 3)
        counter.charge("tuple_cpu", 4)
        assert counter.elapsed_ms() == pytest.approx(3 * 2.0 + 4 * 0.5)

    def test_charge_pages_rounds_up(self):
        counter = OperationCounter()
        counter.charge_pages(1)
        assert counter.page_reads == 1
        counter.charge_pages(ROWS_PER_PAGE)
        assert counter.page_reads == 2
        counter.charge_pages(ROWS_PER_PAGE + 1)
        assert counter.page_reads == 4

    def test_charge_pages_zero_rows_free(self):
        counter = OperationCounter()
        counter.charge_pages(0)
        assert counter.page_reads == 0

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError, match="unknown operation"):
            OperationCounter().charge("nonsense")

    def test_reset(self):
        counter = OperationCounter()
        counter.charge("compares", 10)
        counter.reset()
        assert counter.elapsed_ms() == 0.0
        assert counter.compares == 0

    def test_snapshot_lists_all_classes(self):
        counter = OperationCounter()
        counter.charge("hash_builds", 2)
        snap = counter.snapshot()
        assert snap["hash_builds"] == 2
        assert set(snap) == set(OperationCounter._FIELDS)

    def test_every_field_has_a_weight(self):
        model = CostModel()
        for field in OperationCounter._FIELDS:
            weight_name = OperationCounter._WEIGHT_BY_FIELD[field]
            assert hasattr(model, weight_name)


class TestCostWindow:
    def test_window_measures_delta(self):
        counter = OperationCounter(model=CostModel(compare=1.0))
        counter.charge("compares", 5)
        with counter.window() as window:
            counter.charge("compares", 3)
        assert window.elapsed_ms == pytest.approx(3.0)
        assert counter.elapsed_ms() == pytest.approx(8.0)

    def test_nested_windows(self):
        counter = OperationCounter(model=CostModel(compare=1.0))
        with counter.window() as outer:
            counter.charge("compares", 2)
            with counter.window() as inner:
                counter.charge("compares", 5)
        assert inner.elapsed_ms == pytest.approx(5.0)
        assert outer.elapsed_ms == pytest.approx(7.0)

    def test_window_survives_exception(self):
        counter = OperationCounter(model=CostModel(compare=1.0))
        window = counter.window()
        with pytest.raises(RuntimeError):
            with window:
                counter.charge("compares", 1)
                raise RuntimeError("boom")
        assert window.elapsed_ms == pytest.approx(1.0)
