"""Hypothesis property tests for the relational engine.

Two families of invariants:

* **query correctness** -- random SPJ queries over random small relations
  must agree with a brute-force relational-algebra reference evaluator
  (nested loops over Python lists);
* **snapshot isolation** -- under random modification sequences, a
  snapshot taken at any LSN always equals the relation state replayed up
  to that LSN, regardless of later modifications, index existence, or
  vacuum watermarks.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.engine.types import ColumnType, Schema

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

r_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(-5, 5)),
    min_size=0,
    max_size=12,
)
s_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(-5, 5)),
    min_size=0,
    max_size=8,
)


def build_db(r, s, index_s):
    db = Database()
    table_r = db.create_table(
        "r", Schema.of(k=ColumnType.INT, a=ColumnType.INT)
    )
    table_s = db.create_table(
        "s", Schema.of(k=ColumnType.INT, b=ColumnType.INT)
    )
    for row in r:
        table_r.insert(row)
    for row in s:
        table_s.insert(row)
    if index_s:
        table_s.create_index("k")
    return db


JOIN_SPEC = QuerySpec(
    base_alias="R",
    base_table="r",
    joins=(JoinSpec("S", "s", "R.k", "k"),),
)


def reference_join(r, s, threshold=None):
    out = []
    for rk, ra in r:
        for sk, sb in s:
            if rk == sk and (threshold is None or ra > threshold):
                out.append((rk, ra, sk, sb))
    return sorted(out)


# ----------------------------------------------------------------------
# Query correctness vs brute force
# ----------------------------------------------------------------------


@given(r=r_rows, s=s_rows, index_s=st.booleans())
@settings(max_examples=60, deadline=None)
def test_join_matches_bruteforce(r, s, index_s):
    db = build_db(r, s, index_s)
    result = db.execute(JOIN_SPEC)
    assert sorted(result.rows) == reference_join(r, s)


@given(r=r_rows, s=s_rows, threshold=st.integers(-5, 5),
       index_s=st.booleans())
@settings(max_examples=60, deadline=None)
def test_filtered_join_matches_bruteforce(r, s, threshold, index_s):
    db = build_db(r, s, index_s)
    spec = QuerySpec(
        base_alias="R",
        base_table="r",
        joins=(JoinSpec("S", "s", "R.k", "k"),),
        filters=(col("R.a") > lit(threshold),),
    )
    result = db.execute(spec)
    assert sorted(result.rows) == reference_join(r, s, threshold)


@given(r=r_rows, s=s_rows, index_s=st.booleans())
@settings(max_examples=60, deadline=None)
def test_aggregates_match_bruteforce(r, s, index_s):
    db = build_db(r, s, index_s)
    joined = reference_join(r, s)
    for func, reference in (
        ("count", len(joined) if joined else 0),
        ("min", min((row[1] for row in joined), default=None)),
        ("max", max((row[1] for row in joined), default=None)),
        ("sum", sum(row[1] for row in joined) if joined else None),
    ):
        spec = QuerySpec(
            base_alias="R",
            base_table="r",
            joins=(JoinSpec("S", "s", "R.k", "k"),),
            aggregate=AggregateSpec(func=func, value=col("R.a")),
        )
        assert db.execute(spec).scalar() == reference


@given(r=r_rows, s=s_rows)
@settings(max_examples=40, deadline=None)
def test_index_choice_never_changes_answers(r, s):
    without = build_db(r, s, index_s=False).execute(JOIN_SPEC)
    with_index = build_db(r, s, index_s=True).execute(JOIN_SPEC)
    assert sorted(without.rows) == sorted(with_index.rows)


@given(r=r_rows, s=s_rows, delta=s_rows)
@settings(max_examples=40, deadline=None)
def test_substitution_equals_replaced_table(r, s, delta):
    """Executing with a substitution must equal executing against a
    database whose table really contains the substituted rows."""
    db = build_db(r, s, index_s=False)
    substituted = db.execute(JOIN_SPEC, substitutions={"S": delta})
    direct = build_db(r, delta, index_s=False).execute(JOIN_SPEC)
    assert sorted(substituted.rows) == sorted(direct.rows)


# ----------------------------------------------------------------------
# Snapshot isolation under random modification sequences
# ----------------------------------------------------------------------

modification_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.integers(0, 4),
        st.integers(-5, 5),
    ),
    min_size=1,
    max_size=25,
)


def apply_ops(table, ops):
    """Apply a modification script; returns the relation state after each
    LSN as a dict ``lsn -> sorted rows``."""
    states = {table.current_lsn: sorted(table.live_rows())}
    for kind, k, v in ops:
        if kind == "insert":
            table.insert((k, v))
        elif kind == "delete":
            rids = table.find_rids(lambda row: True)
            if not rids:
                continue
            table.delete_rid(rids[k % len(rids)])
        else:
            rids = table.find_rids(lambda row: True)
            if not rids:
                continue
            table.update_rid(rids[k % len(rids)], {"a": v})
        states[table.current_lsn] = sorted(table.live_rows())
    return states


@given(initial=r_rows, ops=modification_ops, with_index=st.booleans())
@settings(max_examples=50, deadline=None)
def test_snapshots_replay_history_exactly(initial, ops, with_index):
    db = Database()
    table = db.create_table(
        "r", Schema.of(k=ColumnType.INT, a=ColumnType.INT)
    )
    for row in initial:
        table.insert(row)
    if with_index:
        table.create_index("k")
    states = apply_ops(table, ops)
    for lsn, expected in states.items():
        assert sorted(table.snapshot(lsn).rows()) == expected


@given(initial=r_rows, ops=modification_ops)
@settings(max_examples=40, deadline=None)
def test_indexed_lookup_agrees_with_scan_at_any_lsn(initial, ops):
    db = Database()
    table = db.create_table(
        "r", Schema.of(k=ColumnType.INT, a=ColumnType.INT)
    )
    table.create_index("k")
    for row in initial:
        table.insert(row)
    apply_ops(table, ops)
    for lsn in range(0, table.current_lsn + 1, 3):
        snap = table.snapshot(lsn)
        for key in range(5):
            via_index = sorted(snap.lookup("k", key))
            via_scan = sorted(
                row for row in snap.rows() if row[0] == key
            )
            assert via_index == via_scan


@given(initial=r_rows, ops=modification_ops)
@settings(max_examples=30, deadline=None)
def test_vacuum_preserves_current_state_and_indexes(initial, ops):
    db = Database()
    table = db.create_table(
        "r", Schema.of(k=ColumnType.INT, a=ColumnType.INT)
    )
    table.create_index("k")
    for row in initial:
        table.insert(row)
    apply_ops(table, ops)
    before = sorted(table.live_rows())
    table.vacuum()
    assert sorted(table.live_rows()) == before
    snap = table.snapshot()
    for key in range(5):
        assert sorted(snap.lookup("k", key)) == sorted(
            row for row in before if row[0] == key
        )
