"""Tests for ORDER BY / LIMIT, EXPLAIN, vacuum, and .tbl import/export."""

import pytest

from repro.engine.database import Database
from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.expr import col, lit
from repro.engine.io import (
    dump_database,
    dump_table,
    load_database,
    load_table,
)
from repro.engine.query import (
    AggregateSpec,
    JoinSpec,
    OrderSpec,
    QuerySpec,
)
from repro.engine.types import ColumnType, Schema


class TestOrderByAndLimit:
    def test_order_ascending(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            projection=("E.name", "E.salary"),
            order_by=(OrderSpec("E.salary"),),
        )
        rows = toy_db.execute(spec).rows
        salaries = [s for __, s in rows]
        assert salaries == sorted(salaries)

    def test_order_descending(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            projection=("E.name", "E.salary"),
            order_by=(OrderSpec("E.salary", descending=True),),
        )
        rows = toy_db.execute(spec).rows
        assert rows[0] == ("carol", 300.0)  # highest salary

    def test_order_key_must_be_in_output(self, toy_db):
        # ORDER BY applies to the final output; keys dropped by the
        # projection are rejected (documented dialect restriction).
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            projection=("E.name",),
            order_by=(OrderSpec("E.salary"),),
        )
        with pytest.raises(SchemaError, match="unknown column"):
            toy_db.execute(spec)

    def test_multi_key_order_stable(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            projection=("E.deptno", "E.salary"),
            order_by=(
                OrderSpec("E.deptno"),
                OrderSpec("E.salary", descending=True),
            ),
        )
        rows = toy_db.execute(spec).rows
        assert rows == [
            (10, 200.0), (10, 100.0), (20, 300.0), (20, 150.0), (30, 250.0),
        ]

    def test_limit(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            order_by=(OrderSpec("E.salary"),),
            limit=2,
        )
        assert len(toy_db.execute(spec)) == 2

    def test_limit_zero(self, toy_db):
        spec = QuerySpec(base_alias="E", base_table="emp", limit=0)
        assert len(toy_db.execute(spec)) == 0

    def test_negative_limit_rejected(self):
        with pytest.raises(SchemaError):
            QuerySpec(base_alias="E", base_table="emp", limit=-1)

    def test_order_on_aggregate_output(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            aggregate=AggregateSpec(
                func="sum", value=col("E.salary"), group_by=("E.deptno",)
            ),
            order_by=(OrderSpec("sum", descending=True),),
            limit=1,
        )
        rows = toy_db.execute(spec).rows
        assert rows == [(20, 450.0)]

    def test_order_charges_sort_cost(self, toy_db):
        before = toy_db.counter.sort_items
        toy_db.execute(
            QuerySpec(
                base_alias="E",
                base_table="emp",
                order_by=(OrderSpec("E.salary"),),
            )
        )
        assert toy_db.counter.sort_items == before + 5

    def test_rebased_preserves_order_and_limit(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            joins=(JoinSpec("D", "dept", "E.deptno", "deptno"),),
            order_by=(OrderSpec("E.salary"),),
            limit=3,
        )
        rebased = spec.rebased("D")
        assert rebased.order_by == spec.order_by
        assert rebased.limit == 3


class TestExplain:
    def test_mentions_access_paths(self, toy_db):
        toy_db.table("dept").create_index("deptno")
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            joins=(JoinSpec("D", "dept", "E.deptno", "deptno"),),
            filters=(col("E.salary") > lit(100.0),),
            aggregate=AggregateSpec(func="min", value=col("E.salary")),
        )
        text = toy_db.explain(spec)
        assert "SeqScan(emp AS E" in text
        assert "IndexNestedLoopJoin(dept AS D" in text
        assert "Filter" in text
        assert "Aggregate(MIN" in text

    def test_hash_join_without_index(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            joins=(JoinSpec("D", "dept", "E.deptno", "deptno"),),
        )
        assert "HashJoin(build SeqScan(dept" in toy_db.explain(spec)

    def test_substitution_shown_as_row_source(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            joins=(JoinSpec("D", "dept", "E.deptno", "deptno"),),
        )
        text = toy_db.explain(spec, substitutions={"E": [(9, "x", 10, 1.0)]})
        assert "RowSource(E := delta of emp, 1 rows)" in text

    def test_explain_costs_nothing(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            joins=(JoinSpec("D", "dept", "E.deptno", "deptno"),),
        )
        before = toy_db.counter.elapsed_ms()
        toy_db.explain(spec)
        assert toy_db.counter.elapsed_ms() == before

    def test_order_and_limit_shown(self, toy_db):
        spec = QuerySpec(
            base_alias="E",
            base_table="emp",
            order_by=(OrderSpec("E.salary", descending=True),),
            limit=3,
        )
        text = toy_db.explain(spec)
        assert "Sort(E.salary DESC)" in text
        assert "Limit(3)" in text


class TestVacuum:
    def test_reclaims_dead_versions(self, toy_db):
        emp = toy_db.table("emp")
        emp.create_index("deptno")
        for rid in list(emp.find_rids(lambda r: r[2] == 10)):
            emp.update_rid(rid, {"salary": 1.0})
        assert emp.version_count() == 7  # 5 original + 2 new versions
        reclaimed = emp.vacuum()
        assert reclaimed == 2
        assert emp.version_count() == 5
        assert emp.live_count == 5

    def test_index_still_correct_after_vacuum(self, toy_db):
        emp = toy_db.table("emp")
        emp.create_index("deptno")
        rid = emp.find_rids(lambda r: r[1] == "alice")[0]
        emp.update_rid(rid, {"deptno": 30})
        emp.vacuum()
        snap = emp.snapshot()
        names = {row[1] for row in snap.lookup("deptno", 30)}
        assert names == {"alice", "erin"}
        assert all(
            row[1] != "alice" for row in snap.lookup("deptno", 10)
        )

    def test_watermark_preserves_older_snapshots(self, toy_db):
        emp = toy_db.table("emp")
        rid = emp.find_rids(lambda r: r[1] == "alice")[0]
        lsn = emp.current_lsn
        emp.update_rid(rid, {"salary": 1.0})
        # Keep versions visible at `lsn` readable.
        reclaimed = emp.vacuum(before_lsn=lsn)
        assert reclaimed == 0
        old = emp.snapshot(lsn)
        assert any(row[1] == "alice" and row[3] == 100.0 for row in old.rows())

    def test_vacuum_noop_on_clean_table(self, toy_db):
        assert toy_db.table("emp").vacuum() == 0

    def test_bad_watermark(self, toy_db):
        with pytest.raises(ExecutionError):
            toy_db.table("emp").vacuum(before_lsn=10_000)


class TestTblIO:
    def test_roundtrip(self, toy_db, tmp_path):
        emp = toy_db.table("emp")
        path = tmp_path / "emp.tbl"
        written = dump_table(emp, path)
        assert written == 5
        first_line = path.read_text().splitlines()[0]
        assert first_line.endswith("|")
        assert first_line.count("|") == 4

        db2 = Database()
        loaded = load_table(db2, "emp", emp.schema, path)
        assert sorted(loaded.live_rows()) == sorted(emp.live_rows())

    def test_dump_load_database(self, toy_db, tmp_path):
        counts = dump_database(toy_db, tmp_path)
        assert counts == {"emp": 5, "dept": 3}
        db2 = Database()
        schemas = {
            "emp": toy_db.table("emp").schema,
            "dept": toy_db.table("dept").schema,
        }
        loaded = load_database(db2, tmp_path, schemas)
        assert loaded == counts

    def test_tpcr_shape_compatible(self, tmp_path):
        """Generated TPC-R data round-trips through dbgen's format."""
        from repro.tpcr.gen import load_tpcr
        from repro.tpcr.schema import TPCR_SCHEMAS

        db = Database()
        load_tpcr(db, scale=0.002, tables=("region", "nation", "supplier"))
        dump_database(db, tmp_path)
        db2 = Database()
        load_database(
            db2,
            tmp_path,
            {name: TPCR_SCHEMAS[name] for name in ("region", "nation", "supplier")},
        )
        assert sorted(db2.table("supplier").live_rows()) == sorted(
            db.table("supplier").live_rows()
        )

    def test_pipe_in_string_rejected(self, tmp_path):
        db = Database()
        t = db.create_table("t", Schema.of(s=ColumnType.STR))
        t.insert(("has|pipe",))
        with pytest.raises(ExecutionError, match="no\\s+escaping"):
            dump_table(t, tmp_path / "t.tbl")

    def test_bad_row_reports_line(self, tmp_path):
        path = tmp_path / "t.tbl"
        path.write_text("1|ok|\nnot-an-int|bad|\n")
        db = Database()
        schema = Schema.of(k=ColumnType.INT, v=ColumnType.STR)
        with pytest.raises(ExecutionError, match=":2:"):
            load_table(db, "t", schema, path)

    def test_field_count_mismatch(self, tmp_path):
        path = tmp_path / "t.tbl"
        path.write_text("1|\n")
        db = Database()
        schema = Schema.of(k=ColumnType.INT, v=ColumnType.STR)
        with pytest.raises(ExecutionError, match="fields"):
            load_table(db, "t", schema, path)

    def test_float_precision_roundtrip(self, tmp_path):
        db = Database()
        t = db.create_table("t", Schema.of(x=ColumnType.FLOAT))
        t.insert((0.1 + 0.2,))
        dump_table(t, tmp_path / "t.tbl")
        db2 = Database()
        loaded = load_table(db2, "t", t.schema, tmp_path / "t.tbl")
        assert list(loaded.live_rows()) == [(0.1 + 0.2,)]
