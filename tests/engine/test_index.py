"""Unit tests for hash and sorted indexes."""

import pytest

from repro.engine.errors import SchemaError
from repro.engine.index import HashIndex, SortedIndex


class TestHashIndex:
    def test_add_and_lookup(self):
        idx = HashIndex("i", "c")
        idx.add(5, 0)
        idx.add(5, 3)
        idx.add(7, 1)
        assert set(idx.lookup(5)) == {0, 3}
        assert idx.lookup(7) == (1,)
        assert idx.lookup(99) == ()
        assert len(idx) == 3

    def test_remove(self):
        idx = HashIndex("i", "c")
        idx.add(5, 0)
        idx.add(5, 1)
        idx.remove(5, 0)
        assert idx.lookup(5) == (1,)
        assert len(idx) == 1

    def test_remove_is_idempotent(self):
        idx = HashIndex("i", "c")
        idx.add(5, 0)
        idx.remove(5, 0)
        idx.remove(5, 0)
        idx.remove(99, 4)
        assert len(idx) == 0
        assert idx.lookup(5) == ()

    def test_keys(self):
        idx = HashIndex("i", "c")
        idx.add("a", 0)
        idx.add("b", 1)
        assert set(idx.keys()) == {"a", "b"}

    def test_requires_name(self):
        with pytest.raises(SchemaError):
            HashIndex("", "c")


class TestSortedIndex:
    def test_add_and_lookup(self):
        idx = SortedIndex("i", "c")
        for key, rid in [(5, 0), (3, 1), (5, 2), (9, 3)]:
            idx.add(key, rid)
        assert set(idx.lookup(5)) == {0, 2}
        assert idx.lookup(4) == ()
        assert len(idx) == 4

    def test_range(self):
        idx = SortedIndex("i", "c")
        for key, rid in [(1, 0), (3, 1), (5, 2), (7, 3)]:
            idx.add(key, rid)
        assert idx.range(2, 5) == ((3, 1), (5, 2))
        assert idx.range(8, 10) == ()

    def test_first(self):
        idx = SortedIndex("i", "c")
        assert idx.first() is None
        idx.add(9, 0)
        idx.add(2, 1)
        assert idx.first() == (2, 1)

    def test_remove(self):
        idx = SortedIndex("i", "c")
        idx.add(5, 0)
        idx.add(5, 1)
        idx.remove(5, 0)
        assert idx.lookup(5) == (1,)
        idx.remove(5, 99)  # absent: no-op
        assert len(idx) == 1
