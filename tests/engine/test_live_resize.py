"""Live-resize paths: ``set_workers`` / ``set_block_size`` semantics.

The adaptive control layer actuates exactly these two methods between
queries, so their contracts are load-bearing: ``workers`` is read-only
outside ``set_workers`` (which drains the old pool), ``set_block_size``
re-arms the low-fill diagnosis, and a database still riding the
process-global worker default warns -- once -- when that default moves
after construction instead of silently ignoring it.
"""

import warnings

import pytest

from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.parallel import (
    BACKEND_ENV,
    WORKERS_ENV,
    set_default_backend,
    set_default_workers,
)
from repro.engine.query import QuerySpec
from repro.engine.types import ColumnType, Schema


@pytest.fixture(autouse=True)
def _clean_parallel_defaults(monkeypatch):
    """Isolate each test from CLI/env worker configuration."""
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    set_default_workers(None)
    set_default_backend(None)
    yield
    set_default_workers(None)
    set_default_backend(None)


def make_db(rows=300, block_size=64, **kwargs):
    db = Database(block_size=block_size, **kwargs)
    table = db.create_table(
        "t", Schema.of(k=ColumnType.INT, val=ColumnType.FLOAT)
    )
    for i in range(rows):
        table.insert((i, float(i) * 1.5))
    return db


def chain_spec():
    return QuerySpec(
        base_alias="T",
        base_table="t",
        filters=(col("T.k") >= lit(0),),
        projection=("T.val",),
    )


class TestSetWorkers:
    def test_resize_changes_value_and_results_stay_identical(self):
        with make_db(workers=2) as db:
            before = db.execute(chain_spec()).rows
            assert db.set_workers(3) == 3
            assert db.workers == 3
            assert db.execute(chain_spec()).rows == before
            assert db.set_workers(0) == 0
            assert db.execute(chain_spec()).rows == before

    def test_resize_drains_the_old_pool(self):
        with make_db(workers=2) as db:
            db.execute(chain_spec())  # starts the pool lazily
            pool = db._parallel
            assert pool is not None
            db.set_workers(1)
            assert db._parallel is None  # old pool released
            db.execute(chain_spec())
            assert db._parallel is not pool

    def test_same_size_keeps_the_pool(self):
        with make_db(workers=2) as db:
            db.execute(chain_spec())
            pool = db._parallel
            db.set_workers(2)
            assert db._parallel is pool

    def test_workers_property_is_read_only(self):
        with make_db(workers=1) as db:
            with pytest.raises(AttributeError, match="set_workers"):
                db.workers = 4
            assert db.workers == 1

    def test_negative_rejected(self):
        with make_db() as db:
            with pytest.raises(ValueError):
                db.set_workers(-1)


class TestSetBlockSize:
    def test_changes_take_effect_and_results_stay_identical(self):
        with make_db(block_size=64) as db:
            before = db.execute(chain_spec()).rows
            assert db.set_block_size(8) == 8
            assert db.block_size == 8
            assert db.execute(chain_spec()).rows == before
            assert db.set_block_size(None) is None  # row-at-a-time
            assert db.execute(chain_spec()).rows == before

    def test_invalid_rejected(self):
        with make_db() as db:
            with pytest.raises(ValueError):
                db.set_block_size(0)

    def test_change_rearms_low_fill_warning(self):
        with make_db() as db:
            db._low_fill_warned = True
            db.set_block_size(32)
            assert db._low_fill_warned is False

    def test_same_size_keeps_warning_armed_off(self):
        with make_db(block_size=64) as db:
            db._low_fill_warned = True
            db.set_block_size(64)
            assert db._low_fill_warned is True


class TestStaleDefaultWarning:
    def test_warns_once_when_global_default_moves(self):
        with make_db() as db:  # workers=None: rides the global default
            set_default_workers(2)
            with pytest.warns(RuntimeWarning, match="never resized implicitly"):
                db.execute(chain_spec())
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                db.execute(chain_spec())  # second query: silent

    def test_explicit_workers_never_warn(self):
        with make_db(workers=1) as db:
            set_default_workers(3)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                db.execute(chain_spec())

    def test_set_workers_supersedes_the_default(self):
        with make_db() as db:
            db.set_workers(1)
            set_default_workers(3)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                db.execute(chain_spec())
