"""Unit tests for aggregate states and the Aggregate operator."""

import pytest

from repro.engine.costmodel import OperationCounter
from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.aggregate import (
    Aggregate,
    AvgState,
    CountState,
    MaxState,
    MinState,
    SumState,
    make_aggregate_state,
)
from repro.engine.expr import col
from repro.engine.operators import SeqScan


class TestCountState:
    def test_basic(self):
        s = CountState()
        s.insert("anything")
        s.insert("else")
        assert s.result() == 2
        s.delete("anything")
        assert s.result() == 1
        assert not s.is_empty()

    def test_underflow(self):
        with pytest.raises(ExecutionError):
            CountState().delete("x")


class TestSumAndAvg:
    def test_sum(self):
        s = SumState()
        for v in (1.0, 2.0, 3.0):
            s.insert(v)
        assert s.result() == pytest.approx(6.0)
        s.delete(2.0)
        assert s.result() == pytest.approx(4.0)

    def test_sum_empty_is_none(self):
        s = SumState()
        assert s.result() is None
        s.insert(1.0)
        s.delete(1.0)
        assert s.result() is None

    def test_avg(self):
        s = AvgState()
        for v in (2.0, 4.0):
            s.insert(v)
        assert s.result() == pytest.approx(3.0)

    def test_sum_underflow(self):
        with pytest.raises(ExecutionError):
            SumState().delete(1.0)


class TestMinState:
    def test_insert_updates_min(self):
        s = MinState()
        s.insert(5.0)
        s.insert(3.0)
        s.insert(7.0)
        assert s.result() == 3.0

    def test_delete_nonmin_is_cheap(self):
        s = MinState()
        for v in (3.0, 5.0):
            s.insert(v)
        s.delete(5.0)
        assert s.result() == 3.0
        assert s.recomputations == 0

    def test_delete_min_triggers_recomputation(self):
        s = MinState()
        for v in (3.0, 5.0, 4.0):
            s.insert(v)
        s.delete(3.0)
        assert s.result() == 4.0
        assert s.recomputations == 1

    def test_duplicate_min_no_recompute_until_last_copy(self):
        s = MinState()
        s.insert(3.0)
        s.insert(3.0)
        s.delete(3.0)
        assert s.result() == 3.0
        assert s.recomputations == 0
        s.delete(3.0)
        assert s.result() is None
        assert s.recomputations == 1

    def test_underflow_on_absent_value(self):
        s = MinState()
        s.insert(3.0)
        with pytest.raises(ExecutionError):
            s.delete(4.0)

    def test_recompute_charges_cost(self):
        counter = OperationCounter()
        s = MinState(counter)
        for v in (1.0, 2.0, 3.0):
            s.insert(v)
        before = counter.sort_items
        s.delete(1.0)
        assert counter.sort_items > before


class TestMaxState:
    def test_mirrors_min(self):
        s = MaxState()
        for v in (3.0, 9.0, 5.0):
            s.insert(v)
        assert s.result() == 9.0
        s.delete(9.0)
        assert s.result() == 5.0
        assert s.recomputations == 1


class TestFactory:
    def test_known_functions(self):
        for name, cls in [
            ("count", CountState),
            ("sum", SumState),
            ("avg", AvgState),
            ("min", MinState),
            ("MAX", MaxState),
        ]:
            assert isinstance(make_aggregate_state(name), cls)

    def test_unknown_function(self):
        with pytest.raises(SchemaError, match="unknown aggregate"):
            make_aggregate_state("median")


class TestAggregateOperator:
    def test_scalar_min(self, toy_db):
        emp = toy_db.table("emp")
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        agg = Aggregate(scan, "min", col("E.salary"))
        assert agg.rows() == [(100.0,)]

    def test_grouped_sum(self, toy_db):
        emp = toy_db.table("emp")
        scan = SeqScan(emp.snapshot(), "E", toy_db.counter)
        agg = Aggregate(scan, "sum", col("E.salary"), group_by=["E.deptno"])
        assert sorted(agg.rows()) == [
            (10, 300.0),
            (20, 450.0),
            (30, 250.0),
        ]

    def test_scalar_over_empty_input_is_none(self, toy_db):
        emp = toy_db.table("emp")
        scan = SeqScan(emp.snapshot(0), "E", toy_db.counter)  # empty snapshot
        agg = Aggregate(scan, "min", col("E.salary"))
        assert agg.rows() == [(None,)]

    def test_count_over_empty_input_is_zero(self, toy_db):
        emp = toy_db.table("emp")
        scan = SeqScan(emp.snapshot(0), "E", toy_db.counter)
        agg = Aggregate(scan, "count", col("E.salary"))
        assert agg.rows() == [(0,)]

    def test_grouped_over_empty_input_has_no_rows(self, toy_db):
        emp = toy_db.table("emp")
        scan = SeqScan(emp.snapshot(0), "E", toy_db.counter)
        agg = Aggregate(scan, "sum", col("E.salary"), group_by=["E.deptno"])
        assert agg.rows() == []


class TestMerge:
    """merge(): the combine step of parallel partial aggregation."""

    def test_count(self):
        a, b = CountState(), CountState()
        for _ in range(3):
            a.insert("x")
        b.insert("y")
        a.merge(b)
        assert a.result() == 4

    def test_sum_and_avg(self):
        a, b = SumState(), SumState()
        a.insert(1.5)
        b.insert(2.5)
        b.insert(3.0)
        a.merge(b)
        assert a.result() == 7.0
        assert a.count == 3
        av, bv = AvgState(), AvgState()
        av.insert(2.0)
        bv.insert(4.0)
        av.merge(bv)
        assert av.result() == 3.0

    def test_extremum_unions_multisets(self):
        a, b = MinState(), MinState()
        a.insert(5)
        a.insert(7)
        b.insert(3)
        b.insert(5)
        a.merge(b)
        assert a.result() == 3
        assert a.count == 4
        # The merged multiset supports incremental deletes: removing the
        # last 3 recomputes over survivors from *both* partials.
        a.delete(3)
        assert a.result() == 5
        a.delete(5)  # one copy came from each side
        assert a.result() == 5
        a.delete(5)
        assert a.result() == 7

    def test_merge_into_empty(self):
        a, b = MaxState(), MaxState()
        b.insert(9)
        a.merge(b)
        assert a.result() == 9

    def test_merge_is_charge_free(self):
        counter = OperationCounter()
        a = SumState(counter)
        b = SumState(counter)
        a.insert(1.0)
        b.insert(2.0)
        charged = counter.snapshot()
        a.merge(b)
        assert counter.snapshot() == charged

    def test_type_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            CountState().merge(SumState())
        # AvgState subclasses SumState, but partials must not cross.
        with pytest.raises(ExecutionError):
            SumState().merge(AvgState())
