"""Unit tests for ModLog truncation and its subscriber registry."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.table import ModEvent, ModLog


class _Reader:
    """Minimal truncation-pin: anything exposing ``applied_lsn``."""

    def __init__(self, applied_lsn: int):
        self.applied_lsn = applied_lsn


def fill(log: ModLog, n: int) -> None:
    for i in range(n):
        log.append(ModEvent(lsn=len(log) + 1, kind="insert",
                            old_values=None, new_values=(i,)))


class TestSubscribers:
    def test_subscribe_and_unsubscribe(self):
        log = ModLog(chunk_size=4)
        reader = _Reader(0)
        log.subscribe(reader)
        assert log.subscriber_count() == 1
        log.unsubscribe(reader)
        assert log.subscriber_count() == 0
        log.unsubscribe(reader)  # idempotent

    def test_registration_is_weak(self):
        log = ModLog(chunk_size=4)
        log.subscribe(_Reader(0))
        assert log.subscriber_count() == 0  # collected immediately

    def test_safe_truncation_lsn_is_min_subscriber(self):
        log = ModLog(chunk_size=4)
        fill(log, 10)
        slow, fast = _Reader(3), _Reader(9)
        log.subscribe(slow)
        log.subscribe(fast)
        assert log.safe_truncation_lsn() == 3
        slow.applied_lsn = 8
        assert log.safe_truncation_lsn() == 8

    def test_no_subscribers_means_everything_reclaimable(self):
        log = ModLog(chunk_size=4)
        fill(log, 10)
        assert log.safe_truncation_lsn() == 10


class TestTruncate:
    def test_drops_whole_chunks_only(self):
        log = ModLog(chunk_size=4)
        fill(log, 10)
        # Everything reclaimable, but only the two full chunks (8 events)
        # can go; the partial tail chunk stays.
        assert log.truncate() == 8
        assert log.truncated_lsn == 8
        assert log.retained == 2
        assert len(log) == 10  # logical length is stable

    def test_clamped_to_slowest_subscriber(self):
        log = ModLog(chunk_size=4)
        fill(log, 12)
        reader = _Reader(5)
        log.subscribe(reader)
        # Safe limit 5 -> only the first chunk (LSNs 1..4) may drop.
        assert log.truncate() == 4
        assert log.truncated_lsn == 4
        # Explicit upto beyond the safe limit is clamped too.
        assert log.truncate(upto_lsn=12) == 0

    def test_truncate_is_idempotent_and_incremental(self):
        log = ModLog(chunk_size=4)
        fill(log, 12)
        reader = _Reader(4)
        log.subscribe(reader)
        assert log.truncate() == 4
        assert log.truncate() == 0
        reader.applied_lsn = 12
        assert log.truncate() == 8  # both remaining full chunks

    def test_reads_below_truncation_point_raise(self):
        log = ModLog(chunk_size=4)
        fill(log, 12)
        log.truncate(upto_lsn=8)
        with pytest.raises(ExecutionError, match="truncation point"):
            log.window(2, 6)
        with pytest.raises(IndexError, match="truncation point"):
            log[0]

    def test_reads_above_truncation_point_survive(self):
        log = ModLog(chunk_size=4)
        fill(log, 12)
        before = log.window(8, 12)
        log.truncate(upto_lsn=8)
        assert log.window(8, 12) == before
        assert log[8].new_values == (8,)
        assert [e.lsn for e in log] == list(range(9, 13))

    def test_append_continues_after_truncation(self):
        log = ModLog(chunk_size=4)
        fill(log, 8)
        log.truncate()
        fill(log, 3)
        assert len(log) == 11
        assert [e.lsn for e in log.window(8, 11)] == [9, 10, 11]
