"""Integration tests for QuerySpec execution through the Database facade."""

import warnings

import pytest

from repro.engine.database import Database
from repro.engine.errors import SchemaError
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QueryResult, QuerySpec
from repro.engine.types import ColumnType, Schema


def emp_dept_spec(**overrides):
    defaults = dict(
        base_alias="E",
        base_table="emp",
        joins=(JoinSpec("D", "dept", "E.deptno", "deptno"),),
    )
    defaults.update(overrides)
    return QuerySpec(**defaults)


class TestBasicExecution:
    def test_scan_only(self, toy_db):
        result = toy_db.execute(QuerySpec(base_alias="E", base_table="emp"))
        assert len(result) == 5
        assert "E.name" in result.columns

    def test_join(self, toy_db):
        result = toy_db.execute(emp_dept_spec())
        assert len(result) == 5

    def test_join_uses_index_when_available(self, toy_db):
        toy_db.table("dept").create_index("deptno")
        before = toy_db.counter.index_probes
        toy_db.execute(emp_dept_spec())
        assert toy_db.counter.index_probes > before

    def test_join_falls_back_to_hash(self, toy_db):
        before = toy_db.counter.hash_builds
        toy_db.execute(emp_dept_spec())
        assert toy_db.counter.hash_builds > before

    def test_filter_pushdown(self, toy_db):
        spec = emp_dept_spec(
            filters=(col("E.salary") > lit(180.0),)
        )
        result = toy_db.execute(spec)
        assert len(result) == 3

    def test_filter_on_joined_table(self, toy_db):
        spec = emp_dept_spec(filters=(col("D.dname") == lit("eng"),))
        result = toy_db.execute(spec)
        assert len(result) == 2

    def test_projection(self, toy_db):
        spec = emp_dept_spec(projection=("E.name", "D.dname"))
        result = toy_db.execute(spec)
        assert result.columns == ("E.name", "D.dname")
        assert ("alice", "eng") in result.rows

    def test_aggregate(self, toy_db):
        spec = emp_dept_spec(
            aggregate=AggregateSpec(func="min", value=col("E.salary")),
        )
        assert toy_db.execute(spec).scalar() == 100.0

    def test_grouped_aggregate(self, toy_db):
        spec = emp_dept_spec(
            aggregate=AggregateSpec(
                func="count", value=col("E.empno"), group_by=("D.dname",)
            ),
        )
        rows = sorted(toy_db.execute(spec).rows)
        assert rows == [("eng", 2), ("ops", 1), ("sales", 2)]

    def test_unresolvable_filter_rejected(self, toy_db):
        spec = emp_dept_spec(filters=(col("Z.q") == lit(1),))
        with pytest.raises(SchemaError, match="unknown columns"):
            toy_db.execute(spec)


class TestSnapshotsAndSubstitutions:
    def test_snapshot_lsns(self, toy_db):
        emp = toy_db.table("emp")
        lsn = emp.current_lsn
        emp.insert((6, "frank", 10, 500.0))
        spec = QuerySpec(base_alias="E", base_table="emp")
        assert len(toy_db.execute(spec)) == 6
        assert len(toy_db.execute(spec, snapshot_lsns={"E": lsn})) == 5

    def test_substitute_base(self, toy_db):
        spec = emp_dept_spec()
        delta = [(99, "zoe", 20, 1.0)]
        result = toy_db.execute(spec, substitutions={"E": delta})
        assert len(result) == 1
        assert result.rows[0][1] == "zoe"

    def test_substitute_inner(self, toy_db):
        spec = emp_dept_spec()
        delta = [(10, "newdept")]
        result = toy_db.execute(spec, substitutions={"D": delta})
        assert len(result) == 2  # only dept 10's two employees

    def test_empty_substitution_yields_nothing(self, toy_db):
        result = toy_db.execute(emp_dept_spec(), substitutions={"E": []})
        assert len(result) == 0


class TestQuerySpec:
    def test_duplicate_aliases_rejected(self):
        with pytest.raises(SchemaError, match="duplicate aliases"):
            QuerySpec(
                base_alias="E",
                base_table="emp",
                joins=(JoinSpec("E", "dept", "E.deptno", "deptno"),),
            )

    def test_qualified_right_column_rejected(self):
        with pytest.raises(SchemaError, match="bare column"):
            JoinSpec("D", "dept", "E.deptno", "D.deptno")

    def test_projection_and_aggregate_exclusive(self):
        with pytest.raises(SchemaError):
            QuerySpec(
                base_alias="E",
                base_table="emp",
                projection=("E.name",),
                aggregate=AggregateSpec(func="min", value=col("E.salary")),
            )

    def test_table_of(self):
        spec = emp_dept_spec()
        assert spec.table_of("E") == "emp"
        assert spec.table_of("D") == "dept"
        with pytest.raises(SchemaError):
            spec.table_of("Z")

    def test_aliases_order(self):
        assert emp_dept_spec().aliases == ("E", "D")


class TestRebasing:
    def test_rebase_identity(self):
        spec = emp_dept_spec()
        assert spec.rebased("E") is spec

    def test_rebase_swaps_direction(self, toy_db):
        spec = emp_dept_spec()
        rebased = spec.rebased("D")
        assert rebased.base_alias == "D"
        assert rebased.base_table == "dept"
        assert rebased.joins[0].alias == "E"
        # Same result either way.
        a = sorted(toy_db.execute(spec, substitutions={"D": [(10, "eng")]}).rows)
        b_rows = toy_db.execute(rebased, substitutions={"D": [(10, "eng")]}).rows
        # Column order differs after rebasing; compare as sets of dicts.
        layout_a = toy_db.execute(spec).columns
        layout_b = toy_db.execute(rebased).columns
        b = sorted(
            tuple(dict(zip(layout_b, row))[c] for c in layout_a)
            for row in b_rows
        )
        assert a == b

    def test_rebase_four_way_chain(self):
        spec = QuerySpec(
            base_alias="A",
            base_table="ta",
            joins=(
                JoinSpec("B", "tb", "A.x", "x"),
                JoinSpec("C", "tc", "B.y", "y"),
                JoinSpec("D", "td", "C.z", "z"),
            ),
        )
        rebased = spec.rebased("D")
        assert rebased.base_alias == "D"
        assert [j.alias for j in rebased.joins] == ["C", "B", "A"]
        # Rebasing twice returns to an equivalent rooting.
        back = rebased.rebased("A")
        assert back.base_alias == "A"
        assert {j.alias for j in back.joins} == {"B", "C", "D"}

    def test_rebase_unknown_alias(self):
        with pytest.raises(SchemaError, match="unknown alias"):
            emp_dept_spec().rebased("Z")


class TestQueryResult:
    def test_scalar_guard(self):
        result = QueryResult(rows=[(1,), (2,)], columns=("c",))
        with pytest.raises(SchemaError):
            result.scalar()

    def test_iteration(self):
        result = QueryResult(rows=[(1,), (2,)], columns=("c",))
        assert list(result) == [(1,), (2,)]


class TestDDL:
    def test_duplicate_table_rejected(self, toy_db):
        with pytest.raises(SchemaError, match="already exists"):
            toy_db.create_table("emp", Schema.of(x=ColumnType.INT))

    def test_unknown_table(self, toy_db):
        with pytest.raises(SchemaError, match="no table"):
            toy_db.table("ghost")

    def test_startup_charged_per_execute(self, toy_db):
        before = toy_db.counter.startups
        toy_db.execute(QuerySpec(base_alias="E", base_table="emp"))
        assert toy_db.counter.startups == before + 1


def _sparse_filter_db(block_size=10, rows=100, workers=None):
    """100 rows, filter keeps every 10th: each source block yields one
    mid-stream 1-row block -- genuine 10% fill, not a tail artifact."""
    db = Database(block_size=block_size, workers=workers)
    table = db.create_table(
        "t", Schema.of(k=ColumnType.INT, tag=ColumnType.INT)
    )
    for i in range(rows):
        table.insert((i, i % block_size))
    return db


def _sparse_filter_spec():
    return QuerySpec(
        base_alias="T",
        base_table="t",
        filters=(col("T.tag") == lit(0),),
    )


class TestLowFillWarning:
    """Blocked execution warns when most of each *mid-stream* block is
    slack; the natural tail block of a result is never counted."""

    def test_warns_once_per_database(self):
        db = _sparse_filter_db()
        with pytest.warns(RuntimeWarning, match="below 25%"):
            db.execute(_sparse_filter_spec())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            db.execute(_sparse_filter_spec())  # same shape: stays silent

    def test_low_fill_counter_under_recording(self):
        from repro import obs

        db = _sparse_filter_db()
        with pytest.warns(RuntimeWarning):
            with obs.recording() as rec:
                db.execute(_sparse_filter_spec())
        assert rec.registry.get("engine.block.low_fill").value >= 1
        fill = rec.registry.get("engine.block.fill")
        assert fill.count >= 1
        assert fill.max < 0.25

    def test_tail_block_does_not_warn(self):
        """Regression: a short query's single partial block is the
        natural tail of every result, not a block-size problem."""
        from repro import obs

        db = Database(block_size=256)
        table = db.create_table("t", Schema.of(k=ColumnType.INT))
        for i in range(5):
            table.insert((i,))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with obs.recording() as rec:
                result = db.execute(QuerySpec(base_alias="T", base_table="t"))
        assert len(result) == 5  # 5 rows in one 256-slot block: silent
        assert rec.registry.get("engine.block.low_fill") is None

    def test_tail_excluded_from_multi_block_accounting(self):
        """Regression: a 1-row tail must not drag an otherwise-acceptable
        mean fill below the threshold.  Here mid-stream fill is 30%
        (fine) but the tail-inclusive mean is 15.5% (would have warned)."""
        db = Database(block_size=100)
        table = db.create_table(
            "t", Schema.of(k=ColumnType.INT, tag=ColumnType.INT)
        )
        for i in range(200):  # 30 matches in rows 0-99, 1 in rows 100-199
            matches = i < 30 or i == 100
            table.insert((i, 1 if matches else 0))
        spec = QuerySpec(
            base_alias="T", base_table="t", filters=(col("T.tag") == lit(1),)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = db.execute(spec)
        assert len(result) == 31

    def test_full_blocks_stay_silent(self):
        db = Database(block_size=5)
        table = db.create_table("t", Schema.of(k=ColumnType.INT))
        for i in range(5):
            table.insert((i,))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = db.execute(QuerySpec(base_alias="T", base_table="t"))
        assert len(result) == 5
