"""Unit tests for :class:`RowBlock`: views, gather, and chunking."""

import pytest

from repro.engine.block import RowBlock, blocks_to_rows, iter_blocks

LAYOUT = {"T.a": 0, "T.b": 1}
ROWS = [(1, "x"), (2, "y"), (3, "z"), (4, "w")]
COLUMNS = [[1, 2, 3, 4], ["x", "y", "z", "w"]]


class TestViews:
    def test_row_major_roundtrip(self):
        block = RowBlock.from_rows(list(ROWS), LAYOUT)
        assert len(block) == 4
        assert block.rows() == ROWS
        assert block.column(0) == [1, 2, 3, 4]

    def test_column_major_roundtrip(self):
        block = RowBlock.from_columns([list(c) for c in COLUMNS], LAYOUT)
        assert len(block) == 4
        assert block.column(1) == ["x", "y", "z", "w"]
        assert block.rows() == ROWS

    def test_column_extraction_does_not_transpose(self):
        block = RowBlock.from_rows(list(ROWS), LAYOUT)
        assert block.column(0) == [1, 2, 3, 4]
        # Only the requested column was materialized, and it's cached.
        assert block._col_cache == {0: [1, 2, 3, 4]}
        assert block.column(0) is block.column(0)


class TestTake:
    def test_row_major_gather(self):
        block = RowBlock.from_rows(list(ROWS), LAYOUT)
        taken = block.take([0, 2])
        assert taken.rows() == [(1, "x"), (3, "z")]
        assert taken.layout == LAYOUT

    def test_column_major_gather_stays_columnar(self):
        """Regression: take() on a column-major block must gather
        column-by-column, not force the full row transpose."""
        block = RowBlock.from_columns([list(c) for c in COLUMNS], LAYOUT)
        taken = block.take([1, 3])
        # The source block was never transposed to rows...
        assert block._rows is None
        # ...and the result is itself column-major (no row view yet).
        assert taken._rows is None
        assert taken._columns == [[2, 4], ["y", "w"]]
        assert len(taken) == 2
        assert taken.rows() == [(2, "y"), (4, "w")]

    def test_empty_gather(self):
        block = RowBlock.from_columns([list(c) for c in COLUMNS], LAYOUT)
        taken = block.take([])
        assert len(taken) == 0
        assert taken.rows() == []


class TestIterBlocks:
    def test_chunking_and_tail(self):
        blocks = list(iter_blocks(ROWS, LAYOUT, 3))
        assert [len(b) for b in blocks] == [3, 1]
        assert blocks_to_rows(blocks) == ROWS

    def test_empty_input(self):
        assert list(iter_blocks([], LAYOUT, 8)) == []

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            list(iter_blocks(ROWS, LAYOUT, 0))
