"""Unit tests for column types and schemas."""

import pytest

from repro.engine.errors import SchemaError
from repro.engine.types import Column, ColumnType, Schema


class TestColumnType:
    def test_int_validation(self):
        assert ColumnType.INT.validate(5) == 5
        with pytest.raises(SchemaError):
            ColumnType.INT.validate(5.0)
        with pytest.raises(SchemaError):
            ColumnType.INT.validate("5")

    def test_bool_rejected_for_int(self):
        with pytest.raises(SchemaError):
            ColumnType.INT.validate(True)

    def test_float_accepts_int_widening(self):
        assert ColumnType.FLOAT.validate(3) == 3.0
        assert isinstance(ColumnType.FLOAT.validate(3), float)

    def test_float_rejects_bool_and_str(self):
        with pytest.raises(SchemaError):
            ColumnType.FLOAT.validate(True)
        with pytest.raises(SchemaError):
            ColumnType.FLOAT.validate("3.0")

    def test_str_validation(self):
        assert ColumnType.STR.validate("hi") == "hi"
        with pytest.raises(SchemaError):
            ColumnType.STR.validate(3)


class TestColumn:
    def test_invalid_names_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)
        with pytest.raises(SchemaError):
            Column("1bad", ColumnType.INT)
        with pytest.raises(SchemaError):
            Column("has space", ColumnType.INT)


class TestSchema:
    def test_of_shorthand(self):
        schema = Schema.of(a=ColumnType.INT, b=ColumnType.STR)
        assert schema.names == ("a", "b")
        assert schema.width == 2

    def test_positions(self):
        schema = Schema.of(a=ColumnType.INT, b=ColumnType.STR)
        assert schema.position("b") == 1
        with pytest.raises(SchemaError, match="no column"):
            schema.position("c")
        assert "a" in schema
        assert "z" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a", ColumnType.INT), Column("a", ColumnType.STR)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_validate_row(self):
        schema = Schema.of(a=ColumnType.INT, b=ColumnType.FLOAT)
        assert schema.validate_row([1, 2]) == (1, 2.0)
        with pytest.raises(SchemaError):
            schema.validate_row([1])
        with pytest.raises(SchemaError):
            schema.validate_row(["x", 2.0])

    def test_row_dict(self):
        schema = Schema.of(a=ColumnType.INT, b=ColumnType.STR)
        assert schema.row_dict((1, "x")) == {"a": 1, "b": "x"}

    def test_equality_and_hash(self):
        s1 = Schema.of(a=ColumnType.INT)
        s2 = Schema.of(a=ColumnType.INT)
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != Schema.of(a=ColumnType.STR)
