"""Unit tests for the parallel block pipeline (:mod:`repro.engine.parallel`).

The integration-level guarantee -- parallel execution is byte-identical
to serial in both rows and simulated costs -- lives in
``tests/integration/test_block_equivalence.py``; this file covers the
machinery: eligibility, configuration precedence, pool lifecycle,
metrics, and failure propagation.
"""

import warnings

import pytest

from repro import obs
from repro.engine import parallel
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.parallel import (
    BACKEND_ENV,
    WORKERS_ENV,
    ChainPlan,
    ParallelBlockExecutor,
    decompose_chain,
    resolve_backend,
    resolve_workers,
    set_default_backend,
    set_default_workers,
)
from repro.engine.query import JoinSpec, QuerySpec
from repro.engine.types import ColumnType, Schema


@pytest.fixture(autouse=True)
def _clean_parallel_defaults(monkeypatch):
    """Isolate each test from CLI/env worker configuration."""
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    set_default_workers(None)
    set_default_backend(None)
    yield
    set_default_workers(None)
    set_default_backend(None)


def make_db(rows=1000, block_size=64, **kwargs):
    db = Database(block_size=block_size, **kwargs)
    table = db.create_table(
        "t", Schema.of(k=ColumnType.INT, grp=ColumnType.INT, val=ColumnType.FLOAT)
    )
    for i in range(rows):
        table.insert((i, i % 7, float(i) * 1.5))
    return db


def chain_spec(**overrides):
    defaults = dict(
        base_alias="T",
        base_table="t",
        filters=(col("T.grp") > lit(2),),  # keeps 4/7: exercises take()
        # without tripping the low-fill advisory in every test
        projection=("T.val", "T.k"),
    )
    defaults.update(overrides)
    return QuerySpec(**defaults)


class TestConfigResolution:
    def test_default_is_serial(self):
        assert resolve_workers() == 0
        assert resolve_backend() == "thread"

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        set_default_workers(4)
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 0

    def test_global_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        monkeypatch.setenv(BACKEND_ENV, "process")
        set_default_workers(4)
        set_default_backend("thread")
        assert resolve_workers() == 4
        assert resolve_backend() == "thread"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_workers() == 3
        assert resolve_backend() == "process"

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(-1)
        with pytest.raises(ValueError):
            set_default_workers(-2)
        with pytest.raises(ValueError):
            resolve_backend("greenlet")
        with pytest.raises(ValueError):
            set_default_backend("greenlet")
        monkeypatch.setenv(WORKERS_ENV, "two")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()
        monkeypatch.setenv(WORKERS_ENV, "-1")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()
        monkeypatch.setenv(BACKEND_ENV, "greenlet")
        with pytest.raises(ValueError, match=BACKEND_ENV):
            resolve_backend()

    def test_database_picks_up_global_default(self):
        set_default_workers(2)
        set_default_backend("thread")
        db = Database()
        assert db.workers == 2
        assert db.parallel_backend == "thread"

    def test_database_explicit_overrides_global(self):
        set_default_workers(2)
        with Database(workers=0) as db:
            assert db.workers == 0


class TestDecomposeChain:
    def test_scan_filter_project_chain(self, toy_db):
        from repro.engine.operators import Filter, Project, SeqScan

        scan = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        plan = Project(
            Filter(scan, col("E.salary") > lit(100.0)), ["E.name"]
        )
        chain = decompose_chain(plan)
        assert isinstance(chain, ChainPlan)
        assert chain.source is scan
        assert len(chain.stages) == 2
        assert chain.layout == {"E.name": 0}

    def test_bare_scan_is_eligible(self, toy_db):
        from repro.engine.operators import SeqScan

        scan = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        chain = decompose_chain(scan)
        assert chain is not None
        assert chain.stages == ()
        assert chain.layout is scan.layout

    def test_hash_join_is_a_probe_stage(self, toy_db):
        from repro.engine.join import HashJoin
        from repro.engine.operators import Filter, SeqScan

        left = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        right = SeqScan(toy_db.table("dept").snapshot(), "D", toy_db.counter)
        join = HashJoin(left, right, "E.deptno", "D.deptno")
        chain = decompose_chain(join)
        assert chain is not None
        assert chain.source is left
        assert chain.stages == (join,)
        # ...and under a filter the chain keeps walking through the join.
        filtered = Filter(join, col("D.dname") == lit("eng"))
        chain = decompose_chain(filtered)
        assert chain is not None
        assert chain.stages == (join, filtered)
        assert chain.layout == join.layout

    def test_aggregate_is_a_terminal_stage(self, toy_db):
        from repro.engine.aggregate import Aggregate
        from repro.engine.operators import SeqScan

        scan = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        agg = Aggregate(scan, "min", col("E.salary"), ())
        chain = decompose_chain(agg)
        assert chain is not None
        assert chain.source is scan
        assert chain.aggregate is agg
        assert chain.layout == agg.layout

    def test_index_nested_loop_join_is_not_eligible(self, toy_db):
        from repro.engine.join import IndexNestedLoopJoin
        from repro.engine.operators import SeqScan

        toy_db.table("dept").create_index("deptno")
        left = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        join = IndexNestedLoopJoin(
            left, toy_db.table("dept").snapshot(), "D", "E.deptno", "deptno"
        )
        assert decompose_chain(join) is None


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_rows_and_costs_match_serial(self, workers):
        serial = make_db(workers=0)
        result_serial = serial.execute(chain_spec())
        costs_serial = serial.counter.snapshot()

        with make_db(workers=workers) as db:
            result = db.execute(chain_spec())
            assert result.rows == result_serial.rows
            assert result.columns == result_serial.columns
            assert db.counter.snapshot() == costs_serial

    def test_process_backend_matches_serial(self):
        serial = make_db(workers=0)
        result_serial = serial.execute(chain_spec())
        costs_serial = serial.counter.snapshot()

        with make_db(workers=2, parallel_backend="process") as db:
            result = db.execute(chain_spec())
            assert result.rows == result_serial.rows
            assert db.counter.snapshot() == costs_serial

    def test_join_query_still_works_with_workers(self, toy_db):
        """An unindexed join decomposes into a probe stage and runs
        through the pool, producing the same rows as serial."""
        with Database(workers=4) as db:
            for name in ("emp", "dept"):
                src = toy_db.table(name)
                table = db.create_table(name, src.schema)
                for row in src.snapshot().row_list():
                    table.insert(row)
            spec = QuerySpec(
                base_alias="E",
                base_table="emp",
                joins=(JoinSpec("D", "dept", "E.deptno", "deptno"),),
            )
            assert len(db.execute(spec)) == 5

    def test_empty_result(self):
        with make_db(workers=2) as db:
            result = db.execute(
                chain_spec(filters=(col("T.grp") == lit(99),))
            )
            assert result.rows == []


class TestMetrics:
    def test_parallel_metrics_emitted(self):
        with make_db(workers=2) as db:
            with obs.recording() as rec:
                db.execute(chain_spec())
        reg = rec.registry
        assert reg.get("engine.parallel.queries").value == 1
        assert reg.get("engine.parallel.tasks").value == 16  # ceil(1000/64)
        assert reg.get("engine.parallel.queue_depth").value >= 1
        assert reg.get("engine.parallel.merge_wait_ms").count >= 1
        # Thread workers adopt the run's recorder via Recorder.wrap.
        assert reg.get("engine.parallel.worker_busy_ms").count >= 1

    def test_serial_emits_no_parallel_metrics(self):
        db = make_db(workers=0)
        with obs.recording() as rec:
            db.execute(chain_spec())
        assert rec.registry.get("engine.parallel.queries") is None


class TestFailurePropagation:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_worker_exception_propagates(self, workers):
        with make_db(workers=workers) as db:
            bad = chain_spec(
                filters=((col("T.val") / lit(0.0)) > lit(1.0),)
            )
            with pytest.raises(ZeroDivisionError):
                db.execute(bad)
            # The database (and its pool) survive a failed query.
            result = db.execute(chain_spec())
            assert len(result) > 0

    def test_process_backend_exception_propagates(self):
        with make_db(workers=2, parallel_backend="process") as db:
            bad = chain_spec(
                filters=((col("T.val") / lit(0.0)) > lit(1.0),)
            )
            with pytest.raises(ZeroDivisionError):
                db.execute(bad)
            assert len(db.execute(chain_spec())) > 0


class TestPoolLifecycle:
    def test_close_is_idempotent(self):
        db = make_db(workers=2)
        db.execute(chain_spec())
        db.close()
        db.close()

    def test_close_without_use(self):
        Database(workers=2).close()

    def test_executor_validates_arguments(self):
        with pytest.raises(ValueError):
            ParallelBlockExecutor(0)
        with pytest.raises(ValueError):
            ParallelBlockExecutor(2, backend="greenlet")

    def test_pool_is_lazy(self):
        executor = ParallelBlockExecutor(2)
        assert executor._pool is None

    def test_abandoned_iteration_cancels_pending(self):
        """Dropping the merge iterator mid-stream must not deadlock or
        leak; the generator's finally cancels unconsumed futures."""
        with make_db(workers=2, block_size=8) as db:
            chain = parallel.decompose_chain(
                db._source(chain_spec(), "T", "t", {}, {})
            )
            iterator = db._parallel_executor().execute(
                chain, 8, db.counter
            )
            next(iterator)
            iterator.close()
            # Pool still serves subsequent queries.
            assert len(db.execute(chain_spec())) > 0


class TestLowFillInteraction:
    def test_parallel_path_respects_tail_exclusion(self):
        """A short result through the pool must not trip the low-fill
        warning (the tail block is excluded on the merge side too)."""
        with Database(block_size=256, workers=2) as db:
            table = db.create_table("t", Schema.of(k=ColumnType.INT))
            for i in range(5):
                table.insert((i,))
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                result = db.execute(QuerySpec(base_alias="T", base_table="t"))
            assert len(result) == 5


def make_join_db(facts=300, dims=10, block_size=32, **kwargs):
    """Fact + unindexed dim: join specs plan as HashJoin probe chains."""
    db = Database(block_size=block_size, **kwargs)
    fact = db.create_table(
        "fact", Schema.of(k=ColumnType.INT, grp=ColumnType.INT, val=ColumnType.FLOAT)
    )
    dim = db.create_table(
        "dim", Schema.of(k=ColumnType.INT, label=ColumnType.STR)
    )
    for i in range(facts):
        fact.insert((i % dims, i % 5, float(i) * 0.25))
    for i in range(dims):
        dim.insert((i, f"d{i}"))
    return db


def join_agg_spec(func="sum"):
    from repro.engine.query import AggregateSpec

    return QuerySpec(
        base_alias="F",
        base_table="fact",
        joins=(JoinSpec("D", "dim", "F.k", "k"),),
        filters=(col("F.grp") < lit(4),),
        aggregate=AggregateSpec(
            func=func, value=col("F.val"), group_by=("D.label",)
        ),
    )


class TestJoinAndAggregateParallel:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("func", ["sum", "avg", "count", "min", "max"])
    def test_join_aggregate_matches_serial(self, backend, func):
        serial = make_join_db(workers=0)
        expected = serial.execute(join_agg_spec(func))
        costs = serial.counter.snapshot()

        with make_join_db(workers=2, parallel_backend=backend) as db:
            result = db.execute(join_agg_spec(func))
            assert result.rows == expected.rows
            assert db.counter.snapshot() == costs

    def test_join_and_agg_metrics_emitted(self):
        with make_join_db(workers=2) as db:
            with obs.recording() as rec:
                db.execute(join_agg_spec())
        reg = rec.registry
        assert reg.get("engine.parallel.queries").value == 1
        assert reg.get("engine.parallel.join.plans").value == 1
        assert reg.get("engine.parallel.join.probe_blocks").value >= 1
        assert reg.get("engine.parallel.join.rows_out").value > 0
        assert reg.get("engine.parallel.agg.plans").value == 1
        assert reg.get("engine.parallel.agg.partitions").value == 2
        assert 1 <= reg.get("engine.parallel.agg.fold_tasks").value <= 2
        # Per-operator counts replayed at the merge equal serial totals.
        serial = make_join_db(workers=0)
        with obs.recording() as serial_rec:
            serial.execute(join_agg_spec())
        for name in (
            "engine.join.hash.probes",
            "engine.join.hash.rows_out",
            "engine.aggregate.rows_in",
            "engine.aggregate.groups_out",
        ):
            assert reg.get(name).value == serial_rec.registry.get(name).value

    def test_process_backend_spools_snapshot(self):
        with make_join_db(workers=2, parallel_backend="process") as db:
            with obs.recording() as rec:
                db.execute(join_agg_spec())
            assert rec.registry.get(
                "engine.parallel.join.snapshot_bytes"
            ).count == 1
            # The spool file is removed once the query drains.
            assert not db._parallel_executor()._spools

    def test_scalar_aggregate_empty_input(self):
        from repro.engine.query import AggregateSpec

        with make_join_db(workers=2) as db:
            spec = QuerySpec(
                base_alias="F",
                base_table="fact",
                filters=(col("F.grp") == lit(99),),
                aggregate=AggregateSpec(func="sum", value=col("F.val")),
            )
            result = db.execute(spec)
            assert result.rows == [(None,)]


class TestFallback:
    def test_foreign_stage_falls_back_to_serial(self):
        """A chain that decomposes but has no parallel kernel must run
        serially and count the fallback, never error."""
        from repro.engine.operators import Filter, SeqScan

        class ForeignFilter(Filter):
            """Decomposes (isinstance passes) but prepare() rejects it."""

        with make_db(workers=2) as db:
            scan = SeqScan(db.table("t").snapshot(), "T", db.counter)
            plan = ForeignFilter(scan, col("T.grp") > lit(2))
            with obs.recording() as rec:
                rows = db._pull(plan)
            assert len(rows) > 0
            assert rec.registry.get("engine.parallel.fallback").value == 1
            assert rec.registry.get(
                "engine.parallel.fallback.unsupported_stage"
            ).value == 1
            assert rec.registry.get("engine.parallel.queries") is None

    def test_unpicklable_plan_falls_back_on_process_backend(self):
        class Opaque:  # local class: pickle cannot resolve it by name
            def __eq__(self, other):
                return False

        with make_db(workers=2, parallel_backend="process") as db:
            spec = chain_spec(filters=(col("T.k") == lit(Opaque()),))
            with obs.recording() as rec:
                result = db.execute(spec)
            assert result.rows == []
            assert rec.registry.get("engine.parallel.fallback").value == 1
            assert rec.registry.get(
                "engine.parallel.fallback.unpicklable_plan"
            ).value == 1

    def test_fallback_reason_names_are_stable(self):
        """The reason suffixes are part of the metric catalog; renaming
        one silently breaks dashboards keyed on the full name."""
        from repro.engine.parallel import ParallelUnsupported

        exc = ParallelUnsupported("nope", reason="unpicklable_snapshot")
        assert exc.reason == "unpicklable_snapshot"
        # Untagged raises still land in a catalogued bucket.
        assert ParallelUnsupported("nope").reason == "unsupported"

    def test_fallback_charges_match_serial(self):
        class Opaque:
            def __eq__(self, other):
                return False

        serial = make_db(workers=0)
        spec = chain_spec(filters=(col("T.k") == lit(Opaque()),))
        serial.execute(spec)
        with make_db(workers=2, parallel_backend="process") as db:
            db.execute(spec)
            assert db.counter.snapshot() == serial.counter.snapshot()
