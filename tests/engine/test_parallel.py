"""Unit tests for the parallel block pipeline (:mod:`repro.engine.parallel`).

The integration-level guarantee -- parallel execution is byte-identical
to serial in both rows and simulated costs -- lives in
``tests/integration/test_block_equivalence.py``; this file covers the
machinery: eligibility, configuration precedence, pool lifecycle,
metrics, and failure propagation.
"""

import warnings

import pytest

from repro import obs
from repro.engine import parallel
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.parallel import (
    BACKEND_ENV,
    WORKERS_ENV,
    ChainPlan,
    ParallelBlockExecutor,
    decompose_chain,
    resolve_backend,
    resolve_workers,
    set_default_backend,
    set_default_workers,
)
from repro.engine.query import JoinSpec, QuerySpec
from repro.engine.types import ColumnType, Schema


@pytest.fixture(autouse=True)
def _clean_parallel_defaults(monkeypatch):
    """Isolate each test from CLI/env worker configuration."""
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    set_default_workers(None)
    set_default_backend(None)
    yield
    set_default_workers(None)
    set_default_backend(None)


def make_db(rows=1000, block_size=64, **kwargs):
    db = Database(block_size=block_size, **kwargs)
    table = db.create_table(
        "t", Schema.of(k=ColumnType.INT, grp=ColumnType.INT, val=ColumnType.FLOAT)
    )
    for i in range(rows):
        table.insert((i, i % 7, float(i) * 1.5))
    return db


def chain_spec(**overrides):
    defaults = dict(
        base_alias="T",
        base_table="t",
        filters=(col("T.grp") > lit(2),),  # keeps 4/7: exercises take()
        # without tripping the low-fill advisory in every test
        projection=("T.val", "T.k"),
    )
    defaults.update(overrides)
    return QuerySpec(**defaults)


class TestConfigResolution:
    def test_default_is_serial(self):
        assert resolve_workers() == 0
        assert resolve_backend() == "thread"

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        set_default_workers(4)
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 0

    def test_global_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        monkeypatch.setenv(BACKEND_ENV, "process")
        set_default_workers(4)
        set_default_backend("thread")
        assert resolve_workers() == 4
        assert resolve_backend() == "thread"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_workers() == 3
        assert resolve_backend() == "process"

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(-1)
        with pytest.raises(ValueError):
            set_default_workers(-2)
        with pytest.raises(ValueError):
            resolve_backend("greenlet")
        with pytest.raises(ValueError):
            set_default_backend("greenlet")
        monkeypatch.setenv(WORKERS_ENV, "two")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()
        monkeypatch.setenv(WORKERS_ENV, "-1")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()
        monkeypatch.setenv(BACKEND_ENV, "greenlet")
        with pytest.raises(ValueError, match=BACKEND_ENV):
            resolve_backend()

    def test_database_picks_up_global_default(self):
        set_default_workers(2)
        set_default_backend("thread")
        db = Database()
        assert db.workers == 2
        assert db.parallel_backend == "thread"

    def test_database_explicit_overrides_global(self):
        set_default_workers(2)
        with Database(workers=0) as db:
            assert db.workers == 0


class TestDecomposeChain:
    def test_scan_filter_project_chain(self, toy_db):
        from repro.engine.operators import Filter, Project, SeqScan

        scan = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        plan = Project(
            Filter(scan, col("E.salary") > lit(100.0)), ["E.name"]
        )
        chain = decompose_chain(plan)
        assert isinstance(chain, ChainPlan)
        assert chain.source is scan
        assert len(chain.stages) == 2
        assert chain.layout == {"E.name": 0}

    def test_bare_scan_is_eligible(self, toy_db):
        from repro.engine.operators import SeqScan

        scan = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        chain = decompose_chain(scan)
        assert chain is not None
        assert chain.stages == ()
        assert chain.layout is scan.layout

    def test_join_is_not_eligible(self, toy_db):
        from repro.engine.join import HashJoin
        from repro.engine.operators import Filter, SeqScan

        left = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        right = SeqScan(toy_db.table("dept").snapshot(), "D", toy_db.counter)
        join = HashJoin(left, right, "E.deptno", "D.deptno")
        assert decompose_chain(join) is None
        # ...even under a filter: the chain walk stops at the join.
        assert decompose_chain(
            Filter(join, col("D.dname") == lit("eng"))
        ) is None

    def test_aggregate_is_not_eligible(self, toy_db):
        from repro.engine.aggregate import Aggregate
        from repro.engine.operators import SeqScan

        scan = SeqScan(toy_db.table("emp").snapshot(), "E", toy_db.counter)
        agg = Aggregate(scan, "min", col("E.salary"), ())
        assert decompose_chain(agg) is None


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_rows_and_costs_match_serial(self, workers):
        serial = make_db(workers=0)
        result_serial = serial.execute(chain_spec())
        costs_serial = serial.counter.snapshot()

        with make_db(workers=workers) as db:
            result = db.execute(chain_spec())
            assert result.rows == result_serial.rows
            assert result.columns == result_serial.columns
            assert db.counter.snapshot() == costs_serial

    def test_process_backend_matches_serial(self):
        serial = make_db(workers=0)
        result_serial = serial.execute(chain_spec())
        costs_serial = serial.counter.snapshot()

        with make_db(workers=2, parallel_backend="process") as db:
            result = db.execute(chain_spec())
            assert result.rows == result_serial.rows
            assert db.counter.snapshot() == costs_serial

    def test_join_query_still_works_with_workers(self, toy_db):
        """Joins aren't chain-eligible; the planner silently stays serial."""
        with Database(workers=4) as db:
            for name in ("emp", "dept"):
                src = toy_db.table(name)
                table = db.create_table(name, src.schema)
                for row in src.snapshot().row_list():
                    table.insert(row)
            spec = QuerySpec(
                base_alias="E",
                base_table="emp",
                joins=(JoinSpec("D", "dept", "E.deptno", "deptno"),),
            )
            assert len(db.execute(spec)) == 5

    def test_empty_result(self):
        with make_db(workers=2) as db:
            result = db.execute(
                chain_spec(filters=(col("T.grp") == lit(99),))
            )
            assert result.rows == []


class TestMetrics:
    def test_parallel_metrics_emitted(self):
        with make_db(workers=2) as db:
            with obs.recording() as rec:
                db.execute(chain_spec())
        reg = rec.registry
        assert reg.get("engine.parallel.queries").value == 1
        assert reg.get("engine.parallel.tasks").value == 16  # ceil(1000/64)
        assert reg.get("engine.parallel.queue_depth").value >= 1
        assert reg.get("engine.parallel.merge_wait_ms").count >= 1
        # Thread workers adopt the run's recorder via Recorder.wrap.
        assert reg.get("engine.parallel.worker_busy_ms").count >= 1

    def test_serial_emits_no_parallel_metrics(self):
        db = make_db(workers=0)
        with obs.recording() as rec:
            db.execute(chain_spec())
        assert rec.registry.get("engine.parallel.queries") is None


class TestFailurePropagation:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_worker_exception_propagates(self, workers):
        with make_db(workers=workers) as db:
            bad = chain_spec(
                filters=((col("T.val") / lit(0.0)) > lit(1.0),)
            )
            with pytest.raises(ZeroDivisionError):
                db.execute(bad)
            # The database (and its pool) survive a failed query.
            result = db.execute(chain_spec())
            assert len(result) > 0

    def test_process_backend_exception_propagates(self):
        with make_db(workers=2, parallel_backend="process") as db:
            bad = chain_spec(
                filters=((col("T.val") / lit(0.0)) > lit(1.0),)
            )
            with pytest.raises(ZeroDivisionError):
                db.execute(bad)
            assert len(db.execute(chain_spec())) > 0


class TestPoolLifecycle:
    def test_close_is_idempotent(self):
        db = make_db(workers=2)
        db.execute(chain_spec())
        db.close()
        db.close()

    def test_close_without_use(self):
        Database(workers=2).close()

    def test_executor_validates_arguments(self):
        with pytest.raises(ValueError):
            ParallelBlockExecutor(0)
        with pytest.raises(ValueError):
            ParallelBlockExecutor(2, backend="greenlet")

    def test_pool_is_lazy(self):
        executor = ParallelBlockExecutor(2)
        assert executor._pool is None

    def test_abandoned_iteration_cancels_pending(self):
        """Dropping the merge iterator mid-stream must not deadlock or
        leak; the generator's finally cancels unconsumed futures."""
        with make_db(workers=2, block_size=8) as db:
            chain = parallel.decompose_chain(
                db._source(chain_spec(), "T", "t", {}, {})
            )
            iterator = db._parallel_executor().execute(
                chain, 8, db.counter
            )
            next(iterator)
            iterator.close()
            # Pool still serves subsequent queries.
            assert len(db.execute(chain_spec())) > 0


class TestLowFillInteraction:
    def test_parallel_path_respects_tail_exclusion(self):
        """A short result through the pool must not trip the low-fill
        warning (the tail block is excluded on the merge side too)."""
        with Database(block_size=256, workers=2) as db:
            table = db.create_table("t", Schema.of(k=ColumnType.INT))
            for i in range(5):
                table.insert((i,))
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                result = db.execute(QuerySpec(base_alias="T", base_table="t"))
            assert len(result) == 5
