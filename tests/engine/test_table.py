"""Unit tests for MVCC-lite tables, histories, and snapshots."""

import pytest

from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.table import Table
from repro.engine.types import ColumnType, Schema


@pytest.fixture
def table():
    return Table("t", Schema.of(k=ColumnType.INT, v=ColumnType.STR))


class TestModifications:
    def test_insert_assigns_lsns(self, table):
        e1 = table.insert((1, "a"))
        e2 = table.insert((2, "b"))
        assert (e1.lsn, e2.lsn) == (1, 2)
        assert table.current_lsn == 2
        assert table.live_count == 2

    def test_insert_validates_schema(self, table):
        with pytest.raises(SchemaError):
            table.insert(("not-int", "a"))

    def test_delete(self, table):
        table.insert((1, "a"))
        event = table.delete_rid(0)
        assert event.kind == "delete"
        assert event.old_values == (1, "a")
        assert table.live_count == 0

    def test_delete_dead_row_rejected(self, table):
        table.insert((1, "a"))
        table.delete_rid(0)
        with pytest.raises(ExecutionError, match="not live"):
            table.delete_rid(0)

    def test_delete_out_of_range(self, table):
        with pytest.raises(ExecutionError, match="out of range"):
            table.delete_rid(5)

    def test_update_creates_new_version(self, table):
        table.insert((1, "a"))
        event = table.update_rid(0, {"v": "z"})
        assert event.kind == "update"
        assert event.old_values == (1, "a")
        assert event.new_values == (1, "z")
        assert table.live_count == 1
        assert table.version_count() == 2
        assert list(table.live_rows()) == [(1, "z")]

    def test_update_requires_changes(self, table):
        table.insert((1, "a"))
        with pytest.raises(ExecutionError, match="no changed columns"):
            table.update_rid(0, {})

    def test_update_validates_types(self, table):
        table.insert((1, "a"))
        with pytest.raises(SchemaError):
            table.update_rid(0, {"k": "oops"})

    def test_history_records_everything(self, table):
        table.insert((1, "a"))
        table.update_rid(0, {"v": "b"})
        table.delete_rid(1)
        kinds = [e.kind for e in table.history]
        assert kinds == ["insert", "update", "delete"]

    def test_events_between(self, table):
        for i in range(5):
            table.insert((i, "x"))
        window = table.events_between(1, 4)
        assert [e.lsn for e in window] == [2, 3, 4]

    def test_find_rids(self, table):
        table.insert((1, "a"))
        table.insert((2, "b"))
        table.insert((3, "a"))
        rids = table.find_rids(lambda row: row[1] == "a")
        assert rids == [0, 2]


class TestSnapshots:
    def test_snapshot_sees_past_state(self, table):
        table.insert((1, "a"))
        lsn = table.current_lsn
        table.insert((2, "b"))
        table.update_rid(0, {"v": "z"})
        old = table.snapshot(lsn)
        assert sorted(old.rows()) == [(1, "a")]
        now = table.snapshot()
        assert sorted(now.rows()) == [(1, "z"), (2, "b")]

    def test_snapshot_counts_cached(self, table):
        table.insert((1, "a"))
        snap = table.snapshot()
        assert snap.count() == 1
        table.insert((2, "b"))  # snapshot stays pinned at its LSN
        assert snap.count() == 1

    def test_snapshot_of_deleted_row(self, table):
        table.insert((1, "a"))
        lsn = table.current_lsn
        table.delete_rid(0)
        assert list(table.snapshot(lsn).rows()) == [(1, "a")]
        assert list(table.snapshot().rows()) == []

    def test_snapshot_lsn_bounds(self, table):
        with pytest.raises(ExecutionError):
            table.snapshot(5)
        with pytest.raises(ExecutionError):
            table.snapshot(-1)

    def test_snapshot_at_zero_is_empty(self, table):
        table.insert((1, "a"))
        assert list(table.snapshot(0).rows()) == []

    def test_column_values(self, table):
        table.insert((1, "a"))
        table.insert((2, "b"))
        assert sorted(table.snapshot().column_values("k")) == [1, 2]


class TestIndexedSnapshots:
    def test_index_lookup_current(self, table):
        table.create_index("k")
        table.insert((1, "a"))
        table.insert((1, "b"))
        table.insert((2, "c"))
        snap = table.snapshot()
        assert sorted(snap.lookup("k", 1)) == [(1, "a"), (1, "b")]
        assert snap.lookup("k", 9) == []

    def test_index_lookup_historical_is_exact(self, table):
        """Version-aware indexes serve any snapshot LSN exactly."""
        table.create_index("k")
        table.insert((1, "a"))
        lsn = table.current_lsn
        table.update_rid(0, {"v": "z"})
        table.insert((1, "extra"))
        old = table.snapshot(lsn)
        assert old.lookup("k", 1) == [(1, "a")]
        now = table.snapshot()
        assert sorted(now.lookup("k", 1)) == [(1, "extra"), (1, "z")]

    def test_index_backfill_covers_existing_versions(self, table):
        table.insert((1, "a"))
        lsn = table.current_lsn
        table.delete_rid(0)
        table.create_index("k")  # created after the delete
        assert table.snapshot(lsn).lookup("k", 1) == [(1, "a")]
        assert table.snapshot().lookup("k", 1) == []

    def test_lookup_without_index_raises(self, table):
        table.insert((1, "a"))
        with pytest.raises(LookupError):
            table.snapshot().lookup("v", "a")
        assert not table.snapshot().has_index("v")

    def test_duplicate_index_rejected(self, table):
        table.create_index("k")
        with pytest.raises(SchemaError, match="already exists"):
            table.create_index("k")

    def test_index_on_prefers_hash(self, table):
        sorted_idx = table.create_index("k", kind="sorted")
        hash_idx = table.create_index("k", kind="hash", name="k_hash")
        assert table.index_on("k") is hash_idx
        assert table.index_on("v") is None
        assert sorted_idx.name == "t_k_sorted"

    def test_unknown_index_kind(self, table):
        with pytest.raises(SchemaError, match="unknown index kind"):
            table.create_index("k", kind="btree")


class TestCostCharging:
    def test_modifications_charge_counter(self, table):
        before = table.counter.row_writes
        table.insert((1, "a"))
        table.update_rid(0, {"v": "b"})
        assert table.counter.row_writes == before + 3  # 1 insert + 2 update
