"""Unit tests for the expression/predicate layer."""

import pytest

from repro.engine.errors import SchemaError
from repro.engine.expr import (
    and_,
    col,
    lit,
    not_,
    or_,
    resolve_column,
)

LAYOUT = {"E.a": 0, "E.b": 1, "D.a": 2}


def run(expr, row, layout=None):
    return expr.compile(layout or LAYOUT)(row)


class TestColumnResolution:
    def test_qualified_exact(self):
        assert resolve_column("E.b", LAYOUT) == 1

    def test_bare_unambiguous(self):
        assert resolve_column("b", LAYOUT) == 1

    def test_bare_ambiguous_rejected(self):
        with pytest.raises(SchemaError, match="ambiguous"):
            resolve_column("a", LAYOUT)

    def test_unknown_rejected(self):
        with pytest.raises(SchemaError, match="unknown column"):
            resolve_column("zzz", LAYOUT)


class TestComparisons:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            (col("E.a") == lit(5), True),
            (col("E.a") != lit(5), False),
            (col("E.a") < lit(6), True),
            (col("E.a") <= lit(5), True),
            (col("E.a") > lit(5), False),
            (col("E.a") >= lit(5), True),
        ],
    )
    def test_operators(self, expr, expected):
        assert run(expr, (5, "x", 9)) is expected

    def test_column_to_column(self):
        expr = col("E.a") == col("D.a")
        assert run(expr, (5, "x", 5))
        assert not run(expr, (5, "x", 6))

    def test_equijoin_detection(self):
        join = col("E.a") == col("D.a")
        assert join.equijoin_columns() == ("E.a", "D.a")
        assert (col("E.a") == lit(5)).equijoin_columns() is None
        assert (col("E.a") < col("D.a")).equijoin_columns() is None

    def test_string_comparison(self):
        assert run(col("E.b") == lit("x"), (5, "x", 9))


class TestArithmetic:
    def test_operations(self):
        row = (6, "x", 3)
        assert run(col("E.a") + col("D.a"), row) == 9
        assert run(col("E.a") - col("D.a"), row) == 3
        assert run(col("E.a") * lit(2), row) == 12
        assert run(col("E.a") / col("D.a"), row) == pytest.approx(2.0)

    def test_composition(self):
        expr = (col("E.a") + lit(1)) * lit(10) >= lit(70)
        assert run(expr, (6, "x", 3))
        assert not run(expr, (5, "x", 3))


class TestBooleans:
    def test_and(self):
        expr = and_(col("E.a") > lit(1), col("D.a") > lit(1))
        assert run(expr, (2, "x", 2))
        assert not run(expr, (2, "x", 0))

    def test_or(self):
        expr = or_(col("E.a") > lit(10), col("D.a") > lit(1))
        assert run(expr, (2, "x", 2))
        assert not run(expr, (2, "x", 0))

    def test_not(self):
        expr = not_(col("E.a") == lit(5))
        assert not run(expr, (5, "x", 0))
        assert run(expr, (6, "x", 0))

    def test_single_operand_passthrough(self):
        base = col("E.a") == lit(5)
        assert and_(base) is base
        assert or_(base) is base

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            and_()
        with pytest.raises(SchemaError):
            or_()


class TestReferences:
    def test_references_collects_columns(self):
        expr = and_(col("E.a") == col("D.a"), col("E.b") == lit("x"))
        assert expr.references() == frozenset({"E.a", "D.a", "E.b"})

    def test_const_has_no_references(self):
        assert lit(5).references() == frozenset()

    def test_not_references(self):
        assert not_(col("E.a") == lit(1)).references() == frozenset({"E.a"})
