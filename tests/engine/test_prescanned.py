"""PrescannedRows: source-scan CPU charged upstream, not per consumer.

The shared-scan coordinator splits a delta window once and fans the rows
to N views; wrapping them in ``PrescannedRows`` must make the substituted
``RowSource`` (serial and parallel paths both) skip exactly the per-row
``tuple_cpu`` scan charge -- and nothing else -- while producing
identical rows.
"""

import pytest

from repro.engine.costmodel import OperationCounter
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.operators import PrescannedRows, RowSource
from repro.engine.query import QuerySpec
from repro.engine.types import ColumnType, Schema

ROWS = [(i, i % 7) for i in range(40)]
NAMES = ("k", "v")


class TestRowSource:
    def test_plain_rows_charge_tuple_cpu(self):
        counter = OperationCounter()
        source = RowSource(ROWS, NAMES, "T", counter)
        assert list(source) == ROWS
        assert counter.snapshot()["tuple_cpu"] == len(ROWS)

    def test_prescanned_rows_skip_the_charge(self):
        counter = OperationCounter()
        source = RowSource(PrescannedRows(ROWS), NAMES, "T", counter)
        assert source.precharged
        assert list(source) == ROWS
        assert counter.snapshot()["tuple_cpu"] == 0

    def test_prescanned_blocks_skip_the_charge(self):
        counter = OperationCounter()
        source = RowSource(PrescannedRows(ROWS), NAMES, "T", counter)
        out = [row for block in source.blocks(8) for row in block.rows()]
        assert out == ROWS
        assert counter.snapshot()["tuple_cpu"] == 0

    def test_prescanned_rows_still_schema_checked(self):
        counter = OperationCounter()
        from repro.engine.errors import SchemaError

        with pytest.raises(SchemaError):
            RowSource(PrescannedRows([(1, 2, 3)]), NAMES, "T", counter)


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    table = db.create_table("base", Schema.of(k=ColumnType.INT, v=ColumnType.INT))
    for row in ROWS:
        table.insert(row)
    return db


SPEC = QuerySpec(
    base_alias="B",
    base_table="base",
    filters=(col("B.v") < lit(5),),
    projection=("B.k",),
)


@pytest.mark.parametrize("workers", [0, 2])
def test_substituted_query_discount_is_exactly_the_scan(workers):
    """Same query, same rows: prescanned costs exactly len(rows) less
    tuple_cpu, identical otherwise -- serial and parallel paths agree."""
    db = make_db(block_size=8, workers=workers)
    sub = [row for row in ROWS if row[1] < 99]  # all rows, plain list

    before = db.counter.snapshot()
    plain = db.execute(SPEC, substitutions={"B": sub})
    mid = db.counter.snapshot()
    pre = db.execute(SPEC, substitutions={"B": PrescannedRows(sub)})
    after = db.counter.snapshot()

    assert pre.rows == plain.rows
    plain_charges = {f: mid[f] - before[f] for f in mid}
    pre_charges = {f: after[f] - mid[f] for f in after}
    assert (
        plain_charges["tuple_cpu"] - pre_charges["tuple_cpu"] == len(sub)
    )
    for field in plain_charges:
        if field != "tuple_cpu":
            assert pre_charges[field] == plain_charges[field], field


def test_parallel_matches_serial_for_prescanned():
    """The charge-on-merge parallel path backs the prepaid scan out of its
    worker tallies, landing on the same totals as serial execution."""
    serial_db = make_db(block_size=8, workers=0)
    parallel_db = make_db(block_size=8, workers=2)
    rows = PrescannedRows(ROWS)

    before = serial_db.counter.snapshot()
    serial = serial_db.execute(SPEC, substitutions={"B": rows})
    serial_charges = {
        f: v - before[f] for f, v in serial_db.counter.snapshot().items()
    }

    before = parallel_db.counter.snapshot()
    parallel = parallel_db.execute(SPEC, substitutions={"B": rows})
    parallel_charges = {
        f: v - before[f] for f, v in parallel_db.counter.snapshot().items()
    }

    assert parallel.rows == serial.rows
    assert parallel_charges == serial_charges
