"""Shared fixtures for the test suite.

Heavy fixtures (TPC-R databases, calibrated cost curves) are session-scoped
and built at a tiny scale factor so the whole suite stays fast; tests that
mutate a database request the function-scoped variants.
"""

from __future__ import annotations

import os

import pytest

from repro.core.costfuncs import LinearCost
from repro.core.problem import ProblemInstance
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.engine.types import ColumnType, Schema
from repro.ivm.view import MaterializedView
from repro.tpcr.gen import load_tpcr
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater

#: Tiny scale for tests: partsupp 1600 rows, supplier 20 rows.
TEST_SCALE = 0.002


def pytest_report_header(config):
    """Make the execution mode visible in CI logs: the REPRO_WORKERS leg
    runs every Database in the suite through the parallel block pipeline."""
    workers = os.environ.get("REPRO_WORKERS", "").strip() or "0 (serial)"
    backend = os.environ.get("REPRO_PARALLEL_BACKEND", "").strip() or "thread"
    return f"repro engine: default workers={workers}, backend={backend}"


def make_paper_spec() -> QuerySpec:
    """The paper's 4-way MIN view query."""
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        joins=(
            JoinSpec("S", "supplier", "PS.suppkey", "suppkey"),
            JoinSpec("N", "nation", "S.nationkey", "nationkey"),
            JoinSpec("R", "region", "N.regionkey", "regionkey"),
        ),
        filters=(col("R.name") == lit("MIDDLE EAST"),),
        aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
    )


def make_tpcr_db(scale: float = TEST_SCALE, seed: int = 42) -> Database:
    """A freshly loaded TPC-R database with the paper's physical design."""
    db = Database()
    load_tpcr(db, scale=scale, seed=seed)
    db.table("supplier").create_index("suppkey")
    db.table("nation").create_index("nationkey")
    db.table("region").create_index("regionkey")
    return db


@pytest.fixture
def tpcr_db() -> Database:
    """Function-scoped TPC-R database (mutate freely)."""
    return make_tpcr_db()


@pytest.fixture
def paper_view(tpcr_db) -> MaterializedView:
    """The paper's MIN view over a fresh TPC-R database."""
    return MaterializedView("paper_view", tpcr_db, make_paper_spec())


@pytest.fixture
def updaters(paper_view):
    """(PartSupp, Supplier) update streams bound to the view's database."""
    db = paper_view.database
    return (
        PartSuppCostUpdater(db.table("partsupp"), seed=11),
        SupplierNationUpdater(db.table("supplier"), seed=12),
    )


@pytest.fixture
def toy_db() -> Database:
    """A tiny two-table database for engine unit tests."""
    db = Database()
    emp = db.create_table(
        "emp",
        Schema.of(
            empno=ColumnType.INT,
            name=ColumnType.STR,
            deptno=ColumnType.INT,
            salary=ColumnType.FLOAT,
        ),
    )
    dept = db.create_table(
        "dept",
        Schema.of(deptno=ColumnType.INT, dname=ColumnType.STR),
    )
    for row in [
        (1, "alice", 10, 100.0),
        (2, "bob", 10, 200.0),
        (3, "carol", 20, 300.0),
        (4, "dave", 20, 150.0),
        (5, "erin", 30, 250.0),
    ]:
        emp.insert(row)
    for row in [(10, "eng"), (20, "sales"), (30, "ops")]:
        dept.insert(row)
    return db


@pytest.fixture
def linear_problem() -> ProblemInstance:
    """A small two-table instance with asymmetric linear costs."""
    cheap = LinearCost(slope=0.25)
    batchy = LinearCost(slope=0.1, setup=5.0)
    return ProblemInstance(
        [batchy, cheap], limit=12.0, arrivals=[(1, 1)] * 60
    )
