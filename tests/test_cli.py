"""Tests for the command-line interface."""

import urllib.request

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestSqlCommand:
    def test_query_executes(self, capsys):
        code = main(
            [
                "sql",
                "SELECT COUNT(*) FROM supplier S",
                "--scale", "0.002",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "20" in out  # 20 suppliers at SF 0.002
        assert "simulated cost" in out

    def test_explain(self, capsys):
        code = main(
            [
                "sql",
                "SELECT * FROM partsupp PS, supplier S "
                "WHERE PS.suppkey = S.suppkey",
                "--scale", "0.002",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SeqScan(partsupp" in out
        assert "IndexNestedLoopJoin(supplier" in out

    def test_sql_error_reported(self, capsys):
        code = main(["sql", "SELECT FROM nothing", "--scale", "0.002"])
        err = capsys.readouterr().err
        assert code == 1
        assert "SQL error" in err

    def test_max_rows_truncation(self, capsys):
        code = main(
            [
                "sql",
                "SELECT PS.partkey FROM partsupp PS",
                "--scale", "0.002",
                "--max-rows", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "more rows" in out


class TestExplainCommand:
    QUERY = (
        "SELECT MIN(PS.supplycost) FROM partsupp PS, supplier S "
        "WHERE PS.suppkey = S.suppkey"
    )

    def test_plain_explain_prints_plan(self, capsys):
        code = main(["explain", self.QUERY, "--scale", "0.002"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SeqScan(partsupp" in out
        assert "EXPLAIN ANALYZE" not in out

    def test_analyze_prints_profile_tree(self, capsys):
        code = main(["explain", self.QUERY, "--scale", "0.002", "--analyze"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("EXPLAIN ANALYZE")
        assert "SeqScan(partsupp AS PS)" in out
        assert "IndexNestedLoopJoin(supplier" in out
        assert "Aggregate(MIN" in out
        assert "rows=" in out and "sim=" in out and "wall=" in out
        assert out.strip().splitlines()[-1].startswith("total: sim=")

    def test_sql_error_reported(self, capsys):
        code = main(["explain", "SELECT FROM nothing", "--scale", "0.002"])
        assert code == 1
        assert "SQL error" in capsys.readouterr().err


class TestProfileFlag:
    def test_profile_writes_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "profiles.jsonl"
        code = main(
            [
                "--profile", str(path),
                "explain",
                "SELECT COUNT(*) FROM supplier S",
                "--scale", "0.002",
                "--analyze",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert f"wrote 1 query profiles to {path}" in captured.err
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        profile = json.loads(lines[0])
        assert profile["query"] == "supplier → COUNT"
        assert profile["rows"] == 1
        assert profile["sim_ms"] > 0
        assert profile["root"]["op"] == "query"
        kinds = {child["op"] for child in profile["root"]["children"]}
        assert "aggregate" in kinds

    def test_profile_restores_previous_sink(self, tmp_path):
        from repro.obs import attrib

        assert not attrib.sink_active()
        main(
            [
                "--profile", str(tmp_path / "p.jsonl"),
                "explain",
                "SELECT COUNT(*) FROM supplier S",
                "--scale", "0.002",
            ]
        )
        assert not attrib.sink_active()

    def test_unwritable_profile_destination_fails_fast(self, tmp_path, capsys):
        code = main(
            [
                "--profile", str(tmp_path / "missing-dir" / "p.jsonl"),
                "explain",
                "SELECT COUNT(*) FROM supplier S",
                "--scale", "0.002",
            ]
        )
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestWhyCommand:
    def test_sample_run_renders_trail(self, capsys):
        code = main(["why", "--policy", "online", "--horizon", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("decision trail: ")
        assert "ONLINE" in out
        assert "backlog" in out and "rationale:" in out
        # Sample-run decisions are joined by the simulator, so the trail
        # shows actual-vs-predicted for flush steps (zero residual in
        # the simulated world).
        assert "decision(s)" in out

    def test_step_filter(self, capsys):
        code = main(["why", "--policy", "naive", "--horizon", "10",
                     "--step", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "t=3" in out
        assert "t=4" not in out

    def test_reads_decision_log_jsonl(self, tmp_path, capsys):
        log_path = tmp_path / "decisions.jsonl"
        code = main(
            ["--decision-log", str(log_path),
             "why", "--policy", "naive", "--horizon", "8"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["why", "--log", str(log_path), "--step", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decision trail: 1 decision(s)" in out
        assert "NAIVE" in out

    def test_rejects_non_decision_log_file(self, tmp_path, capsys):
        bad = tmp_path / "not-decisions.jsonl"
        bad.write_text('{"unrelated": true}\n')
        code = main(["why", "--log", str(bad)])
        assert code == 2
        assert "not a decision-log JSONL" in capsys.readouterr().err

    def test_missing_log_file_fails(self, tmp_path, capsys):
        code = main(["why", "--log", str(tmp_path / "nope.jsonl")])
        assert code == 2


class TestDecisionLogFlag:
    def test_writes_joined_events_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "decisions.jsonl"
        code = main(
            ["--decision-log", str(path),
             "why", "--policy", "online", "--horizon", "12"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert f"decision events to {path}" in captured.err
        lines = path.read_text().splitlines()
        assert len(lines) == 12  # one per non-forced step
        events = [json.loads(line) for line in lines]
        assert {e["policy"] for e in events} <= {"ONLINE", "OPT_LGM"}
        # Every simulator decision is joined: actual == predicted.
        for event in events:
            assert event["actual_ms"] == pytest.approx(event["predicted_ms"])

    def test_restores_previous_log(self, tmp_path):
        from repro.obs import decisions

        assert decisions.get_decision_log() is None
        main(
            ["--decision-log", str(tmp_path / "d.jsonl"),
             "why", "--policy", "naive", "--horizon", "5"]
        )
        assert decisions.get_decision_log() is None

    def test_unwritable_destination_fails_fast(self, tmp_path, capsys):
        code = main(
            ["--decision-log", str(tmp_path / "missing" / "d.jsonl"),
             "why", "--policy", "naive", "--horizon", "5"]
        )
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestControlLogCommand:
    def test_sample_run_renders_trail(self, capsys):
        code = main(["control-log", "--horizon", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("control log: ")
        # The pressure workload always trips at least the block-size
        # governor well before t=40.
        assert "event(s)" in out
        assert "reason:" in out and "applied:" in out

    def test_governor_filter(self, capsys):
        code = main(
            ["control-log", "--horizon", "40", "--governor", "block_size"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for line in out.splitlines():
            if line.startswith("t="):
                assert " block_size" in line

    def test_reads_control_log_jsonl(self, tmp_path, capsys):
        log_path = tmp_path / "control.jsonl"
        code = main(
            ["--control-log", str(log_path), "control-log", "--horizon", "40"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["control-log", "--log", str(log_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("control log: ")
        assert "event(s)" in out

    def test_rejects_non_control_log_file(self, tmp_path, capsys):
        bad = tmp_path / "not-control.jsonl"
        bad.write_text('{"unrelated": true}\n')
        code = main(["control-log", "--log", str(bad)])
        assert code == 2
        assert "not a control-log JSONL" in capsys.readouterr().err

    def test_missing_log_file_fails(self, tmp_path, capsys):
        code = main(["control-log", "--log", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestControlLogFlag:
    def test_writes_events_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "control.jsonl"
        code = main(
            ["--control-log", str(path), "control-log", "--horizon", "40"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert f"control events to {path}" in captured.err
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert events
        for event in events:
            assert {"t", "governor", "setting", "old", "new"} <= set(event)

    def test_restores_previous_log(self, tmp_path):
        from repro.control import events as control_events

        assert control_events.get_control_log() is None
        main(
            ["--control-log", str(tmp_path / "c.jsonl"),
             "control-log", "--horizon", "20"]
        )
        assert control_events.get_control_log() is None

    def test_unwritable_destination_fails_fast(self, tmp_path, capsys):
        code = main(
            ["--control-log", str(tmp_path / "missing" / "c.jsonl"),
             "control-log", "--horizon", "20"]
        )
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestControlAblationCommand:
    def test_prints_ranked_report(self, capsys):
        code = main(["control-ablation", "--horizon", "60"])
        out = capsys.readouterr().out
        assert code == 0
        for variant in ("baseline", "full", "no-policy", "no-workers",
                        "no-block"):
            assert variant in out
        assert "Governor importance" in out
        assert "breaches" in out


class TestGenerateCommand:
    def test_writes_tbl_files(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "--scale", "0.002",
                "--tables", "region", "nation",
                "--out", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "region.tbl").exists()
        assert "nation.tbl: 25 rows" in out


class TestCalibrateCommand:
    def test_prints_fits(self, capsys):
        code = main(
            ["calibrate", "--scale", "0.002", "--batches", "5", "10", "20"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "f_PS(k) samples" in out
        assert "f_S(k) samples" in out
        assert "fit:" in out


class TestTimelineCommand:
    def test_renders_timelines_and_comparison(self, capsys):
        code = main(
            [
                "timeline",
                "--scale", "0.002",
                "--horizon", "40",
                "--policies", "naive", "online",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "=== NAIVE ===" in out
        assert "=== ONLINE ===" in out
        assert "flush[" in out
        assert "vs best" in out
        # SLO summary rides along with every timeline run.
        assert "SLO: refresh-deadline margin" in out
        assert "breaches" in out

    def test_adapt_and_optimal_variants(self, capsys):
        code = main(
            [
                "timeline",
                "--scale", "0.002",
                "--horizon", "30",
                "--policies", "optimal", "adapt",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OPT_LGM" in out and "ADAPT" in out


class TestObservedFailure:
    """--trace must leave its evidence behind even when the run dies."""

    def test_failing_command_still_flushes_trace_and_metrics(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.cli as cli
        from repro.obs.tracing import read_jsonl

        def exploding_handler(args):
            from repro import obs

            obs.counter("doomed.work", 3)
            raise RuntimeError("midway failure")

        monkeypatch.setattr(cli, "_run_experiment", exploding_handler)
        trace_file = tmp_path / "crash.trace.jsonl"
        with pytest.raises(RuntimeError, match="midway failure"):
            main(["--trace", str(trace_file), "experiment", "bounds"])

        out = capsys.readouterr().out
        # The metrics table and the trace file were still written.
        assert "doomed.work" in out
        assert "[obs] wrote" in out
        events = read_jsonl(trace_file)
        span = next(e for e in events if e["name"] == "cli.command")
        assert span["args"]["error"] == "RuntimeError"

    def test_failing_command_still_dumps_flight_samples(
        self, tmp_path, monkeypatch
    ):
        import repro.cli as cli
        from repro.obs.tracing import read_jsonl

        monkeypatch.setattr(
            cli,
            "_run_experiment",
            lambda args: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        flight_file = tmp_path / "crash.flight.jsonl"
        with pytest.raises(RuntimeError):
            main(["--flight-recorder", str(flight_file), "experiment", "bounds"])
        samples = read_jsonl(flight_file)
        assert samples  # stop() takes a final sample before the dump
        assert "metrics" in samples[-1]

    def test_unwritable_destination_fails_fast(self, tmp_path, capsys):
        code = main(
            ["--trace", str(tmp_path / "no" / "such" / "dir.jsonl"),
             "experiment", "bounds"]
        )
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestServeMetricsFlag:
    def test_scrape_during_timeline_run(self, capsys, monkeypatch):
        """The acceptance check: /metrics is live during a timeline run and
        exposes slo_refresh_margin plus engine metrics."""
        import repro.cli as cli
        from repro.experiments import common
        from repro.obs.serve import MetricsServer

        # Calibration is cached per (scale, seed); clear it so this run
        # re-calibrates *under the recorder* and engine metrics show up
        # in the scrape, no matter which test ran first.
        common.calibrated_costs.cache_clear()

        ports = []
        original_start = MetricsServer.start

        def recording_start(self):
            port = original_start(self)
            ports.append(port)
            return port

        monkeypatch.setattr(MetricsServer, "start", recording_start)

        bodies = []
        original_timeline = cli._run_timeline

        def scraping_timeline(args):
            code = original_timeline(args)
            # Still inside the observed block: the server is up.
            url = f"http://127.0.0.1:{ports[0]}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                bodies.append(response.read().decode())
            return code

        monkeypatch.setattr(cli, "_run_timeline", scraping_timeline)
        code = main(
            [
                "--serve-metrics", "0",
                "timeline",
                "--scale", "0.002",
                "--horizon", "30",
                "--policies", "naive",
            ]
        )
        assert code == 0
        assert "[obs] serving metrics" in capsys.readouterr().err
        (body,) = bodies
        assert "slo_refresh_margin " in body
        assert "slo_steps_total" in body
        assert "engine_" in body  # calibration ran through the engine

    def test_flight_recorder_dumps_jsonl_on_success(self, tmp_path, capsys):
        from repro.obs.tracing import read_jsonl

        out_file = tmp_path / "flight.jsonl"
        code = main(["--flight-recorder", str(out_file), "experiment", "bounds"])
        assert code == 0
        assert "flight-recorder samples" in capsys.readouterr().out
        samples = read_jsonl(out_file)
        assert samples
        assert all("t_s" in s and "metrics" in s for s in samples)


class TestExperimentCommand:
    def test_bounds_experiment(self, capsys):
        code = main(["experiment", "bounds"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Bounds study" in out

    def test_fig1_experiment_small_scale(self, capsys):
        code = main(["experiment", "fig1", "--scale", "0.002"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 1" in out
