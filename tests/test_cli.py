"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestSqlCommand:
    def test_query_executes(self, capsys):
        code = main(
            [
                "sql",
                "SELECT COUNT(*) FROM supplier S",
                "--scale", "0.002",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "20" in out  # 20 suppliers at SF 0.002
        assert "simulated cost" in out

    def test_explain(self, capsys):
        code = main(
            [
                "sql",
                "SELECT * FROM partsupp PS, supplier S "
                "WHERE PS.suppkey = S.suppkey",
                "--scale", "0.002",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SeqScan(partsupp" in out
        assert "IndexNestedLoopJoin(supplier" in out

    def test_sql_error_reported(self, capsys):
        code = main(["sql", "SELECT FROM nothing", "--scale", "0.002"])
        err = capsys.readouterr().err
        assert code == 1
        assert "SQL error" in err

    def test_max_rows_truncation(self, capsys):
        code = main(
            [
                "sql",
                "SELECT PS.partkey FROM partsupp PS",
                "--scale", "0.002",
                "--max-rows", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "more rows" in out


class TestGenerateCommand:
    def test_writes_tbl_files(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "--scale", "0.002",
                "--tables", "region", "nation",
                "--out", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "region.tbl").exists()
        assert "nation.tbl: 25 rows" in out


class TestCalibrateCommand:
    def test_prints_fits(self, capsys):
        code = main(
            ["calibrate", "--scale", "0.002", "--batches", "5", "10", "20"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "f_PS(k) samples" in out
        assert "f_S(k) samples" in out
        assert "fit:" in out


class TestTimelineCommand:
    def test_renders_timelines_and_comparison(self, capsys):
        code = main(
            [
                "timeline",
                "--scale", "0.002",
                "--horizon", "40",
                "--policies", "naive", "online",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "=== NAIVE ===" in out
        assert "=== ONLINE ===" in out
        assert "flush[" in out
        assert "vs best" in out

    def test_adapt_and_optimal_variants(self, capsys):
        code = main(
            [
                "timeline",
                "--scale", "0.002",
                "--horizon", "30",
                "--policies", "optimal", "adapt",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OPT_LGM" in out and "ADAPT" in out


class TestExperimentCommand:
    def test_bounds_experiment(self, capsys):
        code = main(["experiment", "bounds"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Bounds study" in out

    def test_fig1_experiment_small_scale(self, capsys):
        code = main(["experiment", "fig1", "--scale", "0.002"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 1" in out
