"""Tests for the benchmark trajectory dashboard generator."""

import json
from pathlib import Path

import pytest

from benchmarks.report_trajectory import (
    build_dashboard,
    load_results,
    main,
    render_html,
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def _result(name, wall=1.5, metrics=None, params=None):
    return {
        "name": name,
        "wall_time_s": wall,
        "params": params or {"scale": 0.01},
        "metrics": metrics or {},
    }


class TestLoadResults:
    def test_loads_sorted_and_skips_junk(self, tmp_path, capsys):
        (tmp_path / "b.json").write_text(json.dumps(_result("bravo")))
        (tmp_path / "a.json").write_text(json.dumps(_result("alpha")))
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "other.json").write_text(json.dumps({"no": "name"}))
        results = load_results(tmp_path)
        assert [r["name"] for r in results] == ["alpha", "bravo"]
        err = capsys.readouterr().err
        assert "broken.json" in err and "other.json" in err

    def test_loads_all_committed_results(self):
        results = load_results(RESULTS_DIR)
        assert len(results) >= 17
        assert all("wall_time_s" in r for r in results)


class TestDashboard:
    def test_contains_wall_time_and_metric_tables(self):
        results = [
            _result(
                "fig6",
                wall=2.0,
                metrics={
                    "slo.breaches": {"kind": "counter", "value": 4},
                    "engine.block.fill": {
                        "kind": "histogram", "count": 2, "mean": 0.75,
                    },
                },
            ),
            _result("fig1", wall=1.0),
        ]
        text = build_dashboard(results)
        assert "| benchmark |" in text
        assert "| fig1 |" in text and "| fig6 |" in text
        assert "SLO breaches" in text
        # 2.0 + 1.0 summed in the footer
        assert "Total recorded wall time: **3.00 s**" in text

    def test_long_params_truncated(self):
        params = {f"k{i}": "v" * 10 for i in range(20)}
        text = build_dashboard([_result("big", params=params)])
        row = next(line for line in text.splitlines() if "| big |" in line)
        assert "..." in row
        assert len(row) < 250

    def test_committed_results_render(self):
        text = build_dashboard(load_results(RESULTS_DIR))
        for name in ("fig6_refresh_time", "bounds_study"):
            assert name in text


class TestHtml:
    def test_tables_become_html_tables(self):
        markdown = build_dashboard([_result("fig1")])
        html = render_html(markdown)
        assert "<table>" in html and "</table>" in html
        assert "<th>benchmark</th>" in html
        assert "fig1" in html


class TestMain:
    def test_writes_markdown_and_html(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "r.json").write_text(json.dumps(_result("solo")))
        out = tmp_path / "dash.md"
        html = tmp_path / "dash.html"
        code = main(
            [
                "--results", str(results),
                "--out", str(out),
                "--html", str(html),
            ]
        )
        assert code == 0
        assert "solo" in out.read_text()
        assert "<table>" in html.read_text()

    def test_empty_results_dir_fails(self, tmp_path, capsys):
        code = main(["--results", str(tmp_path)])
        assert code == 1
        assert "no benchmark results" in capsys.readouterr().err
