"""Tests for the benchmark trajectory dashboard generator."""

import json
from pathlib import Path

import pytest

from benchmarks.report_trajectory import (
    build_dashboard,
    load_results,
    main,
    render_html,
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def _result(name, wall=1.5, metrics=None, params=None):
    return {
        "name": name,
        "wall_time_s": wall,
        "params": params or {"scale": 0.01},
        "metrics": metrics or {},
    }


class TestLoadResults:
    def test_loads_sorted_and_skips_junk(self, tmp_path, capsys):
        (tmp_path / "b.json").write_text(json.dumps(_result("bravo")))
        (tmp_path / "a.json").write_text(json.dumps(_result("alpha")))
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "other.json").write_text(json.dumps({"no": "name"}))
        results = load_results(tmp_path)
        assert [r["name"] for r in results] == ["alpha", "bravo"]
        err = capsys.readouterr().err
        assert "broken.json" in err and "other.json" in err

    def test_loads_all_committed_results(self):
        results = load_results(RESULTS_DIR)
        assert len(results) >= 17
        assert all("wall_time_s" in r for r in results)


class TestDashboard:
    def test_contains_wall_time_and_metric_tables(self):
        results = [
            _result(
                "fig6",
                wall=2.0,
                metrics={
                    "slo.breaches": {"kind": "counter", "value": 4},
                    "engine.block.fill": {
                        "kind": "histogram", "count": 2, "mean": 0.75,
                    },
                },
            ),
            _result("fig1", wall=1.0),
        ]
        text = build_dashboard(results)
        assert "| benchmark |" in text
        assert "| fig1 |" in text and "| fig6 |" in text
        assert "SLO breaches" in text
        # 2.0 + 1.0 summed in the footer
        assert "Total recorded wall time: **3.00 s**" in text

    def test_long_params_truncated(self):
        params = {f"k{i}": "v" * 10 for i in range(20)}
        text = build_dashboard([_result("big", params=params)])
        row = next(line for line in text.splitlines() if "| big |" in line)
        assert "..." in row
        assert len(row) < 250

    def test_committed_results_render(self):
        text = build_dashboard(load_results(RESULTS_DIR))
        for name in ("fig6_refresh_time", "bounds_study"):
            assert name in text


class TestCalibrationSection:
    def test_absent_without_calibration_metrics(self):
        dashboard = build_dashboard([_result("plain")])
        assert "## Calibration" not in dashboard

    def test_renders_residual_table(self):
        metrics = {
            "planner.calibration.samples": {"type": "counter", "value": 12},
            "planner.decisions.emitted": {"type": "counter", "value": 20},
            "planner.calibration.abs_err_ms": {
                "type": "histogram",
                "count": 12,
                "p50": 0.5,
                "p95": 2.0,
            },
            "planner.calibration.rel_err": {
                "type": "histogram",
                "count": 12,
                "p50": 0.1,
                "p95": 0.4,
            },
            "planner.calibration.residual": {
                "type": "histogram",
                "count": 12,
                "mean": -0.25,
            },
            "planner.calibration.drift_alerts": {
                "type": "counter",
                "value": 2,
            },
        }
        dashboard = build_dashboard(
            [_result("calibrated", metrics=metrics), _result("plain")]
        )
        assert "## Calibration" in dashboard
        section = dashboard.split("## Calibration")[1].split("\n##")[0]
        row = next(
            line
            for line in section.splitlines()
            if line.startswith("| calibrated")
        )
        assert "| 12 |" in row and "| 20 |" in row
        assert "0.500" in row and "2.000" in row
        assert "-0.250" in row and "| 2 |" in row
        # The untraced benchmark contributes no calibration row.
        assert "| plain" not in section


class TestCompactMetrics:
    def test_small_fleets_pass_through_untouched(self):
        from benchmarks._report import compact_metrics

        metrics = {
            f"ivm.view.v{i}.rounds": {"type": "counter", "value": i}
            for i in range(5)
        }
        metrics["engine.queries"] = {"type": "counter", "value": 3}
        assert compact_metrics(metrics) == metrics

    def test_fleet_scale_folds_per_view_series(self):
        from benchmarks._report import compact_metrics

        metrics = {"engine.queries": {"type": "counter", "value": 3}}
        for i in range(40):
            metrics[f"ivm.view.v{i:03d}.rounds"] = {
                "type": "counter",
                "value": 2,
            }
            metrics[f"ivm.view.v{i:03d}.round_ms"] = {
                "type": "histogram",
                "count": 2,
                "total": float(i),
            }
        compacted = compact_metrics(metrics, max_series=32)
        assert compacted["engine.queries"] == metrics["engine.queries"]
        assert not any(k.startswith("ivm.view.v") for k in compacted)
        rounds = compacted["ivm.view._fleet.rounds"]
        assert rounds == {
            "type": "summary",
            "views": 40,
            "sum": 80,
            "min": 2,
            "max": 2,
        }
        # Histograms fold on their total, preserving the fleet-wide sum.
        round_ms = compacted["ivm.view._fleet.round_ms"]
        assert round_ms["sum"] == pytest.approx(sum(range(40)))
        assert round_ms["max"] == 39.0

    def test_committed_multiview_result_is_folded(self):
        payload = json.loads(
            (RESULTS_DIR / "multiview_scale.json").read_text()
        )
        assert not any(
            k.startswith("ivm.view.") and not k.startswith("ivm.view._fleet.")
            for k in payload["metrics"]
        )
        fleet = payload["metrics"]["ivm.view._fleet.rounds"]
        assert fleet["type"] == "summary"
        assert fleet["views"] > 32


class TestHtml:
    def test_tables_become_html_tables(self):
        markdown = build_dashboard([_result("fig1")])
        html = render_html(markdown)
        assert "<table>" in html and "</table>" in html
        assert "<th>benchmark</th>" in html
        assert "fig1" in html


class TestMain:
    def test_writes_markdown_and_html(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "r.json").write_text(json.dumps(_result("solo")))
        out = tmp_path / "dash.md"
        html = tmp_path / "dash.html"
        code = main(
            [
                "--results", str(results),
                "--out", str(out),
                "--html", str(html),
            ]
        )
        assert code == 0
        assert "solo" in out.read_text()
        assert "<table>" in html.read_text()

    def test_empty_results_dir_fails(self, tmp_path, capsys):
        code = main(["--results", str(tmp_path)])
        assert code == 1
        assert "no benchmark results" in capsys.readouterr().err
