"""Tests for the TPC-R dbgen clone."""

import pytest

from repro.engine.database import Database
from repro.tpcr.gen import GENERATION_ORDER, TpcrGenerator, load_tpcr, partsupp_suppkey
from repro.tpcr.schema import TPCR_SCHEMAS, table_cardinality
from repro.tpcr.text import NATIONS, REGIONS


class TestCardinalities:
    def test_fixed_tables_ignore_scale(self):
        assert table_cardinality("region", 0.001) == 5
        assert table_cardinality("nation", 10.0) == 25

    def test_scaling_preserves_ratios(self):
        for scale in (0.01, 0.1, 1.0):
            ps = table_cardinality("partsupp", scale)
            sup = table_cardinality("supplier", scale)
            assert ps == 80 * sup

    def test_sf1_matches_spec(self):
        assert table_cardinality("supplier", 1.0) == 10_000
        assert table_cardinality("partsupp", 1.0) == 800_000
        assert table_cardinality("part", 1.0) == 200_000
        assert table_cardinality("customer", 1.0) == 150_000
        assert table_cardinality("orders", 1.0) == 1_500_000

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            table_cardinality("widgets", 1.0)
        with pytest.raises(KeyError):
            table_cardinality("lineitem", 1.0)  # stochastic

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            table_cardinality("supplier", 0.0)


class TestRowGeneration:
    def test_region_rows(self):
        rows = list(TpcrGenerator(scale=0.01).rows("region"))
        assert len(rows) == 5
        assert [r[1] for r in rows] == list(REGIONS)

    def test_nation_rows_reference_regions(self):
        rows = list(TpcrGenerator(scale=0.01).rows("nation"))
        assert len(rows) == 25
        for key, name, regionkey, __ in rows:
            assert 0 <= regionkey < 5
            assert NATIONS[key][0] == name

    def test_supplier_rows(self):
        gen = TpcrGenerator(scale=0.01)
        rows = list(gen.rows("supplier"))
        assert len(rows) == 100
        for suppkey, name, __, nationkey, phone, acctbal, __ in rows:
            assert name == f"Supplier#{suppkey:09d}"
            assert 0 <= nationkey < 25
            # dbgen phone rule: country code = nationkey + 10.
            assert phone.startswith(f"{nationkey + 10}-")
            assert -1000.0 < acctbal < 10000.0

    def test_partsupp_degree_is_four(self):
        gen = TpcrGenerator(scale=0.01)
        rows = list(gen.rows("partsupp"))
        parts = table_cardinality("part", 0.01)
        assert len(rows) == 4 * parts
        suppliers = table_cardinality("supplier", 0.01)
        for partkey, suppkey, availqty, supplycost, __ in rows:
            assert 1 <= suppkey <= suppliers
            assert 1.00 <= supplycost <= 1000.00
            assert 1 <= availqty <= 9999

    def test_partsupp_suppkey_formula_spreads(self):
        suppliers = 100
        keys = {partsupp_suppkey(1, i, suppliers) for i in range(4)}
        assert len(keys) == 4  # four distinct suppliers per part

    def test_determinism(self):
        a = list(TpcrGenerator(scale=0.005, seed=7).rows("supplier"))
        b = list(TpcrGenerator(scale=0.005, seed=7).rows("supplier"))
        assert a == b

    def test_seed_changes_content(self):
        a = list(TpcrGenerator(scale=0.005, seed=7).rows("supplier"))
        b = list(TpcrGenerator(scale=0.005, seed=8).rows("supplier"))
        assert a != b

    def test_rows_match_schemas(self):
        gen = TpcrGenerator(scale=0.002)
        for table in GENERATION_ORDER:
            schema = TPCR_SCHEMAS[table]
            for i, row in enumerate(gen.rows(table)):
                schema.validate_row(row)
                if i > 20:
                    break

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            TpcrGenerator().rows("widgets")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            TpcrGenerator(scale=-1)

    def test_orders_reference_customers(self):
        gen = TpcrGenerator(scale=0.002)
        customers = table_cardinality("customer", 0.002)
        for i, row in enumerate(gen.rows("orders")):
            assert 1 <= row[1] <= customers
            if i > 50:
                break

    def test_lineitems_reference_valid_partsupp_pairs(self):
        gen = TpcrGenerator(scale=0.002)
        suppliers = table_cardinality("supplier", 0.002)
        pairs = set()
        for partkey, suppkey, *_rest in gen.rows("partsupp"):
            pairs.add((partkey, suppkey))
        for i, row in enumerate(gen.rows("lineitem")):
            assert (row[1], row[2]) in pairs
            if i > 50:
                break


class TestLoadTpcr:
    def test_default_tables(self):
        db = Database()
        counts = load_tpcr(db, scale=0.002)
        assert set(counts) == {"region", "nation", "supplier", "partsupp"}
        assert counts["supplier"] == 20
        assert counts["partsupp"] == 1600
        assert db.table("supplier").live_count == 20

    def test_explicit_table_selection(self):
        db = Database()
        counts = load_tpcr(db, scale=0.002, tables=("region", "nation"))
        assert set(counts) == {"region", "nation"}

    def test_unknown_table_rejected(self):
        db = Database()
        with pytest.raises(KeyError):
            load_tpcr(db, tables=("widgets",))

    def test_foreign_keys_join_cleanly(self):
        db = Database()
        load_tpcr(db, scale=0.002)
        suppliers = set(db.table("supplier").snapshot().column_values("suppkey"))
        for partkey, suppkey, *__ in db.table("partsupp").live_rows():
            assert suppkey in suppliers
        nations = set(db.table("nation").snapshot().column_values("nationkey"))
        for row in db.table("supplier").live_rows():
            assert row[3] in nations
