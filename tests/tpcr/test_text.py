"""Tests for the dbgen-style text generators."""

import random

import pytest

from repro.tpcr import text


@pytest.fixture
def rng():
    return random.Random(123)


class TestFixedTables:
    def test_five_regions(self):
        assert len(text.REGIONS) == 5
        assert "MIDDLE EAST" in text.REGIONS

    def test_twenty_five_nations_with_valid_regions(self):
        assert len(text.NATIONS) == 25
        for name, regionkey in text.NATIONS:
            assert 0 <= regionkey < 5
            assert name == name.upper()

    def test_nation_names_unique(self):
        names = [n for n, __ in text.NATIONS]
        assert len(set(names)) == 25


class TestGenerators:
    def test_comment_word_counts(self, rng):
        for __ in range(20):
            words = text.comment(rng, 3, 6).split()
            assert 3 <= len(words) <= 6

    def test_v_string_lengths(self, rng):
        for __ in range(20):
            s = text.v_string(rng, 10, 40)
            assert 10 <= len(s) <= 40

    def test_phone_format_encodes_nation(self, rng):
        phone = text.phone(rng, nationkey=7)
        country, a, b, c = phone.split("-")
        assert country == "17"  # nationkey + 10
        assert (len(a), len(b), len(c)) == (3, 3, 4)
        assert all(part.isdigit() for part in (a, b, c))

    def test_part_name_five_distinct_colours(self, rng):
        words = text.part_name(rng).split()
        assert len(words) == 5
        assert len(set(words)) == 5

    def test_part_type_three_components(self, rng):
        # Components come from fixed vocabularies of 1-word terms, so a
        # type is exactly three words.
        assert len(text.part_type(rng).split()) == 3

    def test_brand_format(self, rng):
        for __ in range(10):
            brand = text.part_brand(rng)
            assert brand.startswith("Brand#")
            assert len(brand) == 8
            assert brand[6] in "12345" and brand[7] in "12345"

    def test_container_two_components(self, rng):
        assert len(text.part_container(rng).split()) == 2

    def test_clerk_scales_with_sf(self, rng):
        small = {text.clerk(rng, 0.001) for __ in range(30)}
        assert small == {"Clerk#000000001"}  # max(1, 0.001*1000) = 1 clerk
        big = {text.clerk(rng, 1.0) for __ in range(30)}
        assert len(big) > 1

    def test_segments_and_priorities_from_spec_lists(self, rng):
        assert text.market_segment(rng) in (
            "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"
        )
        assert text.order_priority(rng)[0] in "12345"

    def test_determinism_per_seed(self):
        a = text.comment(random.Random(9))
        b = text.comment(random.Random(9))
        assert a == b
