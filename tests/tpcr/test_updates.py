"""Tests for the paper's update streams."""

import pytest

from repro.engine.database import Database
from repro.tpcr.gen import load_tpcr
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater


@pytest.fixture
def db():
    database = Database()
    load_tpcr(database, scale=0.002)
    return database


class TestPartSuppCostUpdater:
    def test_updates_supplycost_only(self, db):
        ps = db.table("partsupp")
        updater = PartSuppCostUpdater(ps, seed=1)
        event = updater.apply_one()
        assert event.kind == "update"
        old, new = event.old_values, event.new_values
        assert old[3] != new[3] or old == new  # supplycost changed (pos 3)
        assert old[:3] == new[:3]
        assert old[4] == new[4]
        assert 1.00 <= new[3] <= 1000.00

    def test_apply_k(self, db):
        ps = db.table("partsupp")
        updater = PartSuppCostUpdater(ps, seed=1)
        before = ps.current_lsn
        events = updater.apply(7)
        assert len(events) == 7
        assert ps.current_lsn == before + 7
        assert ps.live_count == 1600  # updates preserve cardinality

    def test_callable_interface(self, db):
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=1)
        before = db.table("partsupp").current_lsn
        updater(4)
        assert db.table("partsupp").current_lsn == before + 4

    def test_live_rid_tracking_survives_many_updates(self, db):
        ps = db.table("partsupp")
        updater = PartSuppCostUpdater(ps, seed=1)
        updater.apply(3 * ps.live_count)  # every row updated ~3x on average
        assert ps.live_count == 1600
        # All tracked rids must still be live.
        for rid in updater._live_rids:
            assert ps.version(rid).xmax is None

    def test_determinism(self, db):
        db2 = Database()
        load_tpcr(db2, scale=0.002)
        e1 = PartSuppCostUpdater(db.table("partsupp"), seed=5).apply(5)
        e2 = PartSuppCostUpdater(db2.table("partsupp"), seed=5).apply(5)
        assert [e.new_values for e in e1] == [e.new_values for e in e2]

    def test_negative_k_rejected(self, db):
        updater = PartSuppCostUpdater(db.table("partsupp"), seed=1)
        with pytest.raises(ValueError):
            updater.apply(-1)

    def test_empty_table_rejected(self):
        db = Database()
        load_tpcr(db, scale=0.002, tables=("region",))
        from repro.engine.types import ColumnType, Schema

        empty = db.create_table("empty", Schema.of(supplycost=ColumnType.FLOAT))
        with pytest.raises(ValueError, match="empty"):
            PartSuppCostUpdater(empty, seed=1)


class TestSupplierNationUpdater:
    def test_updates_nationkey_only(self, db):
        updater = SupplierNationUpdater(db.table("supplier"), seed=2)
        event = updater.apply_one()
        old, new = event.old_values, event.new_values
        assert old[:3] == new[:3]
        assert old[4:] == new[4:]
        assert 0 <= new[3] < 25

    def test_cardinality_preserved(self, db):
        sup = db.table("supplier")
        SupplierNationUpdater(sup, seed=2).apply(50)
        assert sup.live_count == 20
