"""repro -- a reproduction of "Asymmetric Batch Incremental View Maintenance".

(He, Xie, Yang, Yu; ICDE 2005.)

The package is layered bottom-up:

* :mod:`repro.engine` -- an in-memory relational engine with MVCC-lite
  snapshots, secondary indexes, joins, aggregation, and a deterministic
  cost model (the substrate replacing the paper's commercial DBMS);
* :mod:`repro.tpcr` -- a dbgen-style TPC-R data generator and the paper's
  update streams;
* :mod:`repro.ivm` -- incremental view maintenance: delta tables,
  materialized views, state-bug-safe batch propagation, a response-time-
  constrained maintainer runtime, and cost-function calibration;
* :mod:`repro.core` -- the paper's contribution: the scheduling problem
  model, LGM plan theory, the A* optimal planner, ADAPT, ONLINE, and the
  NAIVE baseline;
* :mod:`repro.workloads` -- arrival-sequence generators;
* :mod:`repro.experiments` -- one driver per paper figure plus ablations.

Quick start::

    from repro import (
        LinearCost, ProblemInstance, NaivePolicy, OnlinePolicy,
        find_optimal_lgm_plan, simulate_policy,
    )

    f_cheap = LinearCost(slope=0.25)            # indexed side: no setup
    f_batchy = LinearCost(slope=0.25, setup=200)  # scan side: big setup
    arrivals = [(1, 1)] * 1000                  # one mod per table per step
    problem = ProblemInstance([f_cheap, f_batchy], limit=350.0,
                              arrivals=arrivals)

    naive = simulate_policy(problem, NaivePolicy())
    optimal = find_optimal_lgm_plan(problem)
    print(naive.total_cost / optimal.cost)      # the asymmetric advantage
"""

from repro.core import (
    AdaptPolicy,
    AStarResult,
    BlockIOCost,
    ConcaveCost,
    CostFunction,
    LinearCost,
    NaivePolicy,
    OnlinePolicy,
    PiecewiseLinearCost,
    Plan,
    PlanTrace,
    ProblemInstance,
    StepCost,
    TabulatedCost,
    TimeToFullEstimator,
    adapt_plan,
    enumerate_greedy_minimal_actions,
    execute_plan,
    find_optimal_lgm_plan,
    find_optimal_plan_exhaustive,
    fit_linear,
    make_lazy_plan,
    make_lgm_plan,
    max_batch_under,
    minimize_action,
    simulate_policy,
)
from repro.core.policies import Policy, PolicyError, ReplayPolicy

__version__ = "1.0.0"

__all__ = [
    "AStarResult",
    "AdaptPolicy",
    "BlockIOCost",
    "ConcaveCost",
    "CostFunction",
    "LinearCost",
    "NaivePolicy",
    "OnlinePolicy",
    "PiecewiseLinearCost",
    "Plan",
    "PlanTrace",
    "Policy",
    "PolicyError",
    "ProblemInstance",
    "ReplayPolicy",
    "StepCost",
    "TabulatedCost",
    "TimeToFullEstimator",
    "adapt_plan",
    "enumerate_greedy_minimal_actions",
    "execute_plan",
    "find_optimal_lgm_plan",
    "find_optimal_plan_exhaustive",
    "fit_linear",
    "make_lazy_plan",
    "make_lgm_plan",
    "max_batch_under",
    "minimize_action",
    "simulate_policy",
]
