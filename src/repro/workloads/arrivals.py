"""Modification arrival sequences (Section 5 of the paper).

Three workload families from the paper plus two extensions:

* :func:`uniform_arrivals` -- a constant number of modifications per table
  per step (Figure 6's "one PartSupp update and one Supplier update arrive
  at every time step", generalized to arbitrary per-table rates);
* :func:`stochastic_arrivals` -- the paper's non-uniform model (Figure 7):
  at each step, with probability ``p`` at least one modification arrives;
  the count ``d > 0`` is distributed as ``ceil(X) | X > 0`` for
  ``X ~ Normal(mu, sigma^2)``.  ``p`` controls rate (slow/fast), ``sigma``
  stability (stable/unstable);
* :func:`periodic_arrivals` -- repeats a base pattern (the assumption under
  which ADAPT's ``T > T_0`` bound holds);
* :func:`poisson_arrivals`, :func:`bursty_arrivals` -- extensions for
  stress-testing ONLINE's rate estimator beyond the paper's streams.

All generators return a list of per-step n-vectors consumable by
:class:`repro.core.problem.ProblemInstance` and are deterministic given a
seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class StreamParams:
    """Parameters of the paper's stochastic stream model for one table."""

    p: float = 0.5  # probability that any modifications arrive in a step
    mu: float = 1.0  # mean of the underlying normal
    sigma: float = 1.0  # std-dev of the underlying normal (instability)

    def __post_init__(self) -> None:
        if not 0 <= self.p <= 1:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")


# The paper's four Figure-7 stream classes: slow/fast x stable/unstable.
SLOW_STABLE = StreamParams(p=0.5, mu=1.0, sigma=1.0)
SLOW_UNSTABLE = StreamParams(p=0.5, mu=1.0, sigma=5.0)
FAST_STABLE = StreamParams(p=0.9, mu=1.0, sigma=1.0)
FAST_UNSTABLE = StreamParams(p=0.9, mu=1.0, sigma=5.0)


def uniform_arrivals(
    rates: Sequence[int], steps: int
) -> list[tuple[int, ...]]:
    """``rates[i]`` modifications to table ``i`` at every time step."""
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if any(r < 0 for r in rates):
        raise ValueError(f"rates must be non-negative, got {rates}")
    row = tuple(int(r) for r in rates)
    return [row] * steps


def stochastic_arrivals(
    params: Sequence[StreamParams],
    steps: int,
    seed: int = 0,
    scale: Sequence[int] | None = None,
) -> list[tuple[int, ...]]:
    """The paper's truncated-normal stream model, one stream per table.

    ``scale`` optionally multiplies each table's drawn counts (used to
    apply the PartSupp:Supplier arrival mix while keeping the *pattern*
    parameters exactly as in the paper).
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = random.Random(seed)
    factors = tuple(scale) if scale is not None else (1,) * len(params)
    if len(factors) != len(params):
        raise ValueError("scale must have one factor per stream")
    out: list[tuple[int, ...]] = []
    for __ in range(steps):
        row = []
        for sp, factor in zip(params, factors):
            row.append(_draw_count(rng, sp) * factor)
        out.append(tuple(row))
    return out


def _draw_count(rng: random.Random, sp: StreamParams) -> int:
    """One step's count under the paper's model: 0 w.p. ``1 - p``, else
    ``ceil(X)`` for ``X ~ N(mu, sigma^2)`` conditioned on ``X > 0``."""
    if rng.random() >= sp.p:
        return 0
    if sp.sigma == 0:
        return max(1, math.ceil(sp.mu))
    # Rejection-sample the conditioned normal; the acceptance probability
    # is P(X > 0) which is >= ~2% for any mu >= -2 sigma, so this is cheap
    # for the paper's parameter ranges.
    for __ in range(10_000):
        x = rng.gauss(sp.mu, sp.sigma)
        if x > 0:
            return math.ceil(x)
    raise RuntimeError(
        f"could not sample X > 0 from N({sp.mu}, {sp.sigma}^2); "
        f"parameters are degenerate"
    )


def periodic_arrivals(
    pattern: Sequence[Sequence[int]], steps: int
) -> list[tuple[int, ...]]:
    """Repeat ``pattern`` cyclically for ``steps`` steps."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rows = [tuple(int(x) for x in row) for row in pattern]
    return [rows[t % len(rows)] for t in range(steps)]


def poisson_arrivals(
    means: Sequence[float], steps: int, seed: int = 0
) -> list[tuple[int, ...]]:
    """Independent Poisson counts per table per step (extension)."""
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = random.Random(seed)
    out = []
    for __ in range(steps):
        out.append(tuple(_poisson(rng, m) for m in means))
    return out


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's algorithm; fine for the small means used here."""
    if mean < 0:
        raise ValueError(f"mean must be >= 0, got {mean}")
    if mean == 0:
        return 0
    threshold = math.exp(-mean)
    k, product = 0, rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


def bursty_arrivals(
    base_rates: Sequence[int],
    steps: int,
    burst_every: int,
    burst_factor: int,
    seed: int = 0,
) -> list[tuple[int, ...]]:
    """Uniform arrivals with periodic multiplicative bursts (extension).

    Every ``burst_every`` steps (with +-20% jitter) one step carries
    ``burst_factor`` times the base rates -- the adversarial pattern for
    rate-estimating policies.
    """
    if burst_every < 1:
        raise ValueError(f"burst_every must be >= 1, got {burst_every}")
    if burst_factor < 1:
        raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
    rng = random.Random(seed)
    out = []
    next_burst = burst_every
    for t in range(steps):
        if t == next_burst:
            out.append(tuple(int(r) * burst_factor for r in base_rates))
            jitter = rng.randint(-burst_every // 5, burst_every // 5)
            next_burst = t + max(1, burst_every + jitter)
        else:
            out.append(tuple(int(r) for r in base_rates))
    return out
