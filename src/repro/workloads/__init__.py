"""Arrival-sequence generators for the maintenance experiments."""

from repro.workloads.arrivals import (
    StreamParams,
    bursty_arrivals,
    periodic_arrivals,
    poisson_arrivals,
    stochastic_arrivals,
    uniform_arrivals,
)

__all__ = [
    "StreamParams",
    "bursty_arrivals",
    "periodic_arrivals",
    "poisson_arrivals",
    "stochastic_arrivals",
    "uniform_arrivals",
]
