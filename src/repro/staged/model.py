"""Pipelines of maintenance operators with per-stage batch costs.

A :class:`Pipeline` is a linear chain of :class:`Stage` objects -- the
operator sequence of one delta table's maintenance query, e.g.::

    dPS --[probe Supplier index]--> --[filter region]--> --[fold into MIN]-->

Tuples pending *in front of* stage ``j`` are counted by ``state[j]``; to
reach the view they must flow through stages ``j, j+1, ..., m-1``, each
stage ``l`` charging its cost function ``g_l`` on its input batch and
multiplying cardinality by its fan-out.  The cost of bringing the view
fully up to date from a given state -- the quantity the response-time
constraint bounds -- is :meth:`Pipeline.flush_cost`.

**Fluid approximation.** Queue lengths are *expected* cardinalities and
therefore floats: a selective stage with fan-out 0.2 fed 2 tuples emits
0.4 expected tuples downstream.  Rounding to integers would make small
batches vanish through selective stages (conservation violation) and
silently zero the cost of eager propagation; the fluid model keeps both
cost accounting and backlog tracking faithful in expectation, which is
the granularity the scheduling analysis works at anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.costfuncs import CostFunction


@dataclass(frozen=True)
class Stage:
    """One operator of a maintenance pipeline.

    Parameters
    ----------
    name:
        Label for reports ("probe supplier idx", "scan partsupp", ...).
    cost:
        ``g(k)``: the cost of pushing a batch of ``k`` input tuples
        through this operator.  Monotone and subadditive, like every cost
        function in the paper's framework.
    fanout:
        Expected output tuples per input tuple (join selectivity times
        join degree).  0.5 for a selective filter, 80.0 for a key
        exploding into its 80 joining partners.
    """

    name: str
    cost: CostFunction
    fanout: float = 1.0

    def __post_init__(self) -> None:
        if self.fanout < 0:
            raise ValueError(f"fanout must be >= 0, got {self.fanout}")

    def output_size(self, k: float) -> float:
        """Expected output cardinality for ``k`` (expected) inputs."""
        return k * self.fanout


class Pipeline:
    """A linear operator chain with inter-stage queues.

    A state is an ``m``-vector of expected queue lengths (floats; see the
    module docstring): ``state[j]`` tuples queued in front of stage ``j``.
    Stage 0's queue is where new base-table modifications land.
    """

    def __init__(self, stages: Sequence[Stage]):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages: tuple[Stage, ...] = tuple(stages)

    @property
    def depth(self) -> int:
        """Number of stages ``m``."""
        return len(self.stages)

    def zero_state(self) -> tuple[float, ...]:
        """The all-empty queue state."""
        return (0.0,) * self.depth

    def flush_cost(self, state: Sequence[int]) -> float:
        """Cost of pushing every queued tuple through to the view.

        Cascades: stage ``j`` processes its own queue plus whatever the
        upstream flush just delivered, in one combined batch (subadditivity
        makes combining optimal for a single flush).
        """
        self._check_state(state)
        total = 0.0
        carry = 0.0
        for pending, stage in zip(state, self.stages):
            batch = pending + carry
            if batch:
                total += stage.cost(batch)
                carry = stage.output_size(batch)
            else:
                carry = 0.0
        return total

    def propagate_cost(self, state: Sequence[int], through: int) -> float:
        """Cost of flushing queues ``0..through-1`` through their stages.

        This is a *partial* propagation: outputs of stage ``through - 1``
        land in queue ``through`` instead of reaching the view.
        """
        self._check_state(state)
        if not 0 <= through <= self.depth:
            raise ValueError(
                f"through={through} outside [0, {self.depth}]"
            )
        total = 0.0
        carry = 0.0
        for j in range(through):
            batch = state[j] + carry
            if batch:
                total += self.stages[j].cost(batch)
                carry = self.stages[j].output_size(batch)
            else:
                carry = 0.0
        return total

    def propagate(
        self, state: Sequence[int], through: int
    ) -> tuple[tuple[float, ...], float]:
        """Apply a partial propagation; returns ``(new_state, cost)``."""
        cost = self.propagate_cost(state, through)
        new_state = [float(x) for x in state]
        carry = 0.0
        for j in range(through):
            batch = new_state[j] + carry
            new_state[j] = 0.0
            carry = self.stages[j].output_size(batch) if batch else 0.0
        if through < self.depth:
            new_state[through] += carry
            return tuple(new_state), cost
        # through == depth: everything reached the view.
        return tuple(new_state), cost

    def _check_state(self, state: Sequence[int]) -> None:
        if len(state) != self.depth:
            raise ValueError(
                f"state has {len(state)} queues, pipeline has {self.depth}"
            )
        if any(x < 0 for x in state):
            raise ValueError(f"negative queue length in {tuple(state)}")

    def __repr__(self) -> str:
        chain = " -> ".join(s.name for s in self.stages)
        return f"Pipeline({chain})"
