"""Operator-level asymmetric batching (the paper's future-work Section 7).

    "In the query plan representing a maintenance query, different
    operators may be more or less amenable to batch processing.
    Propagating modifications through some operators while batching them
    in front of others may lead to further savings in total maintenance
    cost."

This subpackage implements that idea.  A maintenance query is modeled as a
:class:`~repro.staged.model.Pipeline` of operators; each
:class:`~repro.staged.model.Stage` has its own batch cost function (a join
probing an index: linear, nothing to gain from batching; a join scanning a
big table: setup-heavy, batch-friendly) and a fan-out factor (how many
output tuples one input produces).  Modifications queue *in front of any
stage*, not just at the pipeline entrance, and the refresh-time constraint
applies to the cost of flushing everything through the remaining suffix.

The scheduling question becomes *where to hold the batches*:

* :class:`~repro.staged.policies.NaiveStagedPolicy` holds everything at
  the entrance and flushes the whole pipeline when full -- the
  whole-query analogue of the paper's NAIVE;
* :class:`~repro.staged.policies.CutPolicy` eagerly propagates
  modifications through a prefix of cheap operators every step and
  batches in front of the first batch-friendly one;
* :func:`~repro.staged.policies.choose_best_cut` searches the cut
  positions by simulation.

``repro.experiments.operator_asymmetry`` quantifies the savings.
"""

from repro.staged.model import Pipeline, Stage
from repro.staged.policies import (
    CutPolicy,
    NaiveStagedPolicy,
    StagedPolicy,
    choose_best_cut,
)
from repro.staged.simulator import StagedTrace, simulate_staged

__all__ = [
    "CutPolicy",
    "NaiveStagedPolicy",
    "Pipeline",
    "Stage",
    "StagedPolicy",
    "StagedTrace",
    "choose_best_cut",
    "simulate_staged",
]
