"""Scheduling policies over maintenance pipelines.

A staged policy decides, each time step, a *propagation depth* per
opportunity: flush the first ``c`` queues through their stages (outputs
pile up in queue ``c``), or do nothing.  When the pre-action state is full
(flushing everything would exceed ``C``), the policy must act so the
post-action state is refreshable within the budget; the simulator enforces
this exactly like :mod:`repro.core.simulator` does for the table-level
problem.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.staged.model import Pipeline

_EPS = 1e-9


class StagedPolicy(ABC):
    """Base class for pipeline scheduling policies."""

    def reset(self, pipeline: Pipeline, limit: float) -> None:
        """Bind to the instance (called by the simulator before t = 0)."""
        self.pipeline = pipeline
        self.limit = float(limit)

    def is_full(self, state) -> bool:
        """Whether ``state``'s flush cost exceeds the constraint."""
        return self.pipeline.flush_cost(state) > self.limit + _EPS

    @abstractmethod
    def decide(self, t: int, state: tuple[int, ...]) -> int:
        """Propagation depth for this step: flush queues ``0..depth-1``
        through their stages (0 = do nothing, ``pipeline.depth`` = full
        flush to the view)."""


class NaiveStagedPolicy(StagedPolicy):
    """Whole-pipeline batching: flush everything only when forced.

    The single-table NAIVE baseline lifted to pipelines: all modifications
    wait at the entrance, and a violation triggers a complete flush.
    """

    def decide(self, t: int, state: tuple[int, ...]) -> int:
        if self.is_full(state):
            return self.pipeline.depth
        return 0

    def __repr__(self) -> str:
        return "NaiveStagedPolicy()"


class CutPolicy(StagedPolicy):
    """Eagerly propagate through a prefix; batch at the cut.

    Every step, queues ``0..cut-1`` are pushed through their (cheap,
    linear) stages so tuples accumulate in front of stage ``cut`` -- the
    batch-friendly operator.  When the state still becomes full, the whole
    pipeline is flushed.  ``cut = 0`` degenerates to
    :class:`NaiveStagedPolicy`.
    """

    def __init__(self, cut: int):
        if cut < 0:
            raise ValueError(f"cut must be >= 0, got {cut}")
        self.cut = cut

    def reset(self, pipeline: Pipeline, limit: float) -> None:
        super().reset(pipeline, limit)
        if self.cut > pipeline.depth:
            raise ValueError(
                f"cut {self.cut} deeper than pipeline ({pipeline.depth})"
            )

    def decide(self, t: int, state: tuple[int, ...]) -> int:
        if self.is_full(state):
            return self.pipeline.depth
        if self.cut and any(state[: self.cut]):
            return self.cut
        return 0

    def __repr__(self) -> str:
        return f"CutPolicy(cut={self.cut})"


def choose_best_cut(
    pipeline: Pipeline,
    limit: float,
    arrivals,
) -> tuple[int, float]:
    """Pick the cut position with the lowest simulated total cost.

    Simulates :class:`CutPolicy` for every cut in ``0..depth`` over the
    given arrival sequence and returns ``(best_cut, best_cost)``.  This is
    the simple planner the paper's future-work remark suggests: the search
    space is just the pipeline depth.
    """
    from repro.staged.simulator import simulate_staged

    best_cut, best_cost = 0, float("inf")
    for cut in range(pipeline.depth + 1):
        trace = simulate_staged(pipeline, limit, arrivals, CutPolicy(cut))
        if trace.total_cost < best_cost - _EPS:
            best_cut, best_cost = cut, trace.total_cost
    return best_cut, best_cost
