"""Simulation of staged maintenance over an arrival sequence.

Mirrors :func:`repro.core.simulator.simulate_policy` for pipelines: new
modifications land in queue 0 each step, the policy picks a propagation
depth, the constraint is enforced on every post-action state, and the
horizon ends with a forced full flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.obs import slo
from repro.core.policies import PolicyError
from repro.staged.model import Pipeline
from repro.staged.policies import StagedPolicy

_EPS = 1e-9


@dataclass
class StagedTrace:
    """Execution record of one staged-maintenance run."""

    total_cost: float
    action_costs: tuple[float, ...]
    depths: tuple[int, ...]
    states: tuple[tuple[int, ...], ...]  # post-action states
    peak_flush_cost: float

    @property
    def horizon(self) -> int:
        """The refresh time covered."""
        return len(self.depths) - 1

    @property
    def propagation_count(self) -> int:
        """Steps with a non-zero propagation."""
        return sum(1 for d in self.depths if d)


def simulate_staged(
    pipeline: Pipeline,
    limit: float,
    arrivals: Sequence[int],
    policy: StagedPolicy,
) -> StagedTrace:
    """Run ``policy`` over the arrival sequence; view refreshed at the end.

    ``arrivals[t]`` modifications enter queue 0 at step ``t``.  Raises
    :class:`~repro.core.policies.PolicyError` when a post-action state's
    flush cost exceeds ``limit`` before the horizon.
    """
    if not arrivals:
        raise ValueError("arrival sequence must cover at least one step")
    if limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")
    policy.reset(pipeline, limit)
    recorder = obs.get_recorder()  # per-step SLO hooks gate on it
    state = pipeline.zero_state()
    horizon = len(arrivals) - 1
    action_costs: list[float] = []
    depths: list[int] = []
    states: list[tuple[int, ...]] = []
    total = 0.0
    peak = 0.0
    for t, arriving in enumerate(arrivals):
        if arriving < 0:
            raise ValueError(f"negative arrivals at t={t}")
        entry = list(state)
        entry[0] += int(arriving)
        pre = tuple(entry)
        if recorder is not None:
            slo.observe_refresh(
                limit, pipeline.flush_cost(pre), t=t, source="staged"
            )
        if t == horizon:
            depth = pipeline.depth  # forced refresh
        else:
            depth = int(policy.decide(t, pre))
            if not 0 <= depth <= pipeline.depth:
                raise PolicyError(
                    f"{policy!r} at t={t}: depth {depth} outside "
                    f"[0, {pipeline.depth}]"
                )
        state, cost = pipeline.propagate(pre, depth)
        if t < horizon and pipeline.flush_cost(state) > limit + _EPS:
            raise PolicyError(
                f"{policy!r} at t={t}: post-action state {state} not "
                f"refreshable within C={limit}"
            )
        total += cost
        action_costs.append(cost)
        depths.append(depth)
        states.append(state)
        peak = max(peak, pipeline.flush_cost(state))
    return StagedTrace(
        total_cost=total,
        action_costs=tuple(action_costs),
        depths=tuple(depths),
        states=tuple(states),
        peak_flush_cost=peak,
    )
