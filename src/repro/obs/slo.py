"""Refresh-SLO tracking: the paper's deadline margin as live metrics.

The paper's operational guarantee is that the view must stay refreshable
within the response-time constraint ``C`` at every step -- equivalently,
the *refresh-deadline margin* ``C - f(s_t)`` must stay non-negative.
This module turns that quantity into a first-class ``slo.*`` metric
family, recorded wherever a refresh cost meets its limit (the core
simulator, the staged simulator, the pub/sub broker):

| name | kind | meaning |
|---|---|---|
| ``slo.limit`` | G | the constraint ``C`` in effect |
| ``slo.refresh_margin`` | G | current margin ``C - f(s_t)`` (negative = breach) |
| ``slo.refresh_margin.step`` | H | per-step margin distribution |
| ``slo.steps`` | C | margin observations |
| ``slo.breaches`` | C | steps whose refresh cost exceeded ``C`` |
| ``slo.near_breaches`` | C | steps within the near-breach band (cost >= ``near_fraction * C``, default 0.9, but still within ``C``) |

Metrics are recorded only when a recorder is installed (the usual
no-op-when-disabled contract).  **Alert callbacks** registered with
:func:`on_alert` fire on every breach / near-breach regardless of
recording, so a pub/sub deployment can page without paying for metrics.
Classification (:func:`classify`) is shared with the offline per-policy
SLO summary in :func:`repro.core.report.slo_summary`, so the live
counters and the post-run table can never disagree.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.metrics import MetricsRegistry

#: Near-breach band: cost at or above this fraction of the limit.
DEFAULT_NEAR_FRACTION = 0.9

_EPS = 1e-9

BREACH = "breach"
NEAR_BREACH = "near_breach"


@dataclass(frozen=True)
class SloEvent:
    """One breach or near-breach of the refresh-deadline constraint."""

    kind: str  # BREACH or NEAR_BREACH
    limit: float
    cost: float
    t: int | None = None
    source: str = ""

    @property
    def margin(self) -> float:
        """The deadline margin ``C - f(s_t)`` (negative on a breach)."""
        return self.limit - self.cost

    def __str__(self) -> str:
        where = f" t={self.t}" if self.t is not None else ""
        who = f" [{self.source}]" if self.source else ""
        return (
            f"SLO {self.kind}{who}{where}: refresh cost {self.cost:.2f} "
            f"vs C={self.limit:.2f} (margin {self.margin:+.2f})"
        )


class AlertHub:
    """A thread-safe callback registry for alert events.

    The shared plumbing behind the ``slo.*`` alert surface and the
    planner-calibration drift alerts (:mod:`repro.obs.calibration`):
    register with :meth:`add` (decorator-friendly), scope to a ``with``
    block via :meth:`scoped`, and :meth:`fire` delivers an event to
    every registered callback inline on the observing thread -- keep
    callbacks fast and non-raising.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._callbacks: list[Callable] = []

    def add(self, callback: Callable) -> Callable:
        with self._lock:
            self._callbacks.append(callback)
        return callback

    def remove(self, callback: Callable) -> None:
        """Unregister a callback (no error if it was never registered)."""
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    @contextmanager
    def scoped(self, callback: Callable) -> Iterator[None]:
        self.add(callback)
        try:
            yield
        finally:
            self.remove(callback)

    def active(self) -> bool:
        """True when at least one callback would observe a fire."""
        with self._lock:
            return bool(self._callbacks)

    def fire(self, event) -> None:
        with self._lock:
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(event)


_hub = AlertHub()


def on_alert(callback: Callable[[SloEvent], None]) -> Callable[[SloEvent], None]:
    """Register ``callback`` to run on every breach/near-breach event.

    Returns the callback (usable as a decorator).  Callbacks run inline
    on the observing thread; keep them fast and non-raising.
    """
    return _hub.add(callback)


def remove_alert(callback: Callable[[SloEvent], None]) -> None:
    """Unregister a callback (no error if it was never registered)."""
    _hub.remove(callback)


def alerts(callback: Callable[[SloEvent], None]):
    """Scope a callback registration to a ``with`` block (tests, scripts)."""
    return _hub.scoped(callback)


def hub_active() -> bool:
    """True when at least one alert callback is registered.

    Observers that must pay to *produce* an observation (the live
    maintainer evaluates cost functions per round) use this to skip the
    work when neither a recorder nor any alert subscriber would see it.
    """
    return _hub.active()


_invalid_limit_warned = False


def _coerce_limit(limit: float) -> float:
    """Clamp a non-positive constraint to 0.0, warning once per process.

    A zero or negative deadline is a configuration error: no refresh can
    beat it.  The old behavior silently disabled the near-breach band
    (``limit > 0`` guarded the whole branch), which turned exactly the
    misconfigured runs -- the ones a controller most needs to see --
    into dark signals.  Clamping to 0 keeps the classification total:
    any positive cost is a breach, and a zero cost sits on the (empty)
    band boundary and reports ``NEAR_BREACH``, so downstream consumers
    always hear about a run with no headroom at all.
    """
    global _invalid_limit_warned
    if limit > 0:
        return float(limit)
    if not _invalid_limit_warned:
        _invalid_limit_warned = True
        warnings.warn(
            f"SLO limit {limit!r} is not positive; clamping to 0.0 "
            f"(every observation will classify as a breach or "
            f"near-breach -- fix the constraint C)",
            RuntimeWarning,
            stacklevel=3,
        )
    return 0.0


def classify(
    limit: float, cost: float, near_fraction: float = DEFAULT_NEAR_FRACTION
) -> str | None:
    """``BREACH``, ``NEAR_BREACH``, or ``None`` for one cost vs limit.

    A non-positive ``limit`` is clamped to 0.0 with a one-shot warning
    (see :func:`_coerce_limit`); the near-breach band then degenerates
    to the single point 0, so the signal never goes dark.
    """
    limit = _coerce_limit(limit)
    if cost > limit + _EPS:
        return BREACH
    if cost >= near_fraction * limit - _EPS:
        return NEAR_BREACH
    return None


def observe_refresh(
    limit: float,
    cost: float,
    t: int | None = None,
    source: str = "",
    near_fraction: float = DEFAULT_NEAR_FRACTION,
) -> SloEvent | None:
    """Record one refresh-cost-vs-limit observation.

    Feeds the ``slo.*`` metric family (when a recorder is installed) and
    fires registered alert callbacks on a breach or near-breach.
    Returns the event when one fired, else ``None``.
    """
    from repro import obs  # local import: obs.__init__ imports this module

    limit = _coerce_limit(limit)
    margin = limit - cost
    recorder = obs.get_recorder()
    if recorder is not None:
        recorder.gauge("slo.limit", limit)
        recorder.gauge("slo.refresh_margin", margin)
        recorder.observe("slo.refresh_margin.step", margin)
        recorder.counter("slo.steps")
    kind = classify(limit, cost, near_fraction)
    if kind is None:
        return None
    if recorder is not None:
        recorder.counter(
            "slo.breaches" if kind == BREACH else "slo.near_breaches"
        )
    event = SloEvent(
        kind=kind, limit=float(limit), cost=float(cost), t=t, source=source
    )
    _hub.fire(event)
    return event


def summarize(registry: MetricsRegistry) -> dict:
    """The ``slo.*`` family of one registry as a plain summary dict."""

    def counter(name: str) -> int:
        metric = registry.get(name)
        return metric.value if metric is not None else 0

    margin = registry.get("slo.refresh_margin")
    dist = registry.get("slo.refresh_margin.step")
    return {
        "steps": counter("slo.steps"),
        "breaches": counter("slo.breaches"),
        "near_breaches": counter("slo.near_breaches"),
        "limit": (
            registry.get("slo.limit").value
            if registry.get("slo.limit") is not None
            else None
        ),
        "current_margin": margin.value if margin is not None else None,
        "min_margin": (
            dist.min if dist is not None and dist.count else None
        ),
    }
