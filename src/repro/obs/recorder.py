"""The :class:`Recorder`: one run's metrics + trace, thread-local install.

Design constraints, in order:

1. **Disabled must cost ~nothing.**  The default state is *no recorder
   installed*; every instrumentation helper in :mod:`repro.obs` then
   reduces to one thread-local attribute miss and a ``return``, and
   ``obs.trace(...)`` hands back a shared stateless null span.  Hot loops
   (A* expansion, per-tuple operators) additionally batch their tallies
   locally and emit one metric call per region, so even *enabled*
   recording stays off the per-row path.
2. **One object owns a run.**  A ``Recorder`` bundles a
   :class:`~repro.obs.metrics.MetricsRegistry` and (optionally) a trace
   buffer plus the monotonic time origin, so concurrent runs (tests,
   benchmark harnesses) cannot bleed into each other.
3. **Thread-local install.**  ``obs.install(recorder)`` binds the
   recorder to the calling thread only; worker threads opt in explicitly.
   Span parenting uses a per-thread stack inside the recorder, so spans
   opened on different threads never corrupt each other's nesting.
"""

from __future__ import annotations

import itertools
import threading
import time
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    Span,
    TraceBuffer,
    metric_events,
    span_event,
    write_jsonl,
)


class Recorder:
    """Collects one run's metrics and (optionally) trace spans.

    Parameters
    ----------
    trace:
        When true, spans are recorded as Chrome-trace events (metrics are
        always on for an installed recorder -- they are cheap).  Span
        wall-clock durations additionally feed ``<span-name>.ms``
        histograms in the registry either way, so a ``--metrics``-only run
        still reports phase timings.
    """

    def __init__(self, trace: bool = False):
        self.trace_enabled = bool(trace)
        self.registry = MetricsRegistry()
        self.events = TraceBuffer()
        self._origin = time.perf_counter()
        self._span_ids = itertools.count(1)
        self._tls = threading.local()

    # -- time ---------------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since this recorder was created (trace timebase)."""
        return (time.perf_counter() - self._origin) * 1e6

    # -- metrics ------------------------------------------------------------

    def counter(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def gauge_max(self, name: str, value: float) -> None:
        self.registry.gauge(name).set_max(value)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    # -- spans --------------------------------------------------------------

    def span(self, name: str, **args: Any) -> Span:
        return Span(self, name, args)

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _open_span(self, span: Span) -> None:
        stack = self._stack()
        span.id = next(self._span_ids)
        span.parent = stack[-1].id if stack else None
        span.tid = threading.get_ident() % 1_000_000
        stack.append(span)

    def _close_span(self, span: Span, duration_s: float) -> None:
        stack = self._stack()
        # Tolerate exits out of order (generators finalized late): unwind
        # to this span rather than corrupting the remaining stack.
        while stack:
            top = stack.pop()
            if top is span:
                break
        dur_us = duration_s * 1e6
        self.observe(f"{span.name}.ms", duration_s * 1e3)
        if self.trace_enabled:
            self.events.append(
                span_event(span, self.now_us() - dur_us, dur_us)
            )

    # -- export -------------------------------------------------------------

    def trace_events(self, include_metrics: bool = True) -> list[dict]:
        """Finished span events, plus counter events for the metrics."""
        events = self.events.events()
        if include_metrics:
            events.extend(metric_events(self.registry.snapshot(), self.now_us()))
        return events

    def write_trace(self, path: str | Path) -> int:
        """Dump the run as Chrome-trace JSONL; returns the event count."""
        return write_jsonl(self.trace_events(), path)

    def summary_table(self) -> str:
        return self.registry.summary_table()

    def prometheus(self) -> str:
        """The registry as Prometheus text exposition (see ``obs.export``)."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self.registry)

    # -- worker threads -----------------------------------------------------

    def wrap(self, fn):
        """A callable running ``fn`` with this recorder installed.

        Hand the result to ``ThreadPoolExecutor.submit``/``map`` so pooled
        workers record into this run; see ``obs.install_in_thread``.
        """
        import functools

        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            from repro import obs

            with obs.install_in_thread(self):
                return fn(*args, **kwargs)

        return wrapped

    def __repr__(self) -> str:
        return (
            f"Recorder(metrics={len(self.registry)}, "
            f"spans={len(self.events)}, trace={self.trace_enabled})"
        )
