"""Zero-dependency metrics: counters, gauges, and quantile histograms.

Metrics live in a :class:`MetricsRegistry` under dotted names
(``astar.expanded``, ``engine.join.rows_out``, ``ivm.flush.cost_ms``).
The registry is deliberately tiny -- no labels, no exporters, no
background threads -- because its job here is narrow: give every layer of
the reproduction one uniform place to record what it did, cheap enough to
leave compiled into the hot paths.

Three metric kinds:

* :class:`Counter` -- a monotonically increasing integer (events, rows).
* :class:`Gauge` -- a last-write-wins float (peak heap size, backlog).
* :class:`Histogram` -- a value distribution with ``p50``/``p95``/``max``
  summaries (batch sizes, per-step latencies).  Bounded by reservoir
  sampling so unboundedly long runs cannot exhaust memory; counts and
  totals stay exact, quantiles become approximate past the reservoir.

Every mutation and snapshot takes a per-metric lock, so a registry can be
written by worker threads (``obs.install_in_thread``) and scraped live by
the ``/metrics`` endpoint mid-run without torn reads.  The locks are
uncontended in single-threaded runs and hot loops batch their tallies, so
the enabled path stays within the observability overhead budget.
"""

from __future__ import annotations

import math
import random
import re
import threading
from typing import Iterator

#: Dotted metric names: segments of letters/digits/underscores/dashes.
_NAME_RE = re.compile(r"^[A-Za-z0-9_-]+(\.[A-Za-z0-9_-]+)*$")

#: Histogram reservoir size.  Exact quantiles up to this many samples.
RESERVOIR_SIZE = 8192

#: The quantiles every summary surface reports.  Shared by
#: :meth:`Histogram.snapshot` (hence ``/snapshot``) and the Prometheus
#: renderer in :mod:`repro.obs.export`, so the two exposition paths can
#: never drift apart.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def check_name(name: str) -> str:
    """Validate a dotted metric name; returns it unchanged."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"bad metric name {name!r}: want dotted segments like "
            f"'astar.expanded'"
        )
    return name


class Counter:
    """Monotonically increasing event count."""

    kind = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative inc {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value, with the running peak."""

    kind = "gauge"
    __slots__ = ("name", "value", "peak", "_set", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = float("-inf")
        self._set = False
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.peak = value if not self._set else max(self.peak, value)
            self.value = value
            self._set = True

    def set_max(self, value: float) -> None:
        """Keep the maximum of all reported values (peak tracking)."""
        value = float(value)
        if not self._set or value > self.value:
            self.set(value)

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value if self._set else None,
            "peak": self.peak if self._set else None,
        }


class Histogram:
    """Value distribution with exact count/total and sampled quantiles."""

    kind = "histogram"
    __slots__ = (
        "name", "count", "total", "min", "max",
        "_reservoir", "_reservoir_size", "_rng", "_lock",
    )

    def __init__(self, name: str, reservoir_size: int = RESERVOIR_SIZE):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(0xC0FFEE)  # deterministic sampling
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                # Vitter's algorithm R: keep each sample with prob size/count.
                j = self._rng.randrange(self.count)
                if j < self._reservoir_size:
                    self._reservoir[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the (possibly sampled) values."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            ordered = sorted(self._reservoir)
        if not ordered:
            return 0.0
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict:
        if not self.count:
            return {"type": "histogram", "count": 0}
        out = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out


class MetricsRegistry:
    """Name-addressed store of metrics, the per-:class:`Recorder` root."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            check_name(name)
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory(name)
                    self._metrics[name] = metric
        if not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {factory.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Look up a metric without creating it."""
        return self._metrics.get(name)

    def remove_prefix(self, prefix: str) -> int:
        """Drop every metric under a dotted prefix; returns the count.

        Matching follows :meth:`names`: the prefix itself plus anything
        below it.  Used when a metric family's owner goes away (e.g. a
        view is dropped from the coordinator) so long-lived registries do
        not accumulate dead series.
        """
        dotted = prefix if prefix.endswith(".") else prefix + "."
        with self._lock:
            doomed = [
                n
                for n in self._metrics
                if n == prefix or n.startswith(dotted)
            ]
            for name in doomed:
                del self._metrics[name]
        return len(doomed)

    def names(self, prefix: str = "") -> list[str]:
        """Sorted metric names, optionally restricted to a dotted prefix."""
        with self._lock:
            names = list(self._metrics)
        if not prefix:
            return sorted(names)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(
            n for n in names if n == prefix or n.startswith(dotted)
        )

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        for name in self.names():
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-serializable state of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def summary_table(self) -> str:
        """Fixed-width human-readable table of every metric."""
        header = (
            f"{'metric':<44s} {'type':<9s} {'count':>8s} {'value':>12s} "
            f"{'p50':>10s} {'p95':>10s} {'max':>10s}"
        )
        lines = [header, "-" * len(header)]
        for metric in self:
            if isinstance(metric, Counter):
                lines.append(
                    f"{metric.name:<44s} {'counter':<9s} {'':>8s} "
                    f"{metric.value:>12d} {'':>10s} {'':>10s} {'':>10s}"
                )
            elif isinstance(metric, Gauge):
                value = "-" if not metric._set else f"{metric.value:.3f}"
                peak = "-" if not metric._set else f"{metric.peak:.3f}"
                lines.append(
                    f"{metric.name:<44s} {'gauge':<9s} {'':>8s} {value:>12s} "
                    f"{'':>10s} {'':>10s} {peak:>10s}"
                )
            else:
                if metric.count:
                    p50, p95 = metric.quantile(0.5), metric.quantile(0.95)
                    lines.append(
                        f"{metric.name:<44s} {'histogram':<9s} "
                        f"{metric.count:>8d} {metric.mean:>12.3f} "
                        f"{p50:>10.3f} {p95:>10.3f} {metric.max:>10.3f}"
                    )
                else:
                    lines.append(
                        f"{metric.name:<44s} {'histogram':<9s} {0:>8d} "
                        f"{'-':>12s} {'-':>10s} {'-':>10s} {'-':>10s}"
                    )
        return "\n".join(lines)
