"""Flight recorder: periodic registry snapshots in a bounded ring buffer.

The metrics registry only answers "what happened so far"; backlog-vs-time
curves, SLO-margin timelines and scrape-free postmortems need "what was
the state at each moment".  :class:`FlightRecorder` runs a daemon thread
that snapshots a :class:`~repro.obs.recorder.Recorder`'s registry every
``interval_s`` seconds into a ``deque(maxlen=capacity)`` -- a true ring
buffer, so arbitrarily long runs keep the most recent window at a fixed
memory bound instead of growing without limit.

Samples are plain dicts ``{"t_s": <seconds since recorder creation>,
"metrics": <registry snapshot>}`` and dump as JSONL
(:meth:`FlightRecorder.dump_jsonl`), so plotting a metric over time is a
``read_jsonl`` + list comprehension away -- no bespoke experiment code.
The CLI's ``--flight-recorder FILE`` flag wires one around any
subcommand; the ``/samples`` endpoint of
:class:`~repro.obs.serve.MetricsServer` serves the live buffer.
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from pathlib import Path

from repro.obs.recorder import Recorder
from repro.obs.tracing import write_jsonl

#: Default sampling period (seconds).
DEFAULT_INTERVAL_S = 0.05

#: Default ring-buffer capacity (samples).
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Samples a recorder's registry on a fixed period into a ring buffer.

    Use as a context manager, or call :meth:`start`/:meth:`stop`
    explicitly.  :meth:`sample_now` takes one synchronous sample and is
    all the tests and deterministic tooling need -- the background thread
    is just ``sample_now`` on a timer.
    """

    def __init__(
        self,
        recorder: Recorder,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.recorder = recorder
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self._samples: deque[dict] = deque(maxlen=capacity)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling -----------------------------------------------------------

    def sample_now(self) -> dict:
        """Take one snapshot immediately; returns the stored sample."""
        sample = {
            "t_s": round(self.recorder.now_us() / 1e6, 6),
            "metrics": self.recorder.registry.snapshot(),
        }
        self._samples.append(sample)
        return sample

    def start(self) -> "FlightRecorder":
        """Begin background sampling (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-flight-recorder", daemon=True
        )
        self._thread.start()
        return self

    #: How long :meth:`stop` waits for the sampler thread to exit before
    #: declaring it leaked.  Class attribute so tests (and unusual
    #: deployments) can tighten it.
    JOIN_TIMEOUT_S = 5.0

    def stop(self, final_sample: bool = True) -> None:
        """Stop the sampler thread; optionally take one last snapshot.

        Idempotent: only the call that actually stops the thread takes
        the final sample (which makes short runs that finish inside the
        first interval still leave evidence behind); subsequent calls --
        or a stop without a start -- do nothing.  A thread that fails to
        exit within :attr:`JOIN_TIMEOUT_S` is reported as a
        :class:`RuntimeWarning` instead of being silently abandoned.
        """
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=self.JOIN_TIMEOUT_S)
        self._thread = None
        if thread.is_alive():
            warnings.warn(
                f"flight-recorder sampler thread {thread.name!r} did not "
                f"exit within {self.JOIN_TIMEOUT_S}s; a daemon thread may "
                f"be leaked",
                RuntimeWarning,
                stacklevel=2,
            )
        if final_sample:
            self.sample_now()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_now()

    def __enter__(self) -> "FlightRecorder":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> list[dict]:
        """The buffered samples, oldest first."""
        return list(self._samples)

    def series(self, name: str, field: str = "value") -> list[tuple[float, float]]:
        """``(t_s, metrics[name][field])`` pairs across the buffer.

        ``field`` picks the snapshot key: ``"value"`` for counters and
        gauges, ``"count"``/``"mean"``/``"p50"``/``"p95"``/``"max"`` for
        histograms.  Samples missing the metric or the field are skipped,
        so a series can start mid-run.
        """
        points: list[tuple[float, float]] = []
        for sample in self._samples:
            state = sample["metrics"].get(name)
            if state is None:
                continue
            value = state.get(field)
            if value is None:
                continue
            points.append((sample["t_s"], value))
        return points

    def dump_jsonl(self, path: str | Path) -> int:
        """Write the buffer as JSONL (one sample per line); returns count."""
        return write_jsonl(self.samples(), path)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(samples={len(self._samples)}/{self.capacity}, "
            f"interval_s={self.interval_s})"
        )
