"""Span tracing with Chrome-trace-compatible JSONL export.

A *span* is a named, timed region of execution -- ``astar.search``,
``ivm.flush``, ``engine.execute`` -- opened with
:func:`repro.obs.trace` as a context manager.  Spans nest: each records
its parent (the innermost span open on the same thread), so a trace file
reconstructs the full call structure of a run.

Export is one JSON object per line (JSONL).  Every span becomes a Chrome
"complete" event -- ``{"ph": "X", "ts": <start µs>, "dur": <µs>, ...}`` --
so the file loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev (wrap the lines in a JSON array, or load the
``.jsonl`` as-is in Perfetto which accepts newline-separated events).
Metric values are appended as Chrome "counter" events (``"ph": "C"``).
Extra fields (``id``, ``parent``) are ignored by the viewers but give
tests and tools exact parenting without timestamp heuristics.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Iterable


class Span:
    """One open traced region; records itself on exit.

    Created by :meth:`repro.obs.Recorder.span` -- not directly.  Extra
    attributes discovered mid-region (row counts, result sizes) attach via
    :meth:`set` and land in the event's ``args``.
    """

    __slots__ = ("_recorder", "name", "args", "id", "parent", "tid", "_start")

    def __init__(self, recorder, name: str, args: dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.args = args
        self.id = 0
        self.parent: int | None = None
        self.tid = 0
        self._start = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) event attributes; chainable."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._recorder._open_span(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_s = time.perf_counter() - self._start
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._recorder._close_span(self, duration_s)


class NullSpan:
    """Shared no-op span handed out when no recorder is installed.

    Stateless and reentrant, so one module-level instance serves every
    disabled ``with obs.trace(...)`` block at zero allocation cost.
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = NullSpan()


class TraceBuffer:
    """Thread-safe accumulator of finished trace events."""

    def __init__(self):
        self._events: list[dict] = []
        self._lock = threading.Lock()

    def append(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[dict]:
        """The recorded events, ordered by completion time."""
        with self._lock:
            return list(self._events)


def span_event(span: Span, start_us: float, dur_us: float) -> dict:
    """The Chrome-trace "complete" event for a finished span."""
    return {
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ph": "X",
        "ts": round(start_us, 1),
        "dur": round(dur_us, 1),
        "pid": 0,
        "tid": span.tid,
        "id": span.id,
        "parent": span.parent,
        "args": span.args,
    }


def metric_events(snapshot: dict[str, dict], ts_us: float) -> list[dict]:
    """Chrome-trace "counter" events for a metrics-registry snapshot."""
    events = []
    for name, state in snapshot.items():
        args = {k: v for k, v in state.items() if k != "type" and v is not None}
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "C",
                "ts": round(ts_us, 1),
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    return events


def write_jsonl(events: Iterable[dict], path: str | Path) -> int:
    """Write events one-JSON-object-per-line; returns the event count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file back into event dicts (tests, tooling)."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: bad JSONL: {exc}") from exc
    return events
