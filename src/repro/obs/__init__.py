"""``repro.obs`` -- metrics, span tracing, and profiling hooks.

The reproduction's uniform self-observation layer.  Every other package
(``core``, ``engine``, ``ivm``, the CLI, the benchmarks) reports what it
does through the module-level helpers here:

    from repro import obs

    with obs.trace("astar.search", horizon=T):   # nested wall-clock span
        ...
        obs.counter("astar.expanded", expanded)  # monotone event count
        obs.gauge_max("astar.heap_peak", size)   # peak instantaneous value
        obs.observe("simulator.decide_ms", dt)   # distribution (p50/p95/max)

By default **nothing is recorded**: no recorder is installed, every
helper is a thread-local miss plus ``return``, and ``trace`` returns a
shared no-op span.  A run opts in by installing a :class:`Recorder`
(the CLI's global ``--trace FILE`` / ``--metrics`` flags do this, as does
the benchmark harness), after which metrics accumulate in a registry and
-- when tracing is on -- spans are exported as Chrome-trace-compatible
JSONL via :meth:`Recorder.write_trace`.

See ``docs/observability.md`` for the metric-name catalog and the trace
file format.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs import attrib
from repro.obs import slo
from repro.obs import calibration
from repro.obs import decisions
from repro.obs.export import prometheus_name, render_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_name,
)
from repro.obs.recorder import Recorder
from repro.obs.sampler import FlightRecorder
from repro.obs.serve import MetricsServer
from repro.obs.tracing import (
    NULL_SPAN,
    NullSpan,
    Span,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NullSpan",
    "Recorder",
    "Span",
    "attrib",
    "calibration",
    "check_name",
    "counter",
    "decisions",
    "gauge",
    "gauge_max",
    "get_recorder",
    "install",
    "install_in_thread",
    "observe",
    "prometheus_name",
    "read_jsonl",
    "recording",
    "render_prometheus",
    "slo",
    "trace",
    "write_jsonl",
]

_active = threading.local()


def install(recorder: Recorder | None) -> None:
    """Bind ``recorder`` to the calling thread (``None`` uninstalls)."""
    _active.recorder = recorder


def get_recorder() -> Recorder | None:
    """The calling thread's recorder, or ``None`` when observation is off."""
    return getattr(_active, "recorder", None)


@contextmanager
def recording(trace: bool = False) -> Iterator[Recorder]:
    """Install a fresh :class:`Recorder` for the duration of a block.

    The previous recorder (usually none) is restored on exit, so
    recordings nest safely -- the inner block simply shadows the outer.
    """
    previous = get_recorder()
    recorder = Recorder(trace=trace)
    install(recorder)
    try:
        yield recorder
    finally:
        install(previous)


@contextmanager
def install_in_thread(recorder: Recorder | None) -> Iterator[Recorder | None]:
    """Adopt an existing recorder on the calling (worker) thread.

    ``obs.install`` binds per-thread, so work submitted to a thread pool
    records nothing unless each worker opts in.  Wrap the worker body::

        rec = obs.get_recorder()          # on the submitting thread
        def work(item):
            with obs.install_in_thread(rec):
                ...                        # obs.* helpers now record
        pool.map(work, items)

    The previous binding (usually none -- pool threads start clean) is
    restored on exit, so adoption nests and pooled threads can serve
    differently-observed runs back to back.  The metric classes lock
    their own state, so concurrent workers may share one recorder.
    :meth:`Recorder.wrap` packages this pattern around a callable.
    """
    previous = get_recorder()
    install(recorder)
    try:
        yield recorder
    finally:
        install(previous)


# ----------------------------------------------------------------------
# Instrumentation helpers: no-ops unless a recorder is installed.
# ----------------------------------------------------------------------


def counter(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` by ``amount``."""
    recorder = getattr(_active, "recorder", None)
    if recorder is not None:
        recorder.counter(name, amount)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value``."""
    recorder = getattr(_active, "recorder", None)
    if recorder is not None:
        recorder.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to ``value`` if it is a new peak."""
    recorder = getattr(_active, "recorder", None)
    if recorder is not None:
        recorder.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name``."""
    recorder = getattr(_active, "recorder", None)
    if recorder is not None:
        recorder.observe(name, value)


def trace(name: str, **args: Any) -> Span | NullSpan:
    """A context manager recording a nested wall-clock span.

    With no recorder installed this returns a shared stateless no-op, so
    ``with obs.trace(...)`` costs one attribute miss on the disabled path.
    """
    recorder = getattr(_active, "recorder", None)
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **args)
