"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

Renders the registry in the classic Prometheus text format (version
0.0.4), the one every scraper and ``curl`` understands:

* :class:`~repro.obs.metrics.Counter` -> a ``counter`` sample with the
  conventional ``_total`` suffix;
* :class:`~repro.obs.metrics.Gauge` -> a ``gauge`` sample plus a
  ``<name>_peak`` companion gauge (unset gauges are omitted);
* :class:`~repro.obs.metrics.Histogram` -> a ``summary`` family:
  the shared :data:`~repro.obs.metrics.SUMMARY_QUANTILES`
  (``p50``/``p95``/``p99``) as ``quantile``-labelled samples, exact
  ``_sum`` and ``_count``, plus ``_min``/``_max`` companion gauges.  An
  empty histogram renders only ``_sum 0`` and ``_count 0`` (no quantiles
  -- there is no distribution to summarize yet).

Dotted metric names map to the Prometheus grammar by replacing every
character outside ``[a-zA-Z0-9_:]`` with ``_`` (``slo.refresh_margin``
becomes ``slo_refresh_margin``).  The mapping is not guaranteed
injective in general, but the repository's dotted catalog never
collides; :func:`render_prometheus` raises on a collision rather than
silently merging two metrics.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import (
    SUMMARY_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Characters allowed in a Prometheus metric name (after the first).
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def prometheus_name(name: str) -> str:
    """The dotted metric name mapped onto the Prometheus grammar."""
    flat = _INVALID_CHARS.sub("_", name)
    if not flat or flat[0].isdigit():
        flat = "_" + flat
    return flat


def format_value(value: float) -> str:
    """One sample value in exposition syntax (``+Inf``/``-Inf``/``NaN``)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _family(lines: list[str], name: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus text exposition (0.0.4)."""
    lines: list[str] = []
    seen: dict[str, str] = {}
    for metric in registry:
        base = prometheus_name(metric.name)
        clash = seen.get(base)
        if clash is not None:
            raise ValueError(
                f"metrics {clash!r} and {metric.name!r} both map to "
                f"Prometheus name {base!r}"
            )
        seen[base] = metric.name
        help_text = f"repro metric {metric.name!r}"
        if isinstance(metric, Counter):
            _family(lines, f"{base}_total", "counter", help_text)
            lines.append(f"{base}_total {format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            state = metric.snapshot()
            if state["value"] is None:
                continue  # never set: nothing meaningful to expose
            _family(lines, base, "gauge", help_text)
            lines.append(f"{base} {format_value(state['value'])}")
            _family(lines, f"{base}_peak", "gauge", help_text + " (peak)")
            lines.append(f"{base}_peak {format_value(state['peak'])}")
        elif isinstance(metric, Histogram):
            _family(lines, base, "summary", help_text)
            if metric.count:
                for q in SUMMARY_QUANTILES:
                    lines.append(
                        f'{base}{{quantile="{q}"}} '
                        f"{format_value(metric.quantile(q))}"
                    )
            lines.append(f"{base}_sum {format_value(metric.total)}")
            lines.append(f"{base}_count {format_value(metric.count)}")
            if metric.count:
                _family(lines, f"{base}_min", "gauge", help_text + " (min)")
                lines.append(f"{base}_min {format_value(metric.min)}")
                _family(lines, f"{base}_max", "gauge", help_text + " (max)")
                lines.append(f"{base}_max {format_value(metric.max)}")
        else:  # pragma: no cover - registry only holds the three kinds
            raise TypeError(f"unknown metric kind: {metric!r}")
    return "\n".join(lines) + "\n" if lines else ""
