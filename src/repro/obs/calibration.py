"""Cost-model calibration: predicted-vs-actual flush residuals.

The planner schedules against the staircase ``f_i(k)`` cost families;
execution charges the simulated operation counter.  This module closes
the loop between them: every per-table flush the IVM maintainer runs
reports ``(predicted f_i(k), actual simulated ms)`` through
:func:`observe_flush`, producing a :class:`CalibrationSample` whose
residual says how far the planner's world model is from reality.

Three consumers, all optional and all observational:

* **metrics** -- samples feed the ``planner.calibration.*`` family
  (abs/rel error and signed residual histograms with the registry's
  shared p50/p95/p99 quantiles) through the ambient recorder;
* **tracker** -- an installable :class:`CalibrationTracker`
  (:func:`set_tracker` / :func:`tracking`) aggregates residuals
  per table alias and per view, with the invariant that every
  aggregate equals the sum of its per-sample residuals (property
  tested);
* **drift alerts** -- a rolling per-``(view, table)`` window of
  relative errors; when the window fills and its mean exceeds the
  threshold, a :class:`DriftEvent` fires through the same
  :class:`~repro.obs.slo.AlertHub` plumbing the SLO alerts use
  (:func:`on_drift` / :func:`drift_alerts`), and the window re-arms.

Nothing here touches the operation counter: cost tables stay
byte-identical with calibration enabled or disabled (guarded by the
decisions/calibration differential test).
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.slo import AlertHub

__all__ = [
    "CalibrationSample",
    "CalibrationTracker",
    "DriftEvent",
    "DriftMonitor",
    "configure_drift",
    "drift_alerts",
    "enabled",
    "get_tracker",
    "observe_flush",
    "on_drift",
    "remove_drift",
    "set_tracker",
    "tracking",
]

#: Relative errors are computed against max(|predicted|, this floor) so
#: a zero-cost prediction cannot divide the residual by zero.
REL_ERR_FLOOR = 1e-9

#: Drift fires when the mean relative error of a full rolling window
#: exceeds the threshold.
DEFAULT_DRIFT_THRESHOLD = 0.5
DEFAULT_DRIFT_WINDOW = 16


@dataclass(frozen=True)
class CalibrationSample:
    """One predicted-vs-actual observation for a single table flush."""

    view: str | None
    t: int
    alias: str
    k: int  # backlog drained by this flush
    predicted_ms: float
    actual_ms: float

    @property
    def residual_ms(self) -> float:
        """Signed actual - predicted (positive = model too optimistic)."""
        return self.actual_ms - self.predicted_ms

    @property
    def abs_err_ms(self) -> float:
        return abs(self.residual_ms)

    @property
    def rel_err(self) -> float:
        return self.abs_err_ms / max(abs(self.predicted_ms), REL_ERR_FLOOR)


def _empty_bucket() -> dict:
    return {
        "samples": 0,
        "predicted_ms": 0.0,
        "actual_ms": 0.0,
        "residual_ms": 0.0,
        "abs_err_ms": 0.0,
        "max_abs_err_ms": 0.0,
    }


def _fold(bucket: dict, sample: CalibrationSample) -> None:
    bucket["samples"] += 1
    bucket["predicted_ms"] += sample.predicted_ms
    bucket["actual_ms"] += sample.actual_ms
    bucket["residual_ms"] += sample.residual_ms
    bucket["abs_err_ms"] += sample.abs_err_ms
    bucket["max_abs_err_ms"] = max(bucket["max_abs_err_ms"], sample.abs_err_ms)


class CalibrationTracker:
    """Aggregates calibration samples per table alias and per view.

    Thread-safe.  Keeps the raw samples (up to ``capacity``, counting
    overflow in :attr:`dropped`) so tests and reports can cross-check
    that every aggregate equals the sum of its per-sample residuals.
    """

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self.dropped = 0
        self._samples: deque[CalibrationSample] = deque()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, sample: CalibrationSample) -> None:
        with self._lock:
            if len(self._samples) >= self.capacity:
                self._samples.popleft()
                self.dropped += 1
            self._samples.append(sample)

    def samples(self) -> list[CalibrationSample]:
        with self._lock:
            return list(self._samples)

    def summary(self) -> dict:
        """``{"total": ..., "tables": {alias: ...}, "views": {view: ...}}``.

        Every bucket carries sample count, summed predicted/actual ms,
        the summed signed residual, summed absolute error, and the
        worst single absolute error.
        """
        total = _empty_bucket()
        tables: dict[str, dict] = {}
        views: dict[str, dict] = {}
        for sample in self.samples():
            _fold(total, sample)
            _fold(tables.setdefault(sample.alias, _empty_bucket()), sample)
            if sample.view is not None:
                _fold(views.setdefault(sample.view, _empty_bucket()), sample)
        return {
            "total": total,
            "tables": dict(sorted(tables.items())),
            "views": dict(sorted(views.items())),
        }


@dataclass(frozen=True)
class DriftEvent:
    """The cost model drifted: rolling relative error over threshold."""

    view: str | None
    alias: str
    t: int
    rolling_rel_err: float
    threshold: float
    window: int

    def __str__(self) -> str:
        where = f" view={self.view}" if self.view else ""
        return (
            f"calibration drift [{self.alias}]{where} t={self.t}: "
            f"rolling rel err {self.rolling_rel_err:.3f} "
            f"> {self.threshold:.3f} over {self.window} flushes"
        )


_drift_hub = AlertHub()


def on_drift(callback: Callable[[DriftEvent], None]) -> Callable[[DriftEvent], None]:
    """Register a drift-alert callback (decorator-friendly)."""
    return _drift_hub.add(callback)


def remove_drift(callback: Callable[[DriftEvent], None]) -> None:
    """Unregister a drift callback (no error if never registered)."""
    _drift_hub.remove(callback)


def drift_alerts(callback: Callable[[DriftEvent], None]):
    """Scope a drift callback to a ``with`` block (tests, scripts)."""
    return _drift_hub.scoped(callback)


class DriftMonitor:
    """Rolling per-``(view, alias)`` relative-error windows.

    When a window reaches ``window`` samples its mean relative error is
    compared against ``threshold``; on a hit the window clears (so the
    alert re-arms instead of firing on every subsequent flush) and a
    :class:`DriftEvent` is fired through the drift hub.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_DRIFT_THRESHOLD,
        window: int = DEFAULT_DRIFT_WINDOW,
    ):
        self.threshold = threshold
        self.window = window
        self._windows: dict[tuple[str | None, str], deque[float]] = {}
        self._lock = threading.Lock()

    def reset(self) -> None:
        with self._lock:
            self._windows.clear()

    def observe(self, sample: CalibrationSample) -> DriftEvent | None:
        key = (sample.view, sample.alias)
        with self._lock:
            window = self._windows.setdefault(
                key, deque(maxlen=self.window)
            )
            window.append(sample.rel_err)
            if len(window) < self.window:
                return None
            rolling = sum(window) / len(window)
            if rolling <= self.threshold:
                return None
            window.clear()
        event = DriftEvent(
            view=sample.view,
            alias=sample.alias,
            t=sample.t,
            rolling_rel_err=rolling,
            threshold=self.threshold,
            window=self.window,
        )
        from repro import obs

        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("planner.calibration.drift_alerts")
        _drift_hub.fire(event)
        return event


_state_lock = threading.Lock()
_tracker: CalibrationTracker | None = None
_monitor = DriftMonitor()


def set_tracker(tracker: CalibrationTracker | None) -> CalibrationTracker | None:
    """Install the process-global tracker; returns the previous one."""
    global _tracker
    with _state_lock:
        previous = _tracker
        _tracker = tracker
    return previous


def get_tracker() -> CalibrationTracker | None:
    return _tracker


@contextmanager
def tracking(capacity: int = 65536) -> Iterator[CalibrationTracker]:
    """Aggregate calibration samples for the duration of the block."""
    tracker = CalibrationTracker(capacity)
    previous = set_tracker(tracker)
    try:
        yield tracker
    finally:
        set_tracker(previous)


def configure_drift(
    threshold: float = DEFAULT_DRIFT_THRESHOLD,
    window: int = DEFAULT_DRIFT_WINDOW,
) -> DriftMonitor:
    """Replace the global drift monitor (fresh windows) and return it."""
    global _monitor
    monitor = DriftMonitor(threshold=threshold, window=window)
    with _state_lock:
        _monitor = monitor
    return monitor


def enabled() -> bool:
    """True when a flush observation would be consumed by anyone.

    The maintainer uses this to decide whether timing a flush is worth
    it at all: with no tracker, no recorder, and no drift callbacks the
    whole calibration path is skipped.
    """
    if _tracker is not None or _drift_hub.active():
        return True
    from repro import obs

    return obs.get_recorder() is not None


def observe_flush(
    view: str | None,
    t: int,
    alias: str,
    k: int,
    predicted_ms: float,
    actual_ms: float,
) -> CalibrationSample:
    """Record one per-table flush: predicted ``f_i(k)`` vs actual ms."""
    sample = CalibrationSample(
        view=view,
        t=t,
        alias=alias,
        k=int(k),
        predicted_ms=float(predicted_ms),
        actual_ms=float(actual_ms),
    )
    tracker = _tracker
    if tracker is not None:
        tracker.record(sample)
    from repro import obs

    recorder = obs.get_recorder()
    if recorder is not None:
        recorder.counter("planner.calibration.samples")
        recorder.observe("planner.calibration.abs_err_ms", sample.abs_err_ms)
        recorder.observe("planner.calibration.rel_err", sample.rel_err)
        recorder.observe("planner.calibration.residual", sample.residual_ms)
    _monitor.observe(sample)
    return sample
