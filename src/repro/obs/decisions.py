"""Planner decision tracing: what each policy predicted, chose, and why.

The paper's policies act on a *predicted* cost surface -- the staircase
``f_i(k)`` families -- but until now the repo only recorded what
execution *did* (operator attribution, view ledgers).  This module is
the other half of the loop: every policy step emits a structured
:class:`DecisionEvent` capturing the backlog it saw, the candidate
actions it weighed with their per-table predicted costs, the chosen
action, and the winning comparison as a human-readable rationale.  At
execution time the event is joined with the actual simulated charge
(:meth:`DecisionLog.join`), so every decision carries its own
predicted-vs-actual residual.

Design mirrors the rest of ``repro.obs``:

* **strictly observational** -- nothing here reads or writes the
  operation counter; simulated cost tables are byte-identical with
  tracing on or off (guarded by a differential test);
* **off by default** -- policies call :func:`active` first and skip all
  event construction when neither a :class:`DecisionLog` is installed
  (:func:`set_decision_log`) nor a metrics recorder is present;
* **process-global sink** -- :func:`set_decision_log` follows the
  ``attrib.set_profile_sink`` install/restore contract, and the
  ``--decision-log FILE`` CLI flag dumps the joined events as JSONL;
* **metrics for free** -- emission feeds ``planner.decisions.*``
  counters/histograms through the ambient recorder, so the flight
  recorder, ``/metrics``, and ``/snapshot`` pick them up unchanged.

The ``(view, step)`` pair keys the execution-time join.  When nested
planning emits several events for one step (RecedingHorizon runs an A*
search that reports its own ``OPT_LGM`` event), the **last** event
emitted for a key wins the join -- i.e. the outer policy's decision, the
one whose action actually executes.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

__all__ = [
    "CandidateAction",
    "DecisionEvent",
    "DecisionLog",
    "active",
    "collecting",
    "current_scope",
    "emit",
    "emit_policy_decision",
    "get_decision_log",
    "render_decision_trail",
    "scope",
    "set_decision_log",
]

#: Default ring capacity of a :class:`DecisionLog`; old events are
#: evicted (and counted in :attr:`DecisionLog.dropped`) beyond this.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class CandidateAction:
    """One action a policy weighed, with its predicted cost and score."""

    action: tuple[int, ...]
    predicted_ms: float
    score: float | None = None  # policy-specific (e.g. ONLINE's H)
    note: str = ""

    def to_dict(self) -> dict:
        data: dict = {
            "action": list(self.action),
            "predicted_ms": self.predicted_ms,
        }
        if self.score is not None:
            data["score"] = self.score
        if self.note:
            data["note"] = self.note
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateAction":
        return cls(
            action=tuple(int(x) for x in data["action"]),
            predicted_ms=float(data["predicted_ms"]),
            score=data.get("score"),
            note=data.get("note", ""),
        )


@dataclass
class DecisionEvent:
    """One policy decision, joined later with its executed cost.

    ``backlog_ms`` / ``chosen_ms`` hold the per-table predicted
    ``f_i(k)`` costs for the backlog and the chosen action (0.0 for
    components with nothing queued / not flushed).  The ``actual_*``
    fields stay ``None`` until :meth:`DecisionLog.join` fills them at
    execution time.
    """

    t: int
    policy: str
    backlog: tuple[int, ...]
    backlog_ms: tuple[float, ...]
    chosen: tuple[int, ...]
    chosen_ms: tuple[float, ...]
    predicted_ms: float
    rationale: str
    candidates: tuple[CandidateAction, ...] = ()
    limit: float | None = None
    view: str | None = None
    source: str = "simulator"
    actual_ms: float | None = None
    actual_table_ms: dict[str, float] = field(default_factory=dict)
    charges: dict[str, int] = field(default_factory=dict)

    @property
    def residual_ms(self) -> float | None:
        """Signed actual - predicted, once the event has been joined."""
        if self.actual_ms is None:
            return None
        return self.actual_ms - self.predicted_ms

    @property
    def is_flush(self) -> bool:
        return any(self.chosen)

    def to_dict(self) -> dict:
        data: dict = {
            "t": self.t,
            "policy": self.policy,
            "source": self.source,
            "view": self.view,
            "backlog": list(self.backlog),
            "backlog_ms": list(self.backlog_ms),
            "chosen": list(self.chosen),
            "chosen_ms": list(self.chosen_ms),
            "predicted_ms": self.predicted_ms,
            "limit": self.limit,
            "rationale": self.rationale,
            "candidates": [c.to_dict() for c in self.candidates],
            "actual_ms": self.actual_ms,
        }
        if self.actual_table_ms:
            data["actual_table_ms"] = dict(self.actual_table_ms)
        if self.charges:
            data["charges"] = dict(self.charges)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionEvent":
        return cls(
            t=int(data["t"]),
            policy=data["policy"],
            source=data.get("source", "simulator"),
            view=data.get("view"),
            backlog=tuple(int(x) for x in data["backlog"]),
            backlog_ms=tuple(float(x) for x in data["backlog_ms"]),
            chosen=tuple(int(x) for x in data["chosen"]),
            chosen_ms=tuple(float(x) for x in data["chosen_ms"]),
            predicted_ms=float(data["predicted_ms"]),
            limit=data.get("limit"),
            rationale=data.get("rationale", ""),
            candidates=tuple(
                CandidateAction.from_dict(c) for c in data.get("candidates", ())
            ),
            actual_ms=data.get("actual_ms"),
            actual_table_ms=dict(data.get("actual_table_ms", {})),
            charges=dict(data.get("charges", {})),
        )


class DecisionLog:
    """A bounded in-memory ring of decision events with a join index.

    Thread-safe.  The index maps ``(view, t)`` to the most recent event
    emitted for that key, so :meth:`join` attaches the executed cost to
    the decision whose action actually ran (see module docstring).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.dropped = 0
        self._events: deque[DecisionEvent] = deque()
        self._index: dict[tuple[str | None, int], DecisionEvent] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._events)

    def record(self, event: DecisionEvent) -> None:
        with self._lock:
            if len(self._events) >= self.capacity:
                evicted = self._events.popleft()
                self.dropped += 1
                key = (evicted.view, evicted.t)
                if self._index.get(key) is evicted:
                    del self._index[key]
            self._events.append(event)
            self._index[(event.view, event.t)] = event

    def join(
        self,
        view: str | None,
        t: int,
        actual_ms: float,
        table_ms: dict[str, float] | None = None,
        charges: dict[str, int] | None = None,
    ) -> DecisionEvent | None:
        """Attach the executed cost to the decision for ``(view, t)``.

        Returns the joined event, or ``None`` if no decision was
        recorded for that key (e.g. a forced refresh that bypassed the
        policy).
        """
        with self._lock:
            event = self._index.get((view, t))
        if event is None:
            return None
        event.actual_ms = actual_ms
        if table_ms:
            event.actual_table_ms = dict(table_ms)
        if charges:
            event.charges = dict(charges)
        from repro import obs

        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("planner.decisions.joined")
        return event

    def events(self) -> list[DecisionEvent]:
        with self._lock:
            return list(self._events)

    def filtered(
        self, view: str | None = None, step: int | None = None
    ) -> list[DecisionEvent]:
        """Events matching the optional view / step filters, in order."""
        return [
            e
            for e in self.events()
            if (view is None or e.view == view)
            and (step is None or e.t == step)
        ]


# --------------------------------------------------------------------------
# Process-global sink (same install/restore contract as attrib's profile
# sink) and a thread-local scope tagging events with the owning view.

_log_lock = threading.Lock()
_log: DecisionLog | None = None
_tls = threading.local()


def set_decision_log(log: DecisionLog | None) -> DecisionLog | None:
    """Install ``log`` as the process-global sink; returns the previous."""
    global _log
    with _log_lock:
        previous = _log
        _log = log
    return previous


def get_decision_log() -> DecisionLog | None:
    return _log


@contextmanager
def collecting(capacity: int = DEFAULT_CAPACITY) -> Iterator[DecisionLog]:
    """Collect decisions into a fresh log for the duration of the block."""
    log = DecisionLog(capacity)
    previous = set_decision_log(log)
    try:
        yield log
    finally:
        set_decision_log(previous)


@contextmanager
def scope(view: str | None = None, source: str = "ivm") -> Iterator[None]:
    """Tag decisions emitted inside the block with a view id and source.

    The IVM maintainer wraps each ``policy.decide`` call in
    ``scope(view=...)`` so fleet decisions join against the right
    ledger rounds; bare simulator runs leave the default
    ``(None, "simulator")`` scope in place.
    """
    previous = getattr(_tls, "scope", None)
    _tls.scope = (view, source)
    try:
        yield
    finally:
        _tls.scope = previous


def current_scope() -> tuple[str | None, str]:
    return getattr(_tls, "scope", None) or (None, "simulator")


def active() -> bool:
    """True when emitting a decision event would be observed by anyone."""
    if _log is not None:
        return True
    from repro import obs

    return obs.get_recorder() is not None


def emit(event: DecisionEvent) -> DecisionEvent:
    """Record ``event`` in the global log and export its metrics."""
    log = _log
    if log is not None:
        log.record(event)
    from repro import obs

    recorder = obs.get_recorder()
    if recorder is not None:
        recorder.counter("planner.decisions.emitted")
        recorder.counter(
            "planner.decisions.flush"
            if event.is_flush
            else "planner.decisions.defer"
        )
        recorder.observe(
            "planner.decisions.candidates", float(len(event.candidates))
        )
        recorder.observe("planner.decisions.predicted_ms", event.predicted_ms)
    return event


def _table_costs(
    cost_functions: Sequence[Callable[[int], float]], vector: Sequence[int]
) -> tuple[float, ...]:
    """Per-table predicted ``f_i(k)``; zero components cost nothing."""
    return tuple(
        float(f(int(k))) if int(k) > 0 else 0.0
        for f, k in zip(cost_functions, vector)
    )


def emit_policy_decision(
    policy: str,
    t: int,
    backlog: Sequence[int],
    cost_functions: Sequence[Callable[[int], float]],
    limit: float | None,
    chosen: Sequence[int],
    rationale: str,
    candidates: Sequence[CandidateAction] = (),
) -> DecisionEvent | None:
    """Build and emit a :class:`DecisionEvent` for one policy step.

    Convenience wrapper used by the core policies: computes the
    per-table predicted costs from the staircase family, tags the event
    with the current :func:`scope`, and no-ops entirely when tracing is
    :func:`active`-off.
    """
    if not active():
        return None
    view, source = current_scope()
    chosen_tuple = tuple(int(x) for x in chosen)
    chosen_ms = _table_costs(cost_functions, chosen_tuple)
    event = DecisionEvent(
        t=t,
        policy=policy,
        view=view,
        source=source,
        backlog=tuple(int(x) for x in backlog),
        backlog_ms=_table_costs(cost_functions, backlog),
        chosen=chosen_tuple,
        chosen_ms=chosen_ms,
        predicted_ms=sum(chosen_ms),
        limit=limit,
        rationale=rationale,
        candidates=tuple(candidates),
    )
    return emit(event)


# --------------------------------------------------------------------------
# Rendering (the `repro why` text tree)


def _fmt_vec(values: Sequence[float]) -> str:
    return "(" + ", ".join(f"{v:.3f}" for v in values) + ")"


def _event_lines(event: DecisionEvent) -> list[str]:
    where = f" view={event.view}" if event.view else ""
    verb = (
        f"flush {tuple(event.chosen)}" if event.is_flush else "defer"
    )
    head = f"t={event.t} {event.policy} [{event.source}]{where}: {verb}"
    items = [
        f"backlog {tuple(event.backlog)} f_i(s)={_fmt_vec(event.backlog_ms)} ms"
    ]
    if event.limit is not None:
        items.append(f"constraint C={event.limit:.3f} ms")
    for cand in event.candidates:
        mark = " [chosen]" if cand.action == event.chosen else ""
        score = f" H={cand.score:.6f}" if cand.score is not None else ""
        note = f" ({cand.note})" if cand.note else ""
        items.append(
            f"candidate {tuple(cand.action)} "
            f"f={cand.predicted_ms:.3f} ms{score}{note}{mark}"
        )
    items.append(f"rationale: {event.rationale}")
    if event.actual_ms is not None:
        residual = event.residual_ms or 0.0
        items.append(
            f"actual {event.actual_ms:.3f} ms "
            f"(predicted {event.predicted_ms:.3f}, residual {residual:+.3f})"
        )
    lines = [head]
    for i, item in enumerate(items):
        connector = "└─" if i == len(items) - 1 else "├─"
        lines.append(f"{connector} {item}")
    return lines


def render_decision_trail(
    events: Sequence[DecisionEvent],
    view: str | None = None,
    step: int | None = None,
) -> str:
    """Render a sequence of decisions as a text tree (``repro why``)."""
    picked = [
        e
        for e in events
        if (view is None or e.view == view) and (step is None or e.t == step)
    ]
    if not picked:
        scope_bits = []
        if view is not None:
            scope_bits.append(f"view={view}")
        if step is not None:
            scope_bits.append(f"step={step}")
        suffix = f" matching {' '.join(scope_bits)}" if scope_bits else ""
        return f"decision trail: no decisions{suffix}"
    lines = [f"decision trail: {len(picked)} decision(s)"]
    for event in picked:
        lines.extend(_event_lines(event))
    return "\n".join(lines)
