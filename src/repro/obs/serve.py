"""Stdlib HTTP endpoint serving a live recorder: ``/metrics``, ``/healthz``.

Long-running workloads (the ``timeline`` simulation, the pub/sub broker,
the staged simulator) should be observable *mid-run*, not only from the
exit summary.  :class:`MetricsServer` wraps an
:class:`http.server.ThreadingHTTPServer` on a daemon thread and serves:

``/metrics``
    Prometheus text exposition of the recorder's registry
    (:func:`repro.obs.export.render_prometheus`) -- scrapeable by a real
    Prometheus or just ``curl``.
``/healthz``
    JSON liveness: status, uptime, metric and sample counts.
``/snapshot``
    The raw registry snapshot as JSON (same shape the benchmark results
    persist), for tooling that wants exact values instead of exposition.
``/samples``
    The attached :class:`~repro.obs.sampler.FlightRecorder` ring buffer
    as JSONL (404 when no sampler is attached).
``/views``
    Per-view maintenance-ledger summaries as JSON.  Backed by a ``views``
    provider callable (e.g. ``coordinator.ledger_snapshot``) when one is
    attached; otherwise reconstructed from the registry's ``ivm.view.*``
    metrics, so any run emitting those is covered for free.
``/decisions``
    The planner decision trail as JSON (``?view=``, ``?step=``,
    ``?limit=`` filters).  Backed by a ``decisions`` provider callable
    when one is attached; otherwise served from the process-global
    :class:`~repro.obs.decisions.DecisionLog` (the one ``--decision-log``
    installs), so the CLI's serve-then-run ordering works without
    wiring.  404 when neither exists.
``/control``
    The adaptive runtime's control trail as JSON (``?governor=``,
    ``?view=``, ``?limit=`` filters) -- every actuation the governors
    made, with its reason and signal values.  Backed by a ``control``
    provider callable when one is attached; otherwise served from the
    process-global :class:`~repro.control.events.ControlLog` (the one
    ``--control-log`` installs).  404 when neither exists.

Zero dependencies, thread-safe against the instrumented run (the metric
classes lock their own state), and activated from the CLI with the
global ``--serve-metrics PORT`` flag.  Binding port 0 picks a free port;
:meth:`MetricsServer.start` returns the actual one.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import CONTENT_TYPE, render_prometheus
from repro.obs.recorder import Recorder
from repro.obs.sampler import FlightRecorder

#: Default row cap for the ``/views`` route; override per request with
#: ``?limit=N``.  At fleet scale an uncapped dump of thousands of view
#: summaries makes the endpoint useless to both humans and scrapers.
VIEWS_DEFAULT_LIMIT = 100

#: Default event cap for the ``/decisions`` route (most recent kept).
DECISIONS_DEFAULT_LIMIT = 100

#: Default event cap for the ``/control`` route (most recent kept).
CONTROL_DEFAULT_LIMIT = 100


def _views_from_registry(snapshot: dict) -> dict[str, dict]:
    """Reconstruct per-view summaries from ``ivm.view.*`` metric values.

    The fallback behind ``/views`` when no ledger provider is attached:
    groups ``ivm.view.<id>.<field>`` metrics by view id and flattens each
    metric snapshot to a representative scalar (counter value, gauge
    value, histogram count).
    """
    views: dict[str, dict] = {}
    for name, data in snapshot.items():
        if not name.startswith("ivm.view."):
            continue
        rest = name[len("ivm.view.") :]
        vid, _, metric_field = rest.rpartition(".")
        if not vid:
            continue
        entry = views.setdefault(vid, {})
        if isinstance(data, dict):
            value = data.get("value", data.get("count"))
        else:
            value = data
        entry[metric_field] = value
    return views


class _ObsServer(ThreadingHTTPServer):
    """HTTP server carrying the observed run's state for the handler."""

    daemon_threads = True
    allow_reuse_address = True

    recorder: Recorder
    sampler: FlightRecorder | None
    views_provider: "Callable[[], dict] | None"
    decisions_provider: "Callable[[], list] | None"
    control_provider: "Callable[[], list] | None"
    started_at: float


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"
    server: _ObsServer

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes must not spam the run's stdout/stderr

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        if path == "/metrics":
            body = render_prometheus(self.server.recorder.registry)
            self._reply(200, CONTENT_TYPE, body.encode("utf-8"))
        elif path in ("/healthz", "/health"):
            payload = {
                "status": "ok",
                "uptime_s": round(time.time() - self.server.started_at, 3),
                "metrics": len(self.server.recorder.registry),
                "samples": (
                    len(self.server.sampler)
                    if self.server.sampler is not None
                    else None
                ),
            }
            self._reply_json(200, payload)
        elif path == "/snapshot":
            self._reply_json(200, self.server.recorder.registry.snapshot())
        elif path == "/samples":
            sampler = self.server.sampler
            if sampler is None:
                self._reply_json(404, {"error": "no flight recorder attached"})
                return
            body = "".join(
                json.dumps(sample, sort_keys=True) + "\n"
                for sample in sampler.samples()
            )
            self._reply(200, "application/x-ndjson", body.encode("utf-8"))
        elif path == "/views":
            try:
                limit = int(query.get("limit", [VIEWS_DEFAULT_LIMIT])[0])
            except ValueError:
                self._reply_json(
                    400, {"error": "limit must be an integer"}
                )
                return
            if limit < 0:
                self._reply_json(
                    400, {"error": "limit must be non-negative"}
                )
                return
            provider = self.server.views_provider
            if provider is not None:
                views = provider()
            else:
                views = _views_from_registry(
                    self.server.recorder.registry.snapshot()
                )
            payload: dict = {"views": views}
            if len(views) > limit:
                # Costliest views first; the extra keys appear only when
                # rows were actually dropped, so small fleets keep the
                # exact legacy payload shape.
                ranked = sorted(
                    views.items(),
                    key=lambda item: (
                        -(self._view_cost(item[1])),
                        item[0],
                    ),
                )
                payload["views"] = dict(ranked[:limit])
                payload["omitted"] = len(views) - limit
                payload["total_views"] = len(views)
            self._reply_json(200, payload)
        elif path == "/decisions":
            try:
                limit = int(query.get("limit", [DECISIONS_DEFAULT_LIMIT])[0])
            except ValueError:
                self._reply_json(400, {"error": "limit must be an integer"})
                return
            if limit < 0:
                self._reply_json(400, {"error": "limit must be non-negative"})
                return
            step_raw = query.get("step", [None])[0]
            try:
                step = int(step_raw) if step_raw is not None else None
            except ValueError:
                self._reply_json(400, {"error": "step must be an integer"})
                return
            view = query.get("view", [None])[0]
            provider = self.server.decisions_provider
            if provider is not None:
                raw = provider()
            else:
                from repro.obs import decisions as decisions_mod

                log = decisions_mod.get_decision_log()
                if log is None:
                    self._reply_json(
                        404, {"error": "no decision log attached"}
                    )
                    return
                raw = log.events()
            events = [
                e.to_dict() if hasattr(e, "to_dict") else e for e in raw
            ]
            events = [
                e
                for e in events
                if (view is None or e.get("view") == view)
                and (step is None or e.get("t") == step)
            ]
            total = len(events)
            if limit:
                events = events[-limit:]  # most recent decisions win
            else:
                events = []
            self._reply_json(200, {"decisions": events, "total": total})
        elif path == "/control":
            try:
                limit = int(query.get("limit", [CONTROL_DEFAULT_LIMIT])[0])
            except ValueError:
                self._reply_json(400, {"error": "limit must be an integer"})
                return
            if limit < 0:
                self._reply_json(400, {"error": "limit must be non-negative"})
                return
            governor = query.get("governor", [None])[0]
            view = query.get("view", [None])[0]
            provider = self.server.control_provider
            if provider is not None:
                raw = provider()
            else:
                # Deferred: repro.obs must stay importable without the
                # control package having been initialized.
                from repro.control import events as control_mod

                log = control_mod.get_control_log()
                if log is None:
                    self._reply_json(
                        404, {"error": "no control log attached"}
                    )
                    return
                raw = log.events()
            events = [
                e.to_dict() if hasattr(e, "to_dict") else e for e in raw
            ]
            events = [
                e
                for e in events
                if (governor is None or e.get("governor") == governor)
                and (view is None or e.get("view") == view)
            ]
            total = len(events)
            if limit:
                events = events[-limit:]  # most recent actuations win
            else:
                events = []
            self._reply_json(200, {"control": events, "total": total})
        else:
            self._reply_json(
                404,
                {
                    "error": f"no route {path!r}",
                    "routes": [
                        "/metrics",
                        "/healthz",
                        "/snapshot",
                        "/samples",
                        "/views",
                        "/decisions",
                        "/control",
                    ],
                },
            )

    @staticmethod
    def _view_cost(summary) -> float:
        """Ranking key for ``/views`` truncation (simulated cost spent)."""
        if isinstance(summary, dict):
            for key in ("sim_ms", "cost_ms"):
                value = summary.get(key)
                if isinstance(value, (int, float)):
                    return float(value)
        return 0.0

    def _reply_json(self, status: int, payload: object) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._reply(status, "application/json", body)

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class MetricsServer:
    """Serves one recorder over HTTP from a daemon thread.

    Parameters
    ----------
    recorder:
        The run's :class:`~repro.obs.recorder.Recorder` to expose.
    port:
        TCP port to bind; ``0`` picks a free one (the default, right for
        tests).  :meth:`start` returns the bound port either way.
    host:
        Bind address; loopback by default -- metrics can leak workload
        details, so exposing beyond the machine is an explicit choice.
    sampler:
        Optional :class:`FlightRecorder` backing the ``/samples`` route.
    views:
        Optional zero-argument callable returning per-view maintenance
        summaries for the ``/views`` route (typically
        ``coordinator.ledger_snapshot``); without one the route falls
        back to aggregating the registry's ``ivm.view.*`` metrics.
    decisions:
        Optional zero-argument callable returning the decision trail for
        the ``/decisions`` route (a list of event dicts or
        :class:`~repro.obs.decisions.DecisionEvent` objects); without one
        the route reads the process-global decision log at request time.
    control:
        Optional zero-argument callable returning the control trail for
        the ``/control`` route (a list of event dicts or
        :class:`~repro.control.events.ControlEvent` objects); without one
        the route reads the process-global control log at request time.
    """

    def __init__(
        self,
        recorder: Recorder,
        port: int = 0,
        host: str = "127.0.0.1",
        sampler: FlightRecorder | None = None,
        views: "Callable[[], dict] | None" = None,
        decisions: "Callable[[], list] | None" = None,
        control: "Callable[[], list] | None" = None,
    ):
        self.recorder = recorder
        self.requested_port = int(port)
        self.host = host
        self.sampler = sampler
        self.views = views
        self.decisions = decisions
        self.control = control
        self._server: _ObsServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind and serve in the background; returns the actual port."""
        if self._server is not None:
            return self.port
        server = _ObsServer((self.host, self.requested_port), _Handler)
        server.recorder = self.recorder
        server.sampler = self.sampler
        server.views_provider = self.views
        server.decisions_provider = self.decisions
        server.control_provider = self.control
        server.started_at = time.time()
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="obs-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    #: How long :meth:`stop` waits for the serving thread to exit before
    #: declaring it leaked (class attribute so tests can tighten it).
    JOIN_TIMEOUT_S = 5.0

    def stop(self) -> None:
        """Shut the server down and release the port (idempotent).

        A serving thread that fails to exit within :attr:`JOIN_TIMEOUT_S`
        raises a :class:`RuntimeWarning` instead of being silently
        abandoned -- a leaked acceptor thread keeps the port bound.
        """
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=self.JOIN_TIMEOUT_S)
            if thread.is_alive():
                warnings.warn(
                    f"metrics-server thread {thread.name!r} did not exit "
                    f"within {self.JOIN_TIMEOUT_S}s; a daemon thread (and "
                    f"its port) may be leaked",
                    RuntimeWarning,
                    stacklevel=2,
                )

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "serving" if self._server is not None else "stopped"
        return f"MetricsServer({self.url}, {state})"
