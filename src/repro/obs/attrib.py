"""Hierarchical attribution: who spent each simulated charge.

The cost model (:mod:`repro.engine.costmodel`) answers *how much* a query
cost; this module answers *where it went*.  A :class:`QueryProfile` is a
tree of :class:`ProfileNode` objects mirroring the physical plan --
scan / filter / project / join-build / join-probe / aggregate / merge --
each accumulating the simulated charges, row and block counts, and wall
time attributable to that operator.  For IVM work the profile also
carries the owning view and maintenance round, so a fleet of views can
be broken down per view per round (the maintenance ledger in
:mod:`repro.ivm.ledger` builds on the same counter-delta idea).

Attribution is **observational**: nodes record copies of charges the
operators already made against the shared
:class:`~repro.engine.costmodel.OperationCounter`; they never charge
anything themselves.  The invariant -- checked by the differential test
suite -- is that a profiled run's cost table is byte-identical to an
unprofiled run, and that the profile's summed tally equals the counter's
delta for the query.

Three switches, all off by default:

* ``Database.execute(spec, profile=True)`` / ``Database.explain(spec,
  analyze=True)`` profile one query;
* :func:`set_profile_sink` installs a process-global sink -- every query
  on every Database is profiled and its dict is handed to the sink (the
  CLI ``--profile FILE`` flag and the benchmark harness use this);
* when neither is active, the hot path sees a single ``is None`` check
  per charge site (``Operator._prof``) and nothing else.

The parallel executor participates by shipping per-stage row counts back
with each worker tally; the single-threaded merge loop folds them into
the plan's nodes (workers never touch profile state), plus a synthetic
``merge`` node recording per-worker busy time -- the "worker spread" of
an EXPLAIN ANALYZE line.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "ProfileNode",
    "QueryProfile",
    "active_profile",
    "capturing",
    "maintenance_context",
    "current_maintenance",
    "set_profile_sink",
    "sink_active",
    "emit",
    "attach_to_plan",
    "render_profile",
    "aggregate_profiles",
]

#: Node kinds, for reference (labels are free-form; kinds are the closed
#: vocabulary that benchmark aggregation and the top-operators table key on).
KINDS = (
    "query",
    "scan",
    "filter",
    "project",
    "join-build",
    "join-probe",
    "aggregate",
    "merge",
)


class ProfileNode:
    """One operator's slice of a query profile.

    ``tally`` maps :class:`OperationCounter` field names to counts --
    the same vocabulary as ``counter.snapshot()`` so profile totals and
    counter deltas are directly comparable.
    """

    __slots__ = (
        "kind",
        "label",
        "tally",
        "rows_out",
        "blocks",
        "wall_ms",
        "children",
        "workers",
    )

    def __init__(self, kind: str, label: str):
        self.kind = kind
        self.label = label
        self.tally: dict[str, int] = {}
        self.rows_out = 0
        self.blocks = 0
        self.wall_ms = 0.0
        self.children: list[ProfileNode] = []
        #: per-worker spread, only populated on ``merge`` nodes:
        #: ``{worker_name: {"tasks": n, "busy_ms": x}}``
        self.workers: dict[str, dict] = {}

    def add(self, field: str, count: int = 1) -> None:
        """Attribute ``count`` units of one charge field to this node."""
        self.tally[field] = self.tally.get(field, 0) + count

    def add_tally(self, tally: Mapping[str, int]) -> None:
        """Attribute a whole charge-field tally to this node."""
        own = self.tally
        for field, count in tally.items():
            if count:
                own[field] = own.get(field, 0) + count

    def add_worker(self, name: str, busy_ms: float) -> None:
        """Record one worker task's busy time (merge nodes only)."""
        entry = self.workers.get(name)
        if entry is None:
            self.workers[name] = {"tasks": 1, "busy_ms": busy_ms}
        else:
            entry["tasks"] += 1
            entry["busy_ms"] += busy_ms

    def child(self, kind: str, label: str) -> "ProfileNode":
        node = ProfileNode(kind, label)
        self.children.append(node)
        return node

    def sim_ms(self, model: Any) -> float:
        """Simulated cost of this node's own tally under ``model``."""
        from repro.engine.costmodel import OperationCounter

        total = 0.0
        weights = OperationCounter._WEIGHT_BY_FIELD
        for field, count in self.tally.items():
            total += count * getattr(model, weights[field])
        return total

    def total_tally(self) -> dict[str, int]:
        """Summed tally over this node and all descendants."""
        total = dict(self.tally)
        for child in self.children:
            for field, count in child.total_tally().items():
                total[field] = total.get(field, 0) + count
        return total

    def total_sim_ms(self, model: Any) -> float:
        return self.sim_ms(model) + sum(
            c.total_sim_ms(model) for c in self.children
        )

    def to_dict(self, model: Any = None) -> dict:
        out: dict[str, Any] = {
            "op": self.kind,
            "label": self.label,
            "rows_out": self.rows_out,
            "blocks": self.blocks,
            "wall_ms": self.wall_ms,
            "tally": dict(self.tally),
        }
        if model is not None:
            out["sim_ms"] = self.sim_ms(model)
        if self.workers:
            out["workers"] = {
                name: dict(entry) for name, entry in self.workers.items()
            }
        out["children"] = [c.to_dict(model) for c in self.children]
        return out

    def __repr__(self) -> str:
        return (
            f"ProfileNode({self.kind!r}, {self.label!r}, "
            f"rows_out={self.rows_out}, tally={self.tally})"
        )


class QueryProfile:
    """The full attribution tree of one executed query."""

    def __init__(
        self,
        model: Any,
        query: str = "query",
        view: str | None = None,
        round: int | None = None,
    ):
        self.model = model
        self.query = query
        self.view = view
        self.round = round
        self.root = ProfileNode("query", query)
        self._merge: ProfileNode | None = None

    def merge_node(self) -> ProfileNode:
        """The (lazily created) parallel-merge node under the root."""
        if self._merge is None:
            self._merge = self.root.child("merge", "Merge(in-order)")
        return self._merge

    def finish(self, rows_out: int, wall_ms: float) -> None:
        self.root.rows_out = rows_out
        self.root.wall_ms = wall_ms

    def total_tally(self) -> dict[str, int]:
        return self.root.total_tally()

    def total_sim_ms(self) -> float:
        return self.root.total_sim_ms(self.model)

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "view": self.view,
            "round": self.round,
            "rows": self.root.rows_out,
            "wall_ms": self.root.wall_ms,
            "sim_ms": self.total_sim_ms(),
            "tally": self.total_tally(),
            "root": self.root.to_dict(self.model),
        }


# ----------------------------------------------------------------------
# Thread-local capture context
# ----------------------------------------------------------------------

_tls = threading.local()


def active_profile() -> QueryProfile | None:
    """The profile currently capturing on this thread (or None)."""
    return getattr(_tls, "profile", None)


@contextmanager
def capturing(profile: QueryProfile) -> Iterator[QueryProfile]:
    """Make ``profile`` the active capture target for the block.

    Operators constructed inside the block (hash-join builds happen at
    construction time) find it via :func:`active_profile`.
    """
    previous = getattr(_tls, "profile", None)
    _tls.profile = profile
    try:
        yield profile
    finally:
        _tls.profile = previous


@contextmanager
def maintenance_context(view: str, round: int | None) -> Iterator[None]:
    """Tag profiles created inside the block with a view and round."""
    previous = getattr(_tls, "maintenance", None)
    _tls.maintenance = (view, round)
    try:
        yield
    finally:
        _tls.maintenance = previous


def current_maintenance() -> tuple[str | None, int | None]:
    """The (view, round) tag in effect on this thread."""
    tag = getattr(_tls, "maintenance", None)
    return tag if tag is not None else (None, None)


# ----------------------------------------------------------------------
# Process-global profile sink
# ----------------------------------------------------------------------

_sink: Callable[[dict], None] | None = None


def set_profile_sink(
    sink: Callable[[dict], None] | None,
) -> Callable[[dict], None] | None:
    """Install (or clear, with None) the global profile sink.

    While a sink is installed every ``Database.execute`` call profiles
    itself and hands ``profile.to_dict()`` to the sink.  Returns the
    previously installed sink so callers can restore it.
    """
    global _sink
    previous = _sink
    _sink = sink
    return previous


def sink_active() -> bool:
    """True when a global profile sink is installed."""
    return _sink is not None


def emit(profile: QueryProfile) -> None:
    """Hand a finished profile to the global sink, if one is installed."""
    if _sink is not None:
        _sink(profile.to_dict())


# ----------------------------------------------------------------------
# Plan attachment (engine-aware; imports engine lazily, only when
# profiling is on, so this module stays import-light)
# ----------------------------------------------------------------------


def _timed_blocks(op: Any, node: ProfileNode):
    """An instance-level ``blocks`` override that times and counts output.

    Wall time is inclusive (it contains the children's time, like
    Postgres EXPLAIN ANALYZE actual-time); rows/blocks count this
    operator's own output.
    """
    import time

    unbound = type(op).blocks

    def blocks(block_size: int):
        gen = unbound(op, block_size)
        while True:
            start = time.perf_counter()
            try:
                block = next(gen)
            except StopIteration:
                node.wall_ms += (time.perf_counter() - start) * 1e3
                return
            node.wall_ms += (time.perf_counter() - start) * 1e3
            node.blocks += 1
            node.rows_out += len(block)
            yield block

    return blocks


def _label_for(op: Any) -> tuple[str, str]:
    """(kind, label) for one engine operator instance."""
    from repro.engine import aggregate as agg_mod
    from repro.engine import join as join_mod
    from repro.engine import operators as op_mod

    if isinstance(op, op_mod.SeqScan):
        return "scan", f"SeqScan({op.snapshot.name} AS {op.alias})"
    if isinstance(op, op_mod.RowSource):
        return "scan", f"RowSource({op.alias}, {len(op)} rows)"
    if isinstance(op, op_mod.Filter):
        return "filter", f"Filter({op.predicate!r})"
    if isinstance(op, op_mod.Project):
        return "project", f"Project({', '.join(op.columns)})"
    if isinstance(op, join_mod.HashJoin):
        return "join-probe", "HashJoin(probe)"
    if isinstance(op, join_mod.IndexNestedLoopJoin):
        return (
            "join-probe",
            f"IndexNestedLoopJoin({op.snapshot.name} AS {op.alias} "
            f"via {op._right_column})",
        )
    if isinstance(op, join_mod.NestedLoopJoin):
        return "join-probe", "NestedLoopJoin(probe)"
    if isinstance(op, agg_mod.Aggregate):
        spec = f"{op.func.upper()}({op.value!r})"
        if op.group_by:
            spec += f" GROUP BY {', '.join(op.group_by)}"
        return "aggregate", f"Aggregate({spec})"
    return "operator", type(op).__name__


def attach_to_plan(plan: Any, profile: QueryProfile) -> None:
    """Build profile nodes for a physical plan and hook the operators.

    Walks the left-deep operator tree (``child`` / ``left`` references),
    creates one node per operator under ``profile.root``, points each
    operator's ``_prof`` at its node (the charge-site hooks), and wraps
    each ``blocks`` method with a timing/counting shim.  Join builds that
    already happened at construction time (hash-table build, nested-loop
    inner materialization -- captured as counter snapshot deltas) become
    ``join-build`` child nodes.
    """
    parent = profile.root
    op = plan
    while op is not None:
        kind, label = _label_for(op)
        node = parent.child(kind, label)
        op._prof = node
        op.blocks = _timed_blocks(op, node)
        build_tally = getattr(op, "_build_tally", None)
        if build_tally is not None:
            build = node.child("join-build", op._build_label)
            build.add_tally(build_tally)
            build.rows_out = op._build_rows
            build.wall_ms = op._build_wall_ms
        op = getattr(op, "child", None) or getattr(op, "left", None)
        parent = node


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _node_line(node: ProfileNode, model: Any) -> str:
    parts = [f"{node.label}  rows={node.rows_out}"]
    if node.blocks:
        parts.append(f"blocks={node.blocks}")
    parts.append(f"wall={node.wall_ms:.2f}ms")
    parts.append(f"sim={node.sim_ms(model):.3f}ms")
    if node.tally:
        fields = " ".join(
            f"{field}={count}" for field, count in sorted(node.tally.items())
        )
        parts.append(f"[{fields}]")
    if node.workers:
        busy = [entry["busy_ms"] for entry in node.workers.values()]
        tasks = sum(entry["tasks"] for entry in node.workers.values())
        parts.append(
            f"workers={len(node.workers)} tasks={tasks} "
            f"busy={min(busy):.2f}..{max(busy):.2f}ms"
        )
    return " ".join(parts)


def _render_node(
    node: ProfileNode, model: Any, prefix: str, lines: list[str]
) -> None:
    children = node.children
    for i, child in enumerate(children):
        last = i == len(children) - 1
        connector = "└─ " if last else "├─ "
        lines.append(prefix + connector + _node_line(child, model))
        _render_node(child, model, prefix + ("   " if last else "│  "), lines)


def render_profile(profile: QueryProfile) -> str:
    """Render a profile as an EXPLAIN ANALYZE text tree."""
    model = profile.model
    head = "EXPLAIN ANALYZE"
    if profile.view is not None:
        head += f"  view={profile.view}"
        if profile.round is not None:
            head += f" round={profile.round}"
    lines = [head, _node_line(profile.root, model)]
    _render_node(profile.root, model, "", lines)
    lines.append(
        f"total: sim={profile.total_sim_ms():.3f}ms "
        f"wall={profile.root.wall_ms:.2f}ms rows={profile.root.rows_out}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Aggregation across many profiles (benchmark integration)
# ----------------------------------------------------------------------


def aggregate_profiles(profiles: list[dict]) -> dict:
    """Fold profile dicts into per-operator-kind totals.

    The shape that lands in ``benchmarks/results/*.json`` under
    ``profile`` and that ``report_trajectory.py`` renders as the
    top-operators table::

        {"queries": N, "sim_ms": total,
         "operators": {kind: {"nodes": n, "rows_out": r,
                              "sim_ms": s, "wall_ms": w}}}
    """
    operators: dict[str, dict] = {}
    sim_total = 0.0

    def visit(node: dict) -> None:
        nonlocal sim_total
        kind = node.get("op", "operator")
        entry = operators.setdefault(
            kind, {"nodes": 0, "rows_out": 0, "sim_ms": 0.0, "wall_ms": 0.0}
        )
        entry["nodes"] += 1
        entry["rows_out"] += node.get("rows_out", 0)
        entry["sim_ms"] += node.get("sim_ms", 0.0)
        entry["wall_ms"] += node.get("wall_ms", 0.0)
        sim_total += node.get("sim_ms", 0.0)
        for child in node.get("children", ()):
            visit(child)

    for profile in profiles:
        root = profile.get("root")
        if root:
            visit(root)
    return {
        "queries": len(profiles),
        "sim_ms": sim_total,
        "operators": operators,
    }
