"""Mechanical verification of the paper's analytical bounds (Section 3).

Three studies, each comparing the best LGM plan (A* search) against the
globally optimal plan over *all* valid plans (exhaustive oracle) on small
instances:

1. **Theorem 2** -- with linear cost functions, OPT_LGM == OPT exactly;
2. **Theorem 1 tightness** -- the Section 3.2 step-cost construction
   drives OPT_LGM / OPT towards ``2 - eps``;
3. **Theorem 1 generally** -- for random monotone subadditive (block-I/O
   and concave) instances, OPT_LGM / OPT never exceeds 2.

The paper proves these; this driver *measures* them, which both validates
our implementations and gives the reproduction's bounds table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import BlockIOCost, ConcaveCost, LinearCost, StepCost
from repro.core.exhaustive import find_optimal_plan_exhaustive
from repro.core.problem import ProblemInstance
from repro.experiments.reporting import format_table


@dataclass
class BoundsRow:
    """One instance's LGM-vs-optimal comparison."""

    family: str
    instance: str
    opt_lgm: float
    opt: float

    @property
    def ratio(self) -> float:
        return self.opt_lgm / self.opt if self.opt else 1.0


@dataclass
class BoundsStudyResult:
    """All measured OPT_LGM / OPT ratios."""

    rows_data: list[BoundsRow]

    def rows(self) -> list[tuple]:
        return [
            (r.family, r.instance, r.opt_lgm, r.opt, r.ratio)
            for r in self.rows_data
        ]

    def max_ratio(self, family: str) -> float:
        return max(r.ratio for r in self.rows_data if r.family == family)

    def format(self) -> str:
        table = format_table(
            "Bounds study: OPT_LGM vs globally optimal plan",
            ["family", "instance", "OPT_LGM", "OPT", "ratio"],
            self.rows(),
            precision=3,
        )
        summary = format_table(
            "Per-family worst ratio (Thm 2: linear == 1; Thm 1: all <= 2)",
            ["family", "max ratio"],
            [
                (family, self.max_ratio(family))
                for family in sorted({r.family for r in self.rows_data})
            ],
            precision=4,
        )
        return f"{table}\n\n{summary}"


def _random_linear_instance(rng: random.Random) -> ProblemInstance:
    n = rng.randint(1, 2)
    costs = [
        LinearCost(
            slope=rng.uniform(0.5, 2.0), setup=rng.uniform(0.0, 4.0)
        )
        for __ in range(n)
    ]
    horizon = rng.randint(4, 8)
    arrivals = [
        tuple(rng.randint(0, 2) for __ in range(n))
        for __ in range(horizon + 1)
    ]
    limit = rng.uniform(6.0, 14.0)
    return ProblemInstance(costs, limit, arrivals)


def _random_subadditive_instance(
    rng: random.Random, family: str
) -> ProblemInstance:
    n = rng.randint(1, 2)
    costs = []
    for __ in range(n):
        if family == "block-io":
            costs.append(
                BlockIOCost(
                    io_cost=rng.uniform(1.0, 3.0),
                    block_size=rng.randint(2, 4),
                    slope=rng.uniform(0.0, 0.5),
                )
            )
        else:
            costs.append(
                ConcaveCost(
                    coeff=rng.uniform(1.0, 3.0),
                    exponent=rng.uniform(0.4, 0.9),
                )
            )
    horizon = rng.randint(4, 7)
    arrivals = [
        tuple(rng.randint(0, 2) for __ in range(n))
        for __ in range(horizon + 1)
    ]
    limit = rng.uniform(4.0, 10.0)
    return ProblemInstance(costs, limit, arrivals)


def tightness_instance(eps: float, periods: int, limit: float = 10.0) -> ProblemInstance:
    """The Section 3.2 construction: OPT_LGM >= (2 - eps) * OPT."""
    cost = StepCost(eps=eps, limit=limit)
    per_step = int(round(2 / eps)) + 1
    horizon = 2 * periods - 1
    arrivals = [(per_step,)] * (horizon + 1)
    return ProblemInstance([cost], limit, arrivals)


def run_bounds_study(
    seed: int = 33, linear_trials: int = 6, subadditive_trials: int = 4
) -> BoundsStudyResult:
    """Measure OPT_LGM / OPT across cost families."""
    rng = random.Random(seed)
    rows: list[BoundsRow] = []

    for i in range(linear_trials):
        problem = _random_linear_instance(rng)
        lgm = find_optimal_lgm_plan(problem).cost
        opt = find_optimal_plan_exhaustive(problem).cost
        rows.append(
            BoundsRow("linear", f"random-{i}", lgm, opt)
        )

    for eps in (1.0, 0.5, 0.25):
        problem = tightness_instance(eps=eps, periods=3)
        lgm = find_optimal_lgm_plan(problem).cost
        opt = find_optimal_plan_exhaustive(problem).cost
        rows.append(
            BoundsRow("step (tightness)", f"eps={eps}", lgm, opt)
        )

    for family in ("block-io", "concave"):
        for i in range(subadditive_trials):
            problem = _random_subadditive_instance(rng, family)
            lgm = find_optimal_lgm_plan(problem).cost
            opt = find_optimal_plan_exhaustive(problem).cost
            rows.append(BoundsRow(family, f"random-{i}", lgm, opt))

    return BoundsStudyResult(rows_data=rows)
