"""Ablations of the reproduction's design choices (DESIGN.md section 5).

Four studies beyond the paper's own figures:

* :func:`run_astar_heuristic_ablation` -- node expansions of A* with the
  paper's consistent heuristic vs ``h = 0`` (Dijkstra); same optimal cost,
  fewer expansions;
* :func:`run_plan_class_ablation` -- what each LGM ingredient buys:
  EAGER (violates laziness: flushes every step), NAIVE (lazy + greedy but
  maximal instead of minimal), OPT_LGM (all three);
* :func:`run_estimator_ablation` -- ONLINE's TimeToFull estimator quality:
  EWMA vs windowed average vs a fixed-rate oracle, on stable and unstable
  streams.  Explains Figure 7's ONLINE gap;
* :func:`run_cost_family_study` -- how much asymmetric scheduling saves as
  the cost-function family varies (linear with setup, block-I/O staircase,
  concave): the setup-to-slope ratio, not the family, is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import BlockIOCost, ConcaveCost, LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy, TimeToFullEstimator
from repro.core.policies import Policy
from repro.core.problem import ProblemInstance, Vector
from repro.core.simulator import simulate_policy
from repro.experiments import common
from repro.experiments.reporting import format_table
from repro.workloads.arrivals import (
    FAST_STABLE,
    FAST_UNSTABLE,
    stochastic_arrivals,
    uniform_arrivals,
)


# ----------------------------------------------------------------------
# A* heuristic quality
# ----------------------------------------------------------------------


@dataclass
class AStarAblationResult:
    """Expansions with and without the heuristic, per horizon."""

    horizons: tuple[int, ...]
    astar_expanded: list[int]
    dijkstra_expanded: list[int]
    costs_equal: bool

    def rows(self) -> list[tuple]:
        return [
            (t, a, d, d / a if a else 1.0)
            for t, a, d in zip(
                self.horizons, self.astar_expanded, self.dijkstra_expanded
            )
        ]

    def format(self) -> str:
        return format_table(
            f"A* heuristic ablation (identical optimal costs: "
            f"{self.costs_equal})",
            ["horizon T", "A* expanded", "h=0 expanded", "speedup"],
            self.rows(),
        )


def run_astar_heuristic_ablation(
    horizons: tuple[int, ...] = (100, 200, 400),
    scale: float = common.DEFAULT_SCALE,
) -> AStarAblationResult:
    """Compare node expansions of A* against Dijkstra on Figure-6 instances."""
    costs = common.cost_functions(scale=scale)
    limit = common.default_limit(costs)
    astar_exp, dijkstra_exp = [], []
    equal = True
    for horizon in horizons:
        arrivals = uniform_arrivals(common.ARRIVAL_MIX, horizon + 1)
        problem = common.make_problem(arrivals, limit, costs)
        with_h = find_optimal_lgm_plan(problem, use_heuristic=True)
        without_h = find_optimal_lgm_plan(problem, use_heuristic=False)
        equal = equal and abs(with_h.cost - without_h.cost) < 1e-6
        astar_exp.append(with_h.expanded)
        dijkstra_exp.append(without_h.expanded)
    return AStarAblationResult(
        horizons=tuple(horizons),
        astar_expanded=astar_exp,
        dijkstra_expanded=dijkstra_exp,
        costs_equal=equal,
    )


# ----------------------------------------------------------------------
# Plan-class ablation: what do Lazy / Greedy / Minimal buy?
# ----------------------------------------------------------------------


class EagerPolicy(Policy):
    """Anti-laziness strawman: flush every delta table at every step."""

    def decide(self, t: int, pre_state: Vector) -> Vector:
        return pre_state

    def __repr__(self) -> str:
        return "EagerPolicy()"


@dataclass
class PlanClassAblationResult:
    """Total cost per plan class on one Figure-6-style instance."""

    horizon: int
    limit: float
    eager: float
    naive: float
    opt_lgm: float

    def rows(self) -> list[tuple]:
        return [
            ("EAGER (no laziness)", self.eager, self.eager / self.opt_lgm),
            ("NAIVE (lazy+greedy, maximal)", self.naive,
             self.naive / self.opt_lgm),
            ("OPT_LGM (lazy+greedy+minimal)", self.opt_lgm, 1.0),
        ]

    def format(self) -> str:
        return format_table(
            f"Plan-class ablation (T = {self.horizon}, C = "
            f"{self.limit:.0f} ms)",
            ["plan class", "total cost", "ratio vs OPT_LGM"],
            self.rows(),
        )


def run_plan_class_ablation(
    horizon: int = 400, scale: float = common.DEFAULT_SCALE
) -> PlanClassAblationResult:
    """Quantify the value of laziness and minimality."""
    costs = common.cost_functions(scale=scale)
    limit = common.default_limit(costs)
    arrivals = uniform_arrivals(common.ARRIVAL_MIX, horizon + 1)
    problem = common.make_problem(arrivals, limit, costs)
    return PlanClassAblationResult(
        horizon=horizon,
        limit=limit,
        eager=simulate_policy(problem, EagerPolicy()).total_cost,
        naive=simulate_policy(problem, NaivePolicy()).total_cost,
        opt_lgm=find_optimal_lgm_plan(problem).cost,
    )


# ----------------------------------------------------------------------
# ONLINE's TimeToFull estimator
# ----------------------------------------------------------------------


@dataclass
class EstimatorAblationResult:
    """ONLINE cost ratio vs OPT_LGM per estimator per stream class."""

    stream_names: tuple[str, ...]
    estimator_names: tuple[str, ...]
    ratios: list[list[float]]  # [stream][estimator]

    def rows(self) -> list[tuple]:
        return [
            (name, *row)
            for name, row in zip(self.stream_names, self.ratios)
        ]

    def format(self) -> str:
        return format_table(
            "ONLINE TimeToFull estimator ablation "
            "(cost ratio vs OPT_LGM; oracle isolates estimation error)",
            ["stream", *self.estimator_names],
            self.rows(),
            precision=3,
        )


def run_estimator_ablation(
    horizon: int = 600,
    scale: float = common.DEFAULT_SCALE,
    seed: int = 808,
) -> EstimatorAblationResult:
    """EWMA vs window vs fixed-rate oracle, on stable/unstable streams."""
    costs = common.cost_functions(scale=scale)
    limit = common.default_limit(costs) * 20.0 / 12.0
    streams = (("FS", FAST_STABLE), ("FU", FAST_UNSTABLE))
    ratios: list[list[float]] = []
    estimator_names = ("ewma", "window", "oracle")
    for i, (__, params) in enumerate(streams):
        arrivals = stochastic_arrivals(
            (params, params), steps=horizon + 1, seed=seed + i,
            scale=common.ARRIVAL_MIX,
        )
        problem = common.make_problem(arrivals, limit, costs)
        opt = find_optimal_lgm_plan(problem).cost
        total = problem.total_arrivals()
        true_rates = [k / (horizon + 1) for k in total]
        estimators = (
            TimeToFullEstimator(mode="ewma"),
            TimeToFullEstimator(mode="window", window=25),
            TimeToFullEstimator(mode="fixed", fixed_rates=true_rates),
        )
        row = []
        for estimator in estimators:
            trace = simulate_policy(problem, OnlinePolicy(estimator))
            row.append(trace.total_cost / opt)
        ratios.append(row)
    return EstimatorAblationResult(
        stream_names=tuple(name for name, __ in streams),
        estimator_names=estimator_names,
        ratios=ratios,
    )


# ----------------------------------------------------------------------
# Receding-horizon re-planning vs ONLINE
# ----------------------------------------------------------------------


@dataclass
class ReplanningStudyResult:
    """Cost ratio vs OPT_LGM of ONLINE and receding-horizon re-planning."""

    stream_names: tuple[str, ...]
    online_ratios: list[float]
    receding_ratios: list[float]
    replans: list[int]

    def rows(self) -> list[tuple]:
        return [
            (name, online, receding, replans)
            for name, online, receding, replans in zip(
                self.stream_names, self.online_ratios,
                self.receding_ratios, self.replans,
            )
        ]

    def format(self) -> str:
        return format_table(
            "Re-planning study: ONLINE (greedy) vs receding-horizon MPC "
            "(cost ratio vs OPT_LGM)",
            ["stream", "ONLINE", "receding-horizon", "re-plans"],
            self.rows(),
            precision=4,
        )


def run_replanning_study(
    horizon: int = 300,
    scale: float = common.DEFAULT_SCALE,
    seed: int = 909,
) -> ReplanningStudyResult:
    """Does optimal lookahead over projected arrivals beat greedy H?

    Measured answer: only when the projection is right.  With exact rates
    (uniform stream) the receding-horizon policy is optimal to the digit;
    on bursty streams its smooth rate projection misrepresents the
    process and committing to the projected optimum *underperforms* the
    paper's robust one-step greedy ``H`` -- a nice empirical defence of
    the paper's choice of heuristic.
    """
    from repro.core.receding import RecedingHorizonPolicy

    costs = common.cost_functions(scale=scale)
    limit = common.default_limit(costs)
    streams = (
        ("uniform", uniform_arrivals(common.ARRIVAL_MIX, horizon + 1)),
        (
            "FS",
            stochastic_arrivals(
                (FAST_STABLE, FAST_STABLE), horizon + 1, seed=seed,
                scale=common.ARRIVAL_MIX,
            ),
        ),
        (
            "FU",
            stochastic_arrivals(
                (FAST_UNSTABLE, FAST_UNSTABLE), horizon + 1, seed=seed + 1,
                scale=common.ARRIVAL_MIX,
            ),
        ),
    )
    names, online_ratios, receding_ratios, replans = [], [], [], []
    for name, arrivals in streams:
        problem = common.make_problem(arrivals, limit, costs)
        opt = find_optimal_lgm_plan(problem).cost
        online = simulate_policy(problem, OnlinePolicy()).total_cost
        policy = RecedingHorizonPolicy(window=150)
        receding = simulate_policy(problem, policy).total_cost
        names.append(name)
        online_ratios.append(online / opt)
        receding_ratios.append(receding / opt)
        replans.append(policy.replans)
    return ReplanningStudyResult(
        stream_names=tuple(names),
        online_ratios=online_ratios,
        receding_ratios=receding_ratios,
        replans=replans,
    )


# ----------------------------------------------------------------------
# Cost-function family study
# ----------------------------------------------------------------------


@dataclass
class CostFamilyStudyResult:
    """NAIVE / OPT_LGM ratio per synthetic cost family."""

    rows_data: list[tuple[str, float, float, float]]

    def rows(self) -> list[tuple]:
        return self.rows_data

    def format(self) -> str:
        return format_table(
            "Asymmetric gain across cost families (two tables: one cheap "
            "linear, one batch-friendly of the named family)",
            ["family", "NAIVE", "OPT_LGM", "NAIVE/OPT ratio"],
            self.rows_data,
        )


def run_cost_family_study(horizon: int = 300) -> CostFamilyStudyResult:
    """How the asymmetric advantage depends on the cost-function family."""
    cheap = LinearCost(slope=1.0, setup=0.0)
    families = (
        ("linear b=40", LinearCost(slope=1.0, setup=40.0)),
        ("linear b=120", LinearCost(slope=1.0, setup=120.0)),
        ("block-io B=32", BlockIOCost(io_cost=40.0, block_size=32, slope=0.5)),
        ("concave sqrt", ConcaveCost(coeff=12.0, exponent=0.5)),
    )
    limit = 200.0
    arrivals = uniform_arrivals((1, 1), horizon + 1)
    rows = []
    for name, batchy in families:
        problem = ProblemInstance((cheap, batchy), limit, arrivals)
        naive = simulate_policy(problem, NaivePolicy()).total_cost
        opt = find_optimal_lgm_plan(problem).cost
        rows.append((name, naive, opt, naive / opt))
    return CostFamilyStudyResult(rows_data=rows)
