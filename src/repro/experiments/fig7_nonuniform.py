"""Figure 7: non-uniform modification arrivals.

The paper generates stochastic arrival streams: at each step, with
probability ``p`` at least one modification arrives; the count follows
``ceil(X) | X > 0`` for ``X ~ N(mu, sigma^2)``.  Four stream classes cross
rate with stability:

===========  =====  =======
class        p      sigma
===========  =====  =======
SS (slow/stable)    0.5    1
SU (slow/unstable)  0.5    5
FS (fast/stable)    0.9    1
FU (fast/unstable)  0.9    5
===========  =====  =======

(``mu = 1`` throughout; C is raised relative to Figure 6, as in the paper's
20 s vs 12 s; refresh time T = 1000.)

Reproduced findings: NAIVE loses on all four streams; ONLINE comes close
to OPT_LGM on stable streams but degrades on unstable ones, which the
paper attributes to TimeToFull prediction error -- our estimator ablation
(``repro.experiments.ablations``) quantifies exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adapt import adapt_plan
from repro.core.astar import find_optimal_lgm_plan
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.simulator import simulate_policy
from repro.experiments import common
from repro.experiments.reporting import format_table
from repro.workloads.arrivals import (
    FAST_STABLE,
    FAST_UNSTABLE,
    SLOW_STABLE,
    SLOW_UNSTABLE,
    StreamParams,
    stochastic_arrivals,
)

STREAM_CLASSES: tuple[tuple[str, StreamParams], ...] = (
    ("SS", SLOW_STABLE),
    ("SU", SLOW_UNSTABLE),
    ("FS", FAST_STABLE),
    ("FU", FAST_UNSTABLE),
)

DEFAULT_HORIZON = 1000
ADAPT_BASE_HORIZON = 500
#: C scale-up vs Figure 6, mirroring the paper's 20 s vs 12 s.
LIMIT_FACTOR = 20.0 / 12.0


@dataclass
class Fig7Result:
    """Total cost per plan for each stream class."""

    limit: float
    horizon: int
    classes: tuple[str, ...]
    naive: list[float]
    opt_lgm: list[float]
    adapt: list[float]
    online: list[float]

    def rows(self) -> list[tuple]:
        return [
            (c, n, o, a, ol)
            for c, n, o, a, ol in zip(
                self.classes, self.naive, self.opt_lgm, self.adapt, self.online
            )
        ]

    def online_gap(self, stream_class: str) -> float:
        """ONLINE / OPT_LGM cost ratio for one stream class."""
        idx = self.classes.index(stream_class)
        return self.online[idx] / self.opt_lgm[idx]

    def format(self) -> str:
        table = format_table(
            f"Figure 7: non-uniform arrivals (C = {self.limit:.0f} ms, "
            f"T = {self.horizon})",
            ["stream", "NAIVE", "OPT_LGM",
             f"ADAPT(T0={ADAPT_BASE_HORIZON})", "ONLINE"],
            self.rows(),
            precision=0,
        )
        gaps = format_table(
            "ONLINE / OPT_LGM gap (paper: small on stable, larger on "
            "unstable streams)",
            ["stream", "gap"],
            [(c, self.online_gap(c)) for c in self.classes],
            precision=3,
        )
        return f"{table}\n\n{gaps}"


def run_fig7(
    scale: float = common.DEFAULT_SCALE,
    horizon: int = DEFAULT_HORIZON,
    seed: int = 707,
    limit: float | None = None,
) -> Fig7Result:
    """Compare the four plans on the paper's four stream classes."""
    costs = common.cost_functions(scale=scale)
    if limit is None:
        limit = common.default_limit(costs) * LIMIT_FACTOR

    naive, opt_lgm, adapt, online = [], [], [], []
    for i, (__, params) in enumerate(STREAM_CLASSES):
        arrivals = stochastic_arrivals(
            (params, params),
            steps=horizon + 1,
            seed=seed + i,
            scale=common.ARRIVAL_MIX,
        )
        problem = common.make_problem(arrivals, limit, costs)
        naive.append(simulate_policy(problem, NaivePolicy()).total_cost)
        opt_lgm.append(find_optimal_lgm_plan(problem).cost)
        adapt_policy = adapt_plan(problem, ADAPT_BASE_HORIZON)
        adapt.append(simulate_policy(problem, adapt_policy).total_cost)
        online.append(simulate_policy(problem, OnlinePolicy()).total_cost)

    return Fig7Result(
        limit=limit,
        horizon=horizon,
        classes=tuple(name for name, __ in STREAM_CLASSES),
        naive=naive,
        opt_lgm=opt_lgm,
        adapt=adapt,
        online=online,
    )
