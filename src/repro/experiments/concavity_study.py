"""Concavity and the LGM bound (future work, Section 7).

The paper asks: "it will be interesting to see whether a stronger
assumption, e.g. concavity, can lead to a tighter bound on the quality of
LGM plans."  Theorem 1's factor-2 is tight only via a *non-concave* step
function; this study searches for bad instances within each cost family:

* random sampling over instances (cost parameters x arrival patterns x
  constraint), recording the worst ``OPT_LGM / OPT`` ratio per family;
* adversarial hill-climbing from the worst random instance: locally
  perturb the arrival pattern (move/add/remove modifications) and keep any
  perturbation that increases the ratio.

Measured outcome (evidence, not proof, toward the paper's question): the
worst ratios order cleanly by how far the family sits from linearity --
linear exactly 1.0 (Theorem 2), strictly concave ~1.01, the block-I/O
staircase ~1.4, and the adversarial step construction 1.8 (its analytic
``(2+eps)/(1+eps)``).  So concavity does NOT make the LGM restriction
free, but it appears to shrink the gap by an order of magnitude relative
to the non-concave worst case -- quantitative support for the paper's
conjecture that concavity admits a tighter bound than 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import (
    BlockIOCost,
    ConcaveCost,
    CostFunction,
    LinearCost,
    StepCost,
)
from repro.core.exhaustive import find_optimal_plan_exhaustive
from repro.core.problem import ProblemInstance
from repro.experiments.reporting import format_table


@dataclass
class ConcavityStudyResult:
    """Worst LGM/OPT ratio found per cost family."""

    random_trials: int
    climb_steps: int
    rows_data: list[tuple[str, float, float]]  # family, random-worst, climbed

    def rows(self) -> list[tuple]:
        return self.rows_data

    def worst(self, family: str) -> float:
        for name, __, climbed in self.rows_data:
            if name == family:
                return climbed
        raise KeyError(family)

    def format(self) -> str:
        table = format_table(
            f"Concavity and the LGM gap: worst OPT_LGM/OPT found "
            f"({self.random_trials} random + {self.climb_steps} "
            f"hill-climb steps per family)",
            ["cost family", "worst (random)", "worst (adversarial)"],
            self.rows_data,
            precision=4,
        )
        note = (
            "gap orders by distance from linearity: linear 1.0 exactly "
            "(Thm 2) < concave (~1.01) < block-I/O (~1.4) < step (1.8, "
            "its analytic bound) -- evidence that concavity tightens "
            "Theorem 1's factor-2 without eliminating the gap"
        )
        return f"{table}\n\n{note}"


def _sample_cost(rng: random.Random, family: str) -> CostFunction:
    if family == "linear":
        return LinearCost(rng.uniform(0.3, 2.0), rng.uniform(0.0, 5.0))
    if family == "concave":
        return ConcaveCost(rng.uniform(1.0, 4.0), rng.uniform(0.3, 0.95))
    if family == "block-io":
        return BlockIOCost(
            io_cost=rng.uniform(1.0, 4.0),
            block_size=rng.randint(2, 5),
            slope=rng.uniform(0.0, 0.5),
        )
    if family == "step":
        eps = rng.choice((1.0, 0.5, 0.25))
        return StepCost(eps=eps, limit=10.0)
    raise ValueError(family)


def _sample_instance(rng: random.Random, family: str) -> ProblemInstance:
    n = 1 if family == "step" else rng.randint(1, 2)
    costs = [_sample_cost(rng, family) for __ in range(n)]
    horizon = rng.randint(3, 6)
    if family == "step":
        knee = costs[0].knee  # type: ignore[attr-defined]
        arrivals = [(knee + 1,)] * (horizon + 1)
        limit = 10.0
    else:
        arrivals = [
            tuple(rng.randint(0, 2) for __ in range(n))
            for __ in range(horizon + 1)
        ]
        limit = rng.uniform(4.0, 12.0)
    return ProblemInstance(costs, limit, arrivals)


def _ratio(problem: ProblemInstance) -> float:
    lgm = find_optimal_lgm_plan(problem).cost
    opt = find_optimal_plan_exhaustive(problem, max_states=400_000).cost
    if opt <= 0:
        return 1.0
    return lgm / opt


def _perturb(
    rng: random.Random, problem: ProblemInstance
) -> ProblemInstance:
    """Move one modification between steps/tables (keeping totals small)."""
    arrivals = [list(d) for d in problem.arrivals]
    t = rng.randrange(len(arrivals))
    i = rng.randrange(problem.n)
    if rng.random() < 0.5 and arrivals[t][i] > 0:
        arrivals[t][i] -= 1
        t2 = rng.randrange(len(arrivals))
        arrivals[t2][rng.randrange(problem.n)] += 1
    else:
        if arrivals[t][i] >= 3:
            arrivals[t][i] -= 1
        else:
            arrivals[t][i] += 1
    return ProblemInstance(
        problem.cost_functions, problem.limit, [tuple(d) for d in arrivals]
    )


FAMILIES = ("linear", "concave", "block-io", "step")


def run_concavity_study(
    random_trials: int = 12,
    climb_steps: int = 15,
    seed: int = 616,
) -> ConcavityStudyResult:
    """Random + adversarial search for LGM/OPT gaps per cost family."""
    rng = random.Random(seed)
    rows = []
    for family in FAMILIES:
        worst_problem = None
        worst_ratio = 0.0
        for __ in range(random_trials):
            problem = _sample_instance(rng, family)
            try:
                ratio = _ratio(problem)
            except ValueError:  # oracle blew its state budget; skip
                continue
            if ratio > worst_ratio:
                worst_ratio, worst_problem = ratio, problem
        climbed = worst_ratio
        current = worst_problem
        for __ in range(climb_steps):
            if current is None:
                break
            candidate = _perturb(rng, current)
            try:
                ratio = _ratio(candidate)
            except ValueError:
                continue
            if ratio > climbed:
                climbed, current = ratio, candidate
        rows.append((family, worst_ratio, climbed))
    return ConcavityStudyResult(
        random_trials=random_trials, climb_steps=climb_steps, rows_data=rows
    )
