"""The introduction's motivating example: symmetric vs asymmetric cost.

Section 1 walks through ``R |x| S`` under a response-time constraint ``C``:

* **symmetric**: batch both tables until the combined refresh cost reaches
  ``C``, then flush everything.  The paper measures ~0.97 ms per
  modification;
* **asymmetric**: process every ``dS`` modification immediately (its cost
  is linear through the origin, so batching gains nothing) and batch
  ``dR`` until ``c_dR`` alone reaches ``C``.  The paper gets ~0.42 ms per
  modification -- a ~2.3x improvement.

We replay both the paper's back-of-envelope computation (on our measured
Figure-1 curves) and a full simulation with the NAIVE and OPT_LGM
policies, and report the improvement factor.  Absolute costs differ from
the paper's (different system, simulated clock), and the arrival rates
follow the uniform-over-rows mix documented in
:mod:`repro.experiments.common` rather than the paper's simplifying 1:1
assumption, so that -- as in the paper's setting -- both delta tables
consume comparable response-time budget per step.  The reproduced quantity
is the improvement *factor* of asymmetric over symmetric scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import CostFunction
from repro.core.naive import NaivePolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy
from repro.experiments import common
from repro.experiments.fig1_join_costs import run_fig1
from repro.experiments.reporting import format_table
from repro.workloads.arrivals import uniform_arrivals


@dataclass
class IntroExampleResult:
    """Per-modification costs under the two strategies."""

    limit: float
    rates: tuple[int, int]  # (dS-side, dR-side) modifications per step
    analytic_symmetric: float
    analytic_asymmetric: float
    simulated_naive: float
    simulated_optimal: float

    @property
    def analytic_factor(self) -> float:
        """Symmetric / asymmetric per-modification cost (paper: ~2.3x)."""
        return self.analytic_symmetric / self.analytic_asymmetric

    @property
    def simulated_factor(self) -> float:
        """NAIVE / OPT_LGM per-modification cost in full simulation."""
        return self.simulated_naive / self.simulated_optimal

    def format(self) -> str:
        return format_table(
            f"Intro example: per-modification maintenance cost "
            f"(C = {self.limit:.1f} ms, rates dS:dR = "
            f"{self.rates[0]}:{self.rates[1]})",
            ["strategy", "ms per modification"],
            [
                ("symmetric (analytic)", self.analytic_symmetric),
                ("asymmetric (analytic)", self.analytic_asymmetric),
                ("NAIVE (simulated)", self.simulated_naive),
                ("OPT_LGM (simulated)", self.simulated_optimal),
                ("analytic improvement factor", self.analytic_factor),
                ("simulated improvement factor", self.simulated_factor),
            ],
            precision=3,
        )


def _analytic_symmetric(
    c_r: CostFunction, c_s: CostFunction, rates: tuple[int, int], limit: float
) -> float:
    """Per-modification cost of flush-everything-when-full.

    With ``rates = (r_s, r_r)`` modifications per step, the state is full
    after the first ``n`` steps with ``c_r(n*r_r) + c_s(n*r_s) > C``; the
    flush then pays that combined cost for ``n * (r_r + r_s)``
    modifications.
    """
    r_s, r_r = rates
    n = 1
    while c_r(n * r_r) + c_s(n * r_s) <= limit:
        n += 1
    total = c_r(n * r_r) + c_s(n * r_s)
    return total / (n * (r_r + r_s))


def _analytic_asymmetric(
    c_r: CostFunction, c_s: CostFunction, rates: tuple[int, int], limit: float
) -> float:
    """Per-modification cost of eager-dS / batched-dR.

    dS modifications are processed every step (one ``c_s(r_s)`` batch); dR
    batches until ``c_dR`` alone exceeds ``C``.
    """
    r_s, r_r = rates
    n = 1
    while c_r(n * r_r) <= limit:
        n += 1
    per_step = c_r(n * r_r) / n + c_s(r_s)
    return per_step / (r_r + r_s)


def run_intro_example(
    scale: float = common.DEFAULT_SCALE,
    horizon: int = 400,
    limit: float | None = None,
    rates: tuple[int, int] | None = None,
) -> IntroExampleResult:
    """Reproduce the introduction's symmetric-vs-asymmetric comparison."""
    fig1 = run_fig1(scale=scale)
    c_r = fig1.c_delta_r.tabulated  # Supplier deltas: setup-heavy
    c_s = fig1.c_delta_s.tabulated  # PartSupp deltas: linear through origin
    if rates is None:
        rates = common.ARRIVAL_MIX  # (dS side, dR side) = (PS, S)
    if limit is None:
        # Head-room comparable to the paper's C = 0.35 s (~600 dR tuples
        # per constraint-sized batch there; ~85 Supplier updates here).
        limit = c_r(85) * 1.0

    analytic_sym = _analytic_symmetric(c_r, c_s, rates, limit)
    analytic_asym = _analytic_asymmetric(c_r, c_s, rates, limit)

    # Full simulation.  State vector order is (PS, S) = (dS side, dR side).
    arrivals = uniform_arrivals(rates, horizon)
    problem = ProblemInstance((c_s, c_r), limit, arrivals)
    naive_trace = simulate_policy(problem, NaivePolicy())
    optimal = find_optimal_lgm_plan(problem)
    total_mods = sum(rates) * horizon

    return IntroExampleResult(
        limit=limit,
        rates=rates,
        analytic_symmetric=analytic_sym,
        analytic_asymmetric=analytic_asym,
        simulated_naive=naive_trace.total_cost / total_mods,
        simulated_optimal=optimal.cost / total_mods,
    )
