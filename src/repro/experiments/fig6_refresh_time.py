"""Figure 6: total maintenance cost vs refresh time.

The paper's headline comparison: refresh time varies from 100 to 1000
(seconds there, steps here); a constant stream of modifications arrives at
every step; the response-time constraint is fixed.  Four plans:

* **NAIVE** -- the symmetric flush-everything baseline;
* **OPT_LGM** -- the A* optimum, re-optimized for each refresh time;
* **ADAPT** -- the optimal LGM plan for T0 = 500, adapted to each actual
  refresh time per Section 4.2;
* **ONLINE** -- the Section 4.3 heuristic with no advance knowledge.

The paper's findings, which constitute the reproduced 'shape': NAIVE is
clearly outperformed by all other approaches, and ADAPT and ONLINE both
track OPT_LGM closely despite using less advance knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adapt import adapt_plan
from repro.core.astar import find_optimal_lgm_plan
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.simulator import simulate_policy
from repro.experiments import common
from repro.experiments.reporting import format_table
from repro.workloads.arrivals import uniform_arrivals

DEFAULT_REFRESH_TIMES: tuple[int, ...] = tuple(range(100, 1001, 100))
ADAPT_BASE_HORIZON = 500


@dataclass
class Fig6Result:
    """Total cost per plan for each refresh time."""

    limit: float
    refresh_times: tuple[int, ...]
    naive: list[float]
    opt_lgm: list[float]
    adapt: list[float]
    online: list[float]

    def rows(self) -> list[tuple]:
        return [
            (t, n, o, a, ol)
            for t, n, o, a, ol in zip(
                self.refresh_times, self.naive, self.opt_lgm,
                self.adapt, self.online,
            )
        ]

    def worst_ratio_vs_opt(self, series: str) -> float:
        """max over refresh times of series_cost / OPT_LGM cost."""
        values = getattr(self, series)
        return max(v / o for v, o in zip(values, self.opt_lgm))

    def format(self) -> str:
        table = format_table(
            f"Figure 6: total maintenance cost vs refresh time "
            f"(C = {self.limit:.0f} ms, arrivals "
            f"{common.ARRIVAL_MIX[0]} PartSupp + {common.ARRIVAL_MIX[1]} "
            f"Supplier per step)",
            ["refresh T", "NAIVE", "OPT_LGM", f"ADAPT(T0={ADAPT_BASE_HORIZON})",
             "ONLINE"],
            self.rows(),
            precision=0,
        )
        summary = format_table(
            "Worst-case cost ratio vs OPT_LGM",
            ["plan", "max ratio"],
            [
                ("NAIVE", self.worst_ratio_vs_opt("naive")),
                ("ADAPT", self.worst_ratio_vs_opt("adapt")),
                ("ONLINE", self.worst_ratio_vs_opt("online")),
            ],
            precision=3,
        )
        return f"{table}\n\n{summary}"


def run_fig6(
    scale: float = common.DEFAULT_SCALE,
    refresh_times: tuple[int, ...] = DEFAULT_REFRESH_TIMES,
    limit: float | None = None,
) -> Fig6Result:
    """Sweep the refresh time and compare the four plans."""
    costs = common.cost_functions(scale=scale)
    if limit is None:
        limit = common.default_limit(costs)

    naive, opt_lgm, adapt, online = [], [], [], []
    for horizon in refresh_times:
        arrivals = uniform_arrivals(common.ARRIVAL_MIX, horizon + 1)
        problem = common.make_problem(arrivals, limit, costs)

        naive.append(simulate_policy(problem, NaivePolicy()).total_cost)
        opt_lgm.append(find_optimal_lgm_plan(problem).cost)
        adapt_policy = adapt_plan(problem, ADAPT_BASE_HORIZON)
        adapt.append(simulate_policy(problem, adapt_policy).total_cost)
        online.append(simulate_policy(problem, OnlinePolicy()).total_cost)

    return Fig6Result(
        limit=limit,
        refresh_times=tuple(refresh_times),
        naive=naive,
        opt_lgm=opt_lgm,
        adapt=adapt,
        online=online,
    )
