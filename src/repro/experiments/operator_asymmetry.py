"""Operator-level asymmetry study (the paper's future-work Section 7).

Takes the paper's Supplier-delta maintenance pipeline shape --

    dS -> [probe nation/region indexes]  (cheap, linear, selective)
       -> [join PartSupp by scan]        (setup-heavy, batch-friendly)
       -> [fold into MIN]                (cheap, linear)

-- and compares whole-pipeline batching (NAIVE lifted to pipelines)
against cut policies that eagerly propagate modifications through the
cheap prefix and batch in front of the scan join.  The savings mechanism
is the same asymmetry as the paper's table-level result, one level finer:
propagating through linear operators costs nothing extra and shrinks the
constraint-relevant backlog, so the setup-heavy operator gets bigger
batches under the same response-time budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costfuncs import LinearCost
from repro.experiments.reporting import format_table
from repro.staged import (
    CutPolicy,
    NaiveStagedPolicy,
    Pipeline,
    Stage,
    choose_best_cut,
    simulate_staged,
)


def supplier_delta_pipeline() -> Pipeline:
    """A pipeline with the paper view's qualitative per-operator costs."""
    return Pipeline(
        [
            # Index probes into nation/region: linear, no setup; the
            # region filter keeps ~20% of supplier deltas.
            Stage("probe dims", LinearCost(slope=0.3), fanout=0.2),
            # Scan-join against PartSupp: the batch-friendly operator.
            Stage("scan partsupp", LinearCost(slope=0.8, setup=120.0),
                  fanout=8.0),
            # Fold the matching rows into the MIN state: linear.
            Stage("fold MIN", LinearCost(slope=0.05), fanout=0.0),
        ]
    )


@dataclass
class OperatorAsymmetryResult:
    """Total cost per scheduling strategy over the pipeline."""

    limit: float
    horizon: int
    naive_cost: float
    cut_costs: list[tuple[int, float]]  # (cut position, total cost)
    best_cut: int
    best_cost: float

    def rows(self) -> list[tuple]:
        rows: list[tuple] = [
            ("whole-pipeline batching (NAIVE)", self.naive_cost,
             self.naive_cost / self.best_cost),
        ]
        for cut, cost in self.cut_costs:
            label = f"cut policy: propagate through {cut} stage(s)"
            if cut == self.best_cut:
                label += "  <- best"
            rows.append((label, cost, cost / self.best_cost))
        return rows

    def format(self) -> str:
        return format_table(
            f"Operator-level asymmetric batching (future work, Sec 7) "
            f"(C = {self.limit:.0f} ms, T = {self.horizon})",
            ["strategy", "total cost", "ratio vs best"],
            self.rows(),
        )


def run_operator_asymmetry(
    horizon: int = 400,
    rate: int = 2,
    limit: float | None = None,
) -> OperatorAsymmetryResult:
    """Compare whole-pipeline batching against every cut position."""
    pipeline = supplier_delta_pipeline()
    arrivals = [rate] * (horizon + 1)
    if limit is None:
        # Head-room for a few dozen modifications at the expensive stage.
        limit = pipeline.flush_cost((0, 40, 0)) * 1.3

    naive = simulate_staged(
        pipeline, limit, arrivals, NaiveStagedPolicy()
    )
    cut_costs = []
    for cut in range(1, pipeline.depth + 1):
        trace = simulate_staged(pipeline, limit, arrivals, CutPolicy(cut))
        cut_costs.append((cut, trace.total_cost))
    best_cut, best_cost = choose_best_cut(pipeline, limit, arrivals)
    best_cost = min(best_cost, naive.total_cost)
    return OperatorAsymmetryResult(
        limit=limit,
        horizon=horizon,
        naive_cost=naive.total_cost,
        cut_costs=cut_costs,
        best_cut=best_cut,
        best_cost=best_cost,
    )
