"""Figure 1: the two cost functions of a two-way join view.

The paper's motivating figure plots, for a join ``R |x| S`` where ``R`` is
indexed on the join attribute and ``S`` is not, the cost of processing a
delta batch from each side as a function of batch size:

* ``c_dR`` -- processing modifications to ``R`` requires joining them with
  the *unindexed* ``S``: the whole table is scanned/hashed, so the curve
  has a large setup component and is relatively flat afterwards
  (batch-friendly);
* ``c_dS`` -- processing modifications to ``S`` probes ``R``'s index once
  per modification: roughly linear through the origin (batching gains
  nothing).

In our TPC-R instantiation the indexed table (paper's ``R``) is Supplier
and the unindexed one (paper's ``S``) is PartSupp; the view is the plain
join ``PartSupp |x| Supplier`` projected onto keys and supplycost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import common
from repro.experiments.reporting import format_table
from repro.ivm.calibration import CalibrationResult, measure_cost_function

#: Batch sizes swept (the paper's x-axis runs 0..1000).
DEFAULT_BATCHES: tuple[int, ...] = (10, 25, 50, 100, 200, 400, 700, 1000)


@dataclass
class Fig1Result:
    """Measured cost curves for the two delta tables of ``R |x| S``."""

    c_delta_r: CalibrationResult  # Supplier deltas (expensive side)
    c_delta_s: CalibrationResult  # PartSupp deltas (cheap linear side)

    def rows(self) -> list[tuple[int, float, float]]:
        """``(batch_size, c_dR, c_dS)`` series."""
        by_k_s = dict(self.c_delta_s.samples)
        return [
            (k, cost_r, by_k_s[k])
            for k, cost_r in self.c_delta_r.samples
            if k in by_k_s
        ]

    def setup_ratio(self) -> float:
        """Fitted setup cost of ``c_dR`` over that of ``c_dS`` (>> 1 is
        the asymmetry the paper exploits)."""
        denominator = max(self.c_delta_s.linear_fit.setup, 1e-9)
        return self.c_delta_r.linear_fit.setup / denominator

    def format(self) -> str:
        header = format_table(
            "Figure 1: batch cost functions of R |x| S "
            "(R=Supplier indexed, S=PartSupp unindexed)",
            ["batch size k", "c_dR(k) ms", "c_dS(k) ms"],
            self.rows(),
        )
        fits = format_table(
            "Linear fits f(k) = a*k + b",
            ["curve", "slope a", "setup b", "max rel fit err"],
            [
                (
                    "c_dR (Supplier)",
                    self.c_delta_r.linear_fit.slope,
                    self.c_delta_r.linear_fit.setup,
                    self.c_delta_r.max_relative_fit_error(),
                ),
                (
                    "c_dS (PartSupp)",
                    self.c_delta_s.linear_fit.slope,
                    self.c_delta_s.linear_fit.setup,
                    self.c_delta_s.max_relative_fit_error(),
                ),
            ],
            precision=3,
        )
        return f"{header}\n\n{fits}"


def run_fig1(
    scale: float = common.DEFAULT_SCALE,
    batches: tuple[int, ...] = DEFAULT_BATCHES,
) -> Fig1Result:
    """Measure both cost curves of the two-way join view."""
    setup = common.build_setup(
        scale=scale, update_seed=101, spec=common.two_way_join_spec()
    )
    c_delta_s = measure_cost_function(
        setup.view, "PS", batches, setup.ps_updater
    )
    c_delta_r = measure_cost_function(
        setup.view, "S", batches, setup.supplier_updater
    )
    return Fig1Result(c_delta_r=c_delta_r, c_delta_s=c_delta_s)
