"""Empirical cost bound for the ONLINE heuristic (future work, Section 7).

The paper states: "we are interested in developing a cost bound for the
online heuristic algorithm in Section 4.3" -- no bound is proven.  This
study measures the empirical competitive ratio ``ONLINE / OPT_LGM`` over a
randomized family of instances (cost shapes x arrival processes x
constraint tightness) and reports its distribution and the worst instance
found, together with the same statistic for NAIVE as a yardstick.

A finding worth recording: on the *paper's* workloads (strong two-table
asymmetry, binding constraint) ONLINE tracks OPT within a fraction of a
percent (Figures 6/7), but on randomized instances with three tables,
loose constraints, and haphazard asymmetries its empirical ratio reaches
~1.5 -- the greedy amortized-cost measure ``H`` only looks ahead to the
*next* forced action, and with several dissimilar tables that horizon can
be too short.  NAIVE is sometimes near-optimal on the same instances
(when setups are small, flushing everything loses little).  So the
heuristic's excellent Figure-6/7 behaviour does not extend to a uniform
constant-factor guarantee, which is presumably why the paper left the
bound open.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.astar import find_optimal_lgm_plan
from repro.core.costfuncs import BlockIOCost, ConcaveCost, LinearCost
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy
from repro.experiments.reporting import format_table
from repro.workloads.arrivals import (
    StreamParams,
    stochastic_arrivals,
    uniform_arrivals,
)


@dataclass
class OnlineBoundResult:
    """Empirical competitive-ratio statistics per instance family."""

    samples_per_family: int
    rows_data: list[tuple[str, float, float, float, float]]
    worst_ratio: float
    worst_family: str

    def rows(self) -> list[tuple]:
        return self.rows_data

    def format(self) -> str:
        table = format_table(
            f"Empirical ONLINE cost bound "
            f"({self.samples_per_family} instances per family)",
            ["family", "ONLINE/OPT mean", "ONLINE/OPT max",
             "NAIVE/OPT mean", "NAIVE/OPT max"],
            self.rows_data,
            precision=3,
        )
        footer = (
            f"worst ONLINE ratio observed: {self.worst_ratio:.3f} "
            f"({self.worst_family})"
        )
        return f"{table}\n\n{footer}"


def _random_instance(rng: random.Random, family: str) -> ProblemInstance:
    n = rng.randint(1, 3)
    costs = []
    for __ in range(n):
        if family.startswith("linear"):
            costs.append(
                LinearCost(
                    slope=rng.uniform(0.2, 2.0),
                    setup=rng.uniform(0.0, 60.0),
                )
            )
        elif family.startswith("block"):
            costs.append(
                BlockIOCost(
                    io_cost=rng.uniform(5.0, 40.0),
                    block_size=rng.randint(4, 32),
                    slope=rng.uniform(0.1, 1.0),
                )
            )
        else:
            costs.append(
                ConcaveCost(
                    coeff=rng.uniform(2.0, 15.0),
                    exponent=rng.uniform(0.3, 0.9),
                )
            )
    horizon = rng.randint(60, 160)
    if family.endswith("bursty"):
        params = StreamParams(p=0.7, mu=1.5, sigma=4.0)
        arrivals = stochastic_arrivals(
            (params,) * n, horizon + 1, seed=rng.randrange(1 << 30)
        )
    else:
        arrivals = uniform_arrivals(
            tuple(rng.randint(1, 3) for __ in range(n)), horizon + 1
        )
    # Constraint: enough head-room for a several-step batch per table.
    per_step = sum(
        f(max(1, a)) for f, a in zip(costs, arrivals[0])
    )
    limit = per_step * rng.uniform(2.0, 6.0) + max(
        f(1) for f in costs
    )
    return ProblemInstance(costs, limit, arrivals)


FAMILIES = (
    "linear/uniform",
    "linear/bursty",
    "block-io/uniform",
    "concave/uniform",
    "concave/bursty",
)


def run_online_bound_study(
    samples_per_family: int = 8, seed: int = 4242
) -> OnlineBoundResult:
    """Measure ONLINE's and NAIVE's empirical competitive ratios."""
    rng = random.Random(seed)
    rows = []
    worst_ratio, worst_family = 0.0, ""
    for family in FAMILIES:
        online_ratios, naive_ratios = [], []
        for __ in range(samples_per_family):
            problem = _random_instance(rng, family)
            opt = find_optimal_lgm_plan(problem).cost
            if opt <= 0:
                continue
            online = simulate_policy(problem, OnlinePolicy()).total_cost
            naive = simulate_policy(problem, NaivePolicy()).total_cost
            online_ratios.append(online / opt)
            naive_ratios.append(naive / opt)
        if not online_ratios:
            continue
        family_worst = max(online_ratios)
        if family_worst > worst_ratio:
            worst_ratio, worst_family = family_worst, family
        rows.append(
            (
                family,
                sum(online_ratios) / len(online_ratios),
                family_worst,
                sum(naive_ratios) / len(naive_ratios),
                max(naive_ratios),
            )
        )
    return OnlineBoundResult(
        samples_per_family=samples_per_family,
        rows_data=rows,
        worst_ratio=worst_ratio,
        worst_family=worst_family,
    )
