"""Figure 4: maintenance cost vs batch size for the four-way MIN view.

The paper measures, on the TPC-R view

    SELECT MIN(PS.supplycost)
    FROM PartSupp PS, Supplier S, Nation N, Region R
    WHERE ... AND R.name = 'MIDDLE EAST'

the cost of maintaining the view given a batch of k updates to PartSupp
(random ``supplycost`` changes) and to Supplier (random ``nationkey``
changes).  Its observations, which this driver reproduces:

* both curves are approximately subadditive and follow linear trends;
* PartSupp updates are cheap and stay stable (small tables are joined via
  indexes; a random supplycost update rarely disturbs the MIN);
* Supplier updates are substantially more expensive because the join
  partner PartSupp is much larger (here: an un-indexed scan per batch).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import common
from repro.experiments.reporting import format_table
from repro.ivm.calibration import CalibrationResult, measure_cost_function

DEFAULT_BATCHES: tuple[int, ...] = (10, 25, 50, 100, 200, 400, 700, 1000)


@dataclass
class Fig4Result:
    """Measured maintenance cost curves for the MIN view."""

    partsupp: CalibrationResult
    supplier: CalibrationResult
    min_recomputations: int

    def rows(self) -> list[tuple[int, float, float]]:
        """``(batch_size, partsupp_ms, supplier_ms)`` series."""
        by_k_s = dict(self.supplier.samples)
        return [
            (k, cost_ps, by_k_s[k])
            for k, cost_ps in self.partsupp.samples
            if k in by_k_s
        ]

    def format(self) -> str:
        table = format_table(
            "Figure 4: maintenance cost vs batch size "
            "(4-way MIN view, TPC-R)",
            ["batch size k", "PartSupp batch ms", "Supplier batch ms"],
            self.rows(),
        )
        fits = format_table(
            "Linear fits f(k) = a*k + b (paper: 'both follow linear trends')",
            ["delta table", "slope a", "setup b", "max rel fit err"],
            [
                (
                    "PartSupp",
                    self.partsupp.linear_fit.slope,
                    self.partsupp.linear_fit.setup,
                    self.partsupp.max_relative_fit_error(),
                ),
                (
                    "Supplier",
                    self.supplier.linear_fit.slope,
                    self.supplier.linear_fit.setup,
                    self.supplier.max_relative_fit_error(),
                ),
            ],
            precision=3,
        )
        note = (
            f"MIN recomputations triggered during calibration: "
            f"{self.min_recomputations} (the paper's 'MIN is not "
            f"incrementally maintainable' irregularity source)"
        )
        return f"{table}\n\n{fits}\n\n{note}"


def run_fig4(
    scale: float = common.DEFAULT_SCALE,
    batches: tuple[int, ...] = DEFAULT_BATCHES,
) -> Fig4Result:
    """Measure both maintenance cost curves of the paper's MIN view."""
    setup = common.build_setup(scale=scale, update_seed=404)
    cal_ps = measure_cost_function(
        setup.view, "PS", batches, setup.ps_updater
    )
    cal_s = measure_cost_function(
        setup.view, "S", batches, setup.supplier_updater
    )
    recomputes = sum(
        getattr(state, "recomputations", 0)
        for state in (setup.view._groups or {}).values()
    )
    return Fig4Result(
        partsupp=cal_ps, supplier=cal_s, min_recomputations=recomputes
    )
