"""Experiment drivers: one module per paper figure/table, plus extensions.

Each driver exposes a ``run_*`` function returning a result dataclass with
the figure's data series and a ``format()`` method printing the same rows
the paper plots.  The benchmarks in ``benchmarks/`` wrap these drivers;
the mapping from paper artifact to driver is the per-experiment index in
``DESIGN.md``.
"""

from repro.experiments.common import (
    ExperimentSetup,
    build_setup,
    calibrated_costs,
    paper_view_spec,
)
from repro.experiments.fig1_join_costs import run_fig1
from repro.experiments.intro_example import run_intro_example
from repro.experiments.fig4_maintenance_costs import run_fig4
from repro.experiments.fig5_validation import run_fig5
from repro.experiments.fig6_refresh_time import run_fig6
from repro.experiments.fig7_nonuniform import run_fig7
from repro.experiments.bounds_study import run_bounds_study
from repro.experiments.ablations import (
    run_astar_heuristic_ablation,
    run_cost_family_study,
    run_estimator_ablation,
    run_plan_class_ablation,
    run_replanning_study,
)
from repro.experiments.operator_asymmetry import run_operator_asymmetry
from repro.experiments.online_bound_study import run_online_bound_study
from repro.experiments.three_way import run_three_way
from repro.experiments.concavity_study import run_concavity_study

__all__ = [
    "ExperimentSetup",
    "build_setup",
    "calibrated_costs",
    "paper_view_spec",
    "run_astar_heuristic_ablation",
    "run_bounds_study",
    "run_concavity_study",
    "run_cost_family_study",
    "run_estimator_ablation",
    "run_fig1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_intro_example",
    "run_online_bound_study",
    "run_replanning_study",
    "run_operator_asymmetry",
    "run_three_way",
    "run_plan_class_ablation",
]
