"""Three-table scheduling (extension): n = 3 asymmetry on the paper view.

The paper's experiments modify two base tables (PartSupp and Supplier);
its framework supports any ``n`` ("n <= 5 for the TPC-R views we use").
This extension adds the third dimension: random region reassignment of
nations.  The three streams have a steep cost hierarchy --

* PartSupp updates: one-row effect, index probes; cheap and linear;
* Supplier updates: 80-row fan-out plus a PartSupp scan; setup-heavy;
* Nation updates: the supplier fan-out *times* the per-nation supplier
  count plus the same scan; the most expensive per modification --

so the optimal plan flushes PS eagerly, batches S substantially, and
batches N hardest.  The experiment verifies the asymmetric advantage
persists at n = 3 and that ONLINE (now enumerating up to 2^3 - 1 = 7
candidate actions per forced step) still tracks OPT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.astar import find_optimal_lgm_plan
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.problem import ProblemInstance
from repro.core.simulator import simulate_policy
from repro.experiments import common
from repro.experiments.reporting import format_table
from repro.ivm.calibration import measure_cost_function
from repro.tpcr.updates import NationRegionUpdater
from repro.workloads.arrivals import periodic_arrivals

#: Arrival pattern (PartSupp, Supplier, Nation), repeated: row-uniform for
#: PS/S every step; Nation churn sparse (one region reassignment per five
#: steps -- rare events in any real feed, and keeping two setup-heavy
#: streams simultaneously saturated would leave no batching head-room for
#: either under a single budget).
THREE_WAY_PATTERN: tuple[tuple[int, int, int], ...] = (
    (80, 1, 1),
    (80, 1, 0),
    (80, 1, 0),
    (80, 1, 0),
    (80, 1, 0),
)


@dataclass
class ThreeWayResult:
    """Costs of the three plans on the n = 3 instance."""

    limit: float
    horizon: int
    fits: dict[str, tuple[float, float]]  # alias -> (slope, setup)
    naive_cost: float
    opt_cost: float
    online_cost: float
    opt_action_counts: tuple[int, int, int]

    def rows(self) -> list[tuple]:
        return [
            ("NAIVE", self.naive_cost, self.naive_cost / self.opt_cost),
            ("OPT_LGM", self.opt_cost, 1.0),
            ("ONLINE", self.online_cost, self.online_cost / self.opt_cost),
        ]

    def format(self) -> str:
        fits = format_table(
            "Calibrated cost functions, n = 3 (f(k) = a*k + b)",
            ["delta table", "slope a", "setup b"],
            [
                (alias, slope, setup)
                for alias, (slope, setup) in self.fits.items()
            ],
            precision=2,
        )
        plans = format_table(
            f"Three-way scheduling (C = {self.limit:.0f} ms, "
            f"T = {self.horizon}, arrivals pattern {THREE_WAY_PATTERN[0]}/{THREE_WAY_PATTERN[1]}...)",
            ["plan", "total cost", "ratio vs OPT"],
            self.rows(),
        )
        counts = (
            f"OPT_LGM flush counts per table (PS, S, N): "
            f"{self.opt_action_counts} -- eager on the cheap stream, "
            f"sparse on the expensive ones"
        )
        return f"{fits}\n\n{plans}\n\n{counts}"


def run_three_way(
    scale: float = common.DEFAULT_SCALE,
    horizon: int = 300,
    limit: float | None = None,
) -> ThreeWayResult:
    """Calibrate three cost functions and compare the plans."""
    setup = common.build_setup(scale=scale, update_seed=333)
    nation_updater = NationRegionUpdater(
        setup.database.table("nation"), seed=334
    )
    cal_ps = measure_cost_function(
        setup.view, "PS", (1, 5, 10, 40, 120), setup.ps_updater
    )
    cal_s = measure_cost_function(
        setup.view, "S", (1, 4, 12, 30), setup.supplier_updater
    )
    cal_n = measure_cost_function(
        setup.view, "N", (1, 2, 6, 12), nation_updater
    )
    costs = (cal_ps.tabulated, cal_s.tabulated, cal_n.tabulated)
    if limit is None:
        # Head-room for a ~30-update Supplier batch AND a ~10-update
        # Nation batch simultaneously: with two setup-heavy streams, the
        # budget must fit both setups or batching one forbids the other.
        limit = (cal_s.tabulated(30) + cal_n.tabulated(10)) * 1.15

    arrivals = periodic_arrivals(THREE_WAY_PATTERN, horizon + 1)
    problem = ProblemInstance(costs, limit, arrivals)
    naive = simulate_policy(problem, NaivePolicy())
    optimal = find_optimal_lgm_plan(problem)
    online = simulate_policy(problem, OnlinePolicy())
    return ThreeWayResult(
        limit=limit,
        horizon=horizon,
        fits={
            alias: (cal.linear_fit.slope, cal.linear_fit.setup)
            for alias, cal in (("PS", cal_ps), ("S", cal_s), ("N", cal_n))
        },
        naive_cost=naive.total_cost,
        opt_cost=optimal.cost,
        online_cost=online.total_cost,
        opt_action_counts=tuple(
            optimal.plan.action_count(i) for i in range(3)
        ),
    )
