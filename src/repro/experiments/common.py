"""Shared experiment infrastructure: the paper's database, view, and costs.

Every experiment starts from the same TPC-R setup (Section 5 of the paper):

* tables Region, Nation, Supplier, PartSupp at a configurable scale factor
  (the paper uses SF 1 -- PartSupp 800k, Supplier 10k rows; our pure-Python
  engine defaults to SF 0.01 -- 8k / 100 rows -- preserving the 80:1 ratio
  that drives the cost asymmetry);
* physical design: Supplier, Nation, Region indexed on their keys;
  PartSupp deliberately *not* indexed on ``suppkey``, so Supplier-delta
  maintenance must scan/hash PartSupp (big setup cost) while
  PartSupp-delta maintenance probes the Supplier index (cheap, linear);
* the experiment view ``SELECT MIN(PS.supplycost) ... WHERE R.name =
  'MIDDLE EAST'`` over the four-way join;
* the two update streams: random ``supplycost`` updates on PartSupp and
  random ``nationkey`` updates on Supplier.

**Arrival-mix substitution (documented in DESIGN.md):** the paper's
Figure 6 feeds one PartSupp and one Supplier update per second against
cost functions measured on its DBMS.  Under our engine's cost model a
single Supplier update costs ~50x a PartSupp update (the 80-row join
fan-out), so a 1:1 mix would let the Supplier term dominate and flatten
every policy to the same cost.  We instead draw modifications uniformly
over the *rows* of the database -- 80 PartSupp : 1 Supplier per step,
matching the tables' 80:1 size ratio -- which restores the paper's
geometry: both delta tables consume comparable response-time budget per
step, and asymmetric scheduling has something to exploit.  The scheduling
problem is over ``n = 2`` tables (Nation and Region receive no updates,
as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.core.costfuncs import CostFunction, LinearCost, TabulatedCost
from repro.core.problem import ProblemInstance
from repro.engine.block import DEFAULT_BLOCK_SIZE
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.ivm.calibration import CalibrationResult, measure_cost_function
from repro.ivm.view import MaterializedView
from repro.tpcr.gen import load_tpcr
from repro.tpcr.updates import PartSuppCostUpdater, SupplierNationUpdater

#: Default scale factor: 8,000 PartSupp rows, 100 Supplier rows.
DEFAULT_SCALE = 0.01
#: Default data-generation seed (dbgen's own default birthday seed).
DEFAULT_SEED = 19721212
#: Per-step arrival mix (PartSupp, Supplier): uniform over database rows.
ARRIVAL_MIX: tuple[int, int] = (80, 1)
#: The two scheduled aliases, in state-vector order.
SCHEDULED_ALIASES: tuple[str, str] = ("PS", "S")


def paper_view_spec() -> QuerySpec:
    """The paper's experiment view (Section 5)."""
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        joins=(
            JoinSpec("S", "supplier", "PS.suppkey", "suppkey"),
            JoinSpec("N", "nation", "S.nationkey", "nationkey"),
            JoinSpec("R", "region", "N.regionkey", "regionkey"),
        ),
        filters=(col("R.name") == lit("MIDDLE EAST"),),
        aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
    )


def two_way_join_spec() -> QuerySpec:
    """Figure 1's two-way join ``R |x| S`` as an SPJ view.

    Paper's ``R`` (indexed on the join attribute) maps to our Supplier,
    paper's ``S`` (not indexed) to our PartSupp: processing Supplier
    deltas must scan PartSupp (expensive, batch-friendly), processing
    PartSupp deltas probes the Supplier index (cheap, linear).
    """
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        joins=(JoinSpec("S", "supplier", "PS.suppkey", "suppkey"),),
        projection=("PS.partkey", "PS.suppkey", "PS.supplycost", "S.nationkey"),
    )


@dataclass
class ExperimentSetup:
    """A live database, view, and update streams for one experiment run."""

    database: Database
    view: MaterializedView
    ps_updater: PartSuppCostUpdater
    supplier_updater: SupplierNationUpdater
    scale: float

    def updater_for(self, alias: str):
        """The update stream feeding scheduled alias ``alias``."""
        if alias == "PS":
            return self.ps_updater
        if alias == "S":
            return self.supplier_updater
        raise KeyError(f"no update stream for alias {alias!r}")

    def apply_arrivals(self, arrivals: Sequence[int]) -> None:
        """Apply one step's modifications: ``(partsupp_count, supplier_count)``."""
        ps_count, s_count = arrivals
        self.ps_updater.apply(ps_count)
        self.supplier_updater.apply(s_count)


def build_setup(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    update_seed: int = 7,
    spec: QuerySpec | None = None,
    block_size: int | None = DEFAULT_BLOCK_SIZE,
) -> ExperimentSetup:
    """Build a fresh database + view + update streams.

    A fresh setup per run keeps live experiments independent; use the same
    ``update_seed`` to replay identical modification streams across plans
    (Figure 5 needs this).  ``block_size`` selects the engine's execution
    granularity (None = row-at-a-time); simulated costs are identical
    either way, so experiments never need to pin it.
    """
    db = Database(block_size=block_size)
    load_tpcr(db, scale=scale, seed=seed)
    db.table("supplier").create_index("suppkey")
    db.table("nation").create_index("nationkey")
    db.table("region").create_index("regionkey")
    view_spec = spec if spec is not None else paper_view_spec()
    view = MaterializedView("paper_view", db, view_spec)
    return ExperimentSetup(
        database=db,
        view=view,
        ps_updater=PartSuppCostUpdater(db.table("partsupp"), seed=update_seed),
        supplier_updater=SupplierNationUpdater(
            db.table("supplier"), seed=update_seed + 1
        ),
        scale=scale,
    )


#: Calibration sweep used for the planner-facing cost functions.  Starts
#: at k = 1: TabulatedCost interpolates linearly from (0, 0) to the first
#: sample, so without a k = 1 anchor the model would understate the setup
#: cost of tiny batches by ~the setup/first-sample ratio -- and optimal
#: planners exploit exactly such fictions.
CALIBRATION_BATCHES: tuple[int, ...] = (1, 2, 5, 10, 25, 50, 100, 200, 400)


@lru_cache(maxsize=4)
def calibrated_costs(
    scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED
) -> tuple[CalibrationResult, CalibrationResult]:
    """Measured ``(f_PS, f_S)`` cost curves for the paper view.

    Cached per (scale, seed): calibration runs a few hundred live
    maintenance batches, and its output is a pure value safe to share
    across experiments (the scratch database it used is discarded).
    """
    setup = build_setup(scale=scale, seed=seed, update_seed=991)
    cal_ps = measure_cost_function(
        setup.view, "PS", CALIBRATION_BATCHES, setup.ps_updater
    )
    cal_s = measure_cost_function(
        setup.view, "S", CALIBRATION_BATCHES, setup.supplier_updater
    )
    return cal_ps, cal_s


def cost_functions(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    form: str = "tabulated",
) -> tuple[CostFunction, CostFunction]:
    """The planner-facing ``(f_PS, f_S)``, tabulated or linear-fitted."""
    cal_ps, cal_s = calibrated_costs(scale, seed)
    if form == "tabulated":
        return cal_ps.tabulated, cal_s.tabulated
    if form == "linear":
        return cal_ps.linear_fit, cal_s.linear_fit
    raise ValueError(f"unknown cost-function form {form!r}")


def make_problem(
    arrivals: Sequence[Sequence[int]],
    limit: float,
    costs: tuple[CostFunction, CostFunction] | None = None,
) -> ProblemInstance:
    """A scheduling problem over (PartSupp, Supplier) with calibrated costs."""
    if costs is None:
        costs = cost_functions()
    return ProblemInstance(costs, limit, arrivals)


def default_limit(costs: tuple[CostFunction, CostFunction] | None = None) -> float:
    """The Figure-6 response-time constraint, scaled to our cost model.

    The paper uses C = 12 s against its measured curves; we choose C so a
    Supplier batch has comparable head-room (~30 Supplier updates fit in
    one constraint-sized batch, matching the order of batching the paper's
    C afforded).
    """
    if costs is None:
        costs = cost_functions()
    __, f_s = costs
    return f_s(30) * 1.15
