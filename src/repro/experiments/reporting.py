"""Plain-text table formatting for experiment output.

Every experiment's ``format()`` renders through these helpers so the
benchmark logs (``bench_output.txt``) read like the paper's tables.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 2,
) -> str:
    """Render an aligned ASCII table with a title rule."""
    rendered_rows = [
        [_render_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _render_cell(cell: Any, precision: int) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_kv_block(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """Render a key/value parameter block."""
    width = max(len(k) for k, __ in pairs)
    lines = [title, "-" * len(title)]
    for key, value in pairs:
        lines.append(f"{key.ljust(width)} : {value}")
    return "\n".join(lines)
