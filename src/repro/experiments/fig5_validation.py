"""Figure 5: validating the simulator against the live system.

The paper speeds up its experiments by *simulating* plan execution against
measured cost functions, and validates the simulation by also running the
same plans on the real system: "there is negligible difference between the
simulated costs and the actual ones".

We reproduce the methodology exactly:

* the **simulated** cost of a plan is computed by
  :func:`repro.core.simulator.simulate_policy` /
  :func:`~repro.core.simulator.execute_plan` against the calibrated
  (tabulated) cost functions;
* the **actual** cost executes the same plan through
  :class:`repro.ivm.maintainer.ViewMaintainer` against the live engine,
  with identical update streams (same seed), summing the engine-measured
  cost of every maintenance action.

Three plans are validated, as in the paper: NAIVE, OPT_LGM, and ONLINE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.astar import find_optimal_lgm_plan
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import Policy, ReplayPolicy
from repro.core.simulator import simulate_policy
from repro.experiments import common
from repro.experiments.reporting import format_table
from repro.ivm.maintainer import ViewMaintainer
from repro.workloads.arrivals import uniform_arrivals


@dataclass
class ValidationRow:
    """Simulated vs live cost for one plan."""

    plan: str
    simulated_cost: float
    actual_cost: float

    @property
    def relative_error(self) -> float:
        """|simulated - actual| / actual."""
        if self.actual_cost == 0:
            return 0.0
        return abs(self.simulated_cost - self.actual_cost) / self.actual_cost


@dataclass
class Fig5Result:
    """The validation table."""

    limit: float
    horizon: int
    rows_data: list[ValidationRow]

    def rows(self) -> list[tuple[str, float, float, float]]:
        return [
            (r.plan, r.simulated_cost, r.actual_cost, r.relative_error)
            for r in self.rows_data
        ]

    def max_relative_error(self) -> float:
        """The headline validation number (paper: 'negligible')."""
        return max(r.relative_error for r in self.rows_data)

    def format(self) -> str:
        return format_table(
            f"Figure 5: simulated vs actual plan cost "
            f"(T = {self.horizon}, C = {self.limit:.0f} ms)",
            ["plan", "simulated ms", "actual ms", "rel err"],
            self.rows(),
            precision=3,
        )


def _live_cost(
    policy: Policy,
    arrivals: list[tuple[int, ...]],
    limit,
    costs,
    scale: float,
    update_seed: int,
) -> float:
    """Execute a policy against a freshly built live system."""
    setup = common.build_setup(scale=scale, update_seed=update_seed)
    maintainer = ViewMaintainer(
        setup.view,
        costs,
        limit=limit,
        policy=policy,
        scheduled_aliases=common.SCHEDULED_ALIASES,
    )
    horizon = len(arrivals) - 1
    for t, step_arrivals in enumerate(arrivals):
        setup.apply_arrivals(step_arrivals)
        if t == horizon:
            maintainer.refresh(t)
        else:
            maintainer.step(t)
    return maintainer.log.total_actual_cost_ms


def run_fig5(
    scale: float = common.DEFAULT_SCALE,
    horizon: int = 100,
    update_seed: int = 505,
) -> Fig5Result:
    """Validate the simulator on NAIVE, OPT_LGM, and ONLINE."""
    costs = common.cost_functions(scale=scale)
    limit = common.default_limit(costs)
    arrivals = uniform_arrivals(common.ARRIVAL_MIX, horizon + 1)
    problem = common.make_problem(arrivals, limit, costs)

    optimal = find_optimal_lgm_plan(problem)
    plans: list[tuple[str, Policy, float]] = [
        (
            "NAIVE",
            NaivePolicy(),
            simulate_policy(problem, NaivePolicy()).total_cost,
        ),
        ("OPT_LGM", ReplayPolicy(optimal.plan.actions), optimal.cost),
        (
            "ONLINE",
            OnlinePolicy(),
            simulate_policy(problem, OnlinePolicy()).total_cost,
        ),
    ]

    rows = []
    for name, live_policy, simulated in plans:
        actual = _live_cost(
            live_policy, arrivals, limit, costs, scale, update_seed
        )
        rows.append(
            ValidationRow(plan=name, simulated_cost=simulated, actual_cost=actual)
        )
    return Fig5Result(limit=limit, horizon=horizon, rows_data=rows)
