"""Publish/subscribe on top of batch incremental view maintenance.

The paper is motivated by a pub/sub system (built at Duke) where a
subscription consists of a *content query* (what I want) and a
*notification condition* (when I want it), with a quality-of-service
guarantee bounding the processing delay of notifications.  The content
query's result is maintained batch-incrementally: it only needs to be up
to date when the notification condition triggers, so between notifications
the system batches modifications -- exactly the setting the scheduling
theory optimizes.

This subpackage implements that application:

* :class:`~repro.pubsub.conditions.NotificationCondition` implementations
  -- periodic ("every hour"), value-watch ("oil price changed by more than
  10% since the last report"), data-driven, and boolean combinations;
* :class:`~repro.pubsub.subscription.Subscription` -- a content query plus
  a condition plus a per-subscription response-time guarantee;
* :class:`~repro.pubsub.broker.PubSubBroker` -- registers subscriptions,
  advances the clock, schedules maintenance with any
  :class:`~repro.core.policies.Policy`, evaluates conditions, refreshes on
  trigger, and emits :class:`~repro.pubsub.broker.Notification` records
  carrying the result diff and the (guarantee-checked) refresh latency.
"""

from repro.pubsub.conditions import (
    AllOf,
    AnyOf,
    EveryNSteps,
    NotificationCondition,
    OnEveryChange,
    ValueWatch,
)
from repro.pubsub.subscription import Subscription
from repro.pubsub.broker import Notification, PubSubBroker

__all__ = [
    "AllOf",
    "AnyOf",
    "EveryNSteps",
    "Notification",
    "NotificationCondition",
    "OnEveryChange",
    "PubSubBroker",
    "Subscription",
    "ValueWatch",
]
