"""Notification conditions ("when I want it").

Conditions are evaluated *without* refreshing the subscription's view:
they may read the clock and the (always-current) base tables, but not the
possibly stale view contents.  This mirrors the paper's examples:

* "tell me the value of my investment portfolio **every hour**" --
  :class:`EveryNSteps`;
* "report total gasoline sales **if the oil price has changed by more than
  10% since the last report**" -- :class:`ValueWatch` probing a base-table
  value and comparing it against its value at the previous notification.

Boolean combinations (:class:`AllOf`, :class:`AnyOf`) compose conditions.
Conditions are stateful (they remember the last notification); the broker
calls :meth:`NotificationCondition.notified` whenever it fires a
notification for the owning subscription.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

from repro.engine.database import Database


class NotificationCondition(ABC):
    """Decides, each time step, whether a subscription must be refreshed."""

    @abstractmethod
    def should_notify(self, t: int, database: Database) -> bool:
        """Whether the condition triggers at time ``t``."""

    def notified(self, t: int, result: Any) -> None:
        """Hook: the broker fired a notification at ``t`` with ``result``.

        Stateful conditions (e.g. :class:`ValueWatch`) override this to
        re-baseline.  Default: no state.
        """


class EveryNSteps(NotificationCondition):
    """Trigger periodically: at ``phase``, ``phase + n``, ``phase + 2n``...

    The paper's "every hour" subscription with a discrete clock.
    """

    def __init__(self, n: int, phase: int = 0):
        if n < 1:
            raise ValueError(f"period must be >= 1, got {n}")
        self.n = n
        self.phase = phase % n

    def should_notify(self, t: int, database: Database) -> bool:
        return t % self.n == self.phase

    def __repr__(self) -> str:
        return f"EveryNSteps({self.n}, phase={self.phase})"


class ValueWatch(NotificationCondition):
    """Trigger when a probed value drifts from its last-notified baseline.

    ``probe(database)`` reads any scalar from the *base* tables (always
    current, so no refresh is needed to evaluate the condition).  The
    condition triggers when the probed value differs from the baseline by
    more than ``relative`` (fractional) or ``absolute`` drift; the
    baseline resets whenever the subscription notifies.
    """

    def __init__(
        self,
        probe: Callable[[Database], float],
        relative: float | None = None,
        absolute: float | None = None,
    ):
        if relative is None and absolute is None:
            raise ValueError("need a relative or an absolute threshold")
        if relative is not None and relative <= 0:
            raise ValueError(f"relative threshold must be > 0, got {relative}")
        if absolute is not None and absolute <= 0:
            raise ValueError(f"absolute threshold must be > 0, got {absolute}")
        self.probe = probe
        self.relative = relative
        self.absolute = absolute
        self._baseline: float | None = None

    def should_notify(self, t: int, database: Database) -> bool:
        current = float(self.probe(database))
        if self._baseline is None:
            self._baseline = current
            return False
        drift = abs(current - self._baseline)
        if self.absolute is not None and drift > self.absolute:
            return True
        if self.relative is not None:
            scale = abs(self._baseline)
            if scale == 0:
                return drift > 0
            if drift / scale > self.relative:
                return True
        return False

    def notified(self, t: int, result: Any) -> None:
        # Re-baseline at the probed value as of the notification.
        self._baseline = None  # next should_notify() re-reads it

    def __repr__(self) -> str:
        return (
            f"ValueWatch(relative={self.relative}, absolute={self.absolute})"
        )


class OnEveryChange(NotificationCondition):
    """Trigger whenever any watched base table was modified this step.

    The eager end of the spectrum: turns the subscription into an
    immediately maintained view (useful as a baseline in experiments).
    """

    def __init__(self, tables: Sequence[str]):
        if not tables:
            raise ValueError("need at least one table to watch")
        self.tables = tuple(tables)
        self._last_lsns: dict[str, int] | None = None

    def should_notify(self, t: int, database: Database) -> bool:
        current = {
            name: database.table(name).current_lsn for name in self.tables
        }
        changed = self._last_lsns is not None and current != self._last_lsns
        self._last_lsns = current
        return changed

    def __repr__(self) -> str:
        return f"OnEveryChange({list(self.tables)})"


class AllOf(NotificationCondition):
    """Conjunction: trigger when every sub-condition triggers."""

    def __init__(self, *conditions: NotificationCondition):
        if not conditions:
            raise ValueError("AllOf needs at least one condition")
        self.conditions = conditions

    def should_notify(self, t: int, database: Database) -> bool:
        # Evaluate all (no short-circuit): stateful conditions need to see
        # every step to track their baselines.
        results = [c.should_notify(t, database) for c in self.conditions]
        return all(results)

    def notified(self, t: int, result: Any) -> None:
        for condition in self.conditions:
            condition.notified(t, result)

    def __repr__(self) -> str:
        return f"AllOf({', '.join(map(repr, self.conditions))})"


class AnyOf(NotificationCondition):
    """Disjunction: trigger when any sub-condition triggers."""

    def __init__(self, *conditions: NotificationCondition):
        if not conditions:
            raise ValueError("AnyOf needs at least one condition")
        self.conditions = conditions

    def should_notify(self, t: int, database: Database) -> bool:
        results = [c.should_notify(t, database) for c in self.conditions]
        return any(results)

    def notified(self, t: int, result: Any) -> None:
        for condition in self.conditions:
            condition.notified(t, result)

    def __repr__(self) -> str:
        return f"AnyOf({', '.join(map(repr, self.conditions))})"
