"""Subscriptions: content query + notification condition + QoS guarantee."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.costfuncs import CostFunction
from repro.core.policies import Policy
from repro.engine.query import QuerySpec
from repro.pubsub.conditions import NotificationCondition


@dataclass
class Subscription:
    """One subscriber's standing request.

    Parameters
    ----------
    name:
        Unique identifier within a broker.
    query:
        The content query ("what I want"), any
        :class:`~repro.engine.query.QuerySpec` the engine supports.
    condition:
        The notification condition ("when I want it").
    policy:
        The batch maintenance scheduling policy used between notifications
        (NAIVE / ADAPT / ONLINE / a replayed plan).
    cost_functions:
        One calibrated cost function per *scheduled* base table of the
        query (see ``scheduled_aliases``).
    limit:
        The response-time guarantee ``C``: any refresh triggered by the
        condition must complete within this (cost-model) budget.  The
        maintenance policy keeps the backlog small enough that this always
        holds -- the paper's central constraint.
    scheduled_aliases:
        The query aliases whose base tables receive modifications (the
        scheduling state vector).  Defaults to all aliases.
    """

    name: str
    query: QuerySpec
    condition: NotificationCondition
    policy: Policy
    cost_functions: Sequence[CostFunction]
    limit: float
    scheduled_aliases: tuple[str, ...] | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("subscription needs a name")
        if self.limit <= 0:
            raise ValueError(
                f"response-time guarantee must be positive, got {self.limit}"
            )
        aliases = (
            self.scheduled_aliases
            if self.scheduled_aliases is not None
            else self.query.aliases
        )
        if len(self.cost_functions) != len(aliases):
            raise ValueError(
                f"subscription {self.name!r}: need one cost function per "
                f"scheduled alias {aliases}, got {len(self.cost_functions)}"
            )
