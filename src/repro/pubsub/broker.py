"""The pub/sub broker: subscriptions, scheduling, notifications.

Drives the paper's motivating workflow.  Each registered subscription gets
its own materialized view and :class:`~repro.ivm.maintainer.ViewMaintainer`
running the subscription's scheduling policy.  On every broker tick:

1. each subscription's maintainer ingests the step's base-table
   modifications and lets its policy batch or process them (keeping the
   backlog refreshable within the subscription's guarantee ``C``);
2. the notification condition is evaluated against the clock and the
   always-current base tables;
3. if it triggers, the view is **refreshed** -- all pending modifications
   are processed -- and a :class:`Notification` is emitted with the old
   and new results and the measured refresh latency.  The latency is
   checked against the guarantee: under a correct policy the refresh cost
   never exceeds ``C``, which is exactly the response-time constraint of
   Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.engine.database import Database
from repro.ivm.maintainer import ViewMaintainer
from repro.ivm.view import MaterializedView
from repro.obs import slo
from repro.pubsub.subscription import Subscription


@dataclass(frozen=True)
class Notification:
    """One delivered notification."""

    subscription: str
    t: int
    old_result: Any
    new_result: Any
    refresh_cost_ms: float
    within_guarantee: bool

    @property
    def changed(self) -> bool:
        """Whether the content actually differs from the last notification."""
        return self.old_result != self.new_result


@dataclass
class _Registration:
    subscription: Subscription
    view: MaterializedView
    maintainer: ViewMaintainer
    last_result: Any
    notifications: list[Notification] = field(default_factory=list)


class PubSubBroker:
    """Hosts subscriptions over one shared database."""

    def __init__(self, database: Database):
        self.database = database
        self._registrations: dict[str, _Registration] = {}
        self._clock = -1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def subscribe(self, subscription: Subscription) -> None:
        """Register a subscription; materializes its content query now."""
        if subscription.name in self._registrations:
            raise ValueError(
                f"subscription {subscription.name!r} already registered"
            )
        view = MaterializedView(
            f"sub_{subscription.name}", self.database, subscription.query
        )
        maintainer = ViewMaintainer(
            view,
            subscription.cost_functions,
            limit=subscription.limit,
            policy=subscription.policy,
            scheduled_aliases=subscription.scheduled_aliases,
        )
        self._registrations[subscription.name] = _Registration(
            subscription=subscription,
            view=view,
            maintainer=maintainer,
            last_result=self._result_of(view),
        )

    def unsubscribe(self, name: str) -> None:
        """Drop a subscription (its view is discarded)."""
        if name not in self._registrations:
            raise KeyError(f"no subscription {name!r}")
        del self._registrations[name]

    @property
    def subscriptions(self) -> tuple[str, ...]:
        """Names of the registered subscriptions."""
        return tuple(self._registrations)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def tick(self, t: int | None = None) -> list[Notification]:
        """Advance one time step; returns the notifications fired at it.

        Call after applying the step's base-table modifications.
        """
        self._clock = self._clock + 1 if t is None else t
        t = self._clock
        fired: list[Notification] = []
        for registration in self._registrations.values():
            subscription = registration.subscription
            triggered = subscription.condition.should_notify(
                t, self.database
            )
            if triggered:
                # Refresh: process *all* pending modifications, measure it.
                record = registration.maintainer.refresh(t)
                # The refresh is the guarantee's moment of truth: record
                # the deadline margin and fire any registered SLO alert
                # callbacks (these run even without a recorder installed).
                slo.observe_refresh(
                    subscription.limit,
                    record.predicted_cost,
                    t=t,
                    source=f"pubsub:{subscription.name}",
                )
                new_result = self._result_of(registration.view)
                notification = Notification(
                    subscription=subscription.name,
                    t=t,
                    old_result=registration.last_result,
                    new_result=new_result,
                    refresh_cost_ms=record.actual_cost_ms,
                    within_guarantee=(
                        record.predicted_cost <= subscription.limit + 1e-9
                    ),
                )
                registration.last_result = new_result
                registration.notifications.append(notification)
                subscription.condition.notified(t, new_result)
                fired.append(notification)
            else:
                # Between notifications: let the policy batch/process.
                registration.maintainer.step(t)
        return fired

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def result(self, name: str, refresh: bool = False) -> Any:
        """Current result of a subscription's content query.

        With ``refresh=False`` (default) this is the possibly stale
        materialized result; ``refresh=True`` forces the view up to date
        first (an on-demand pull, also bounded by the guarantee).
        """
        registration = self._registration(name)
        if refresh:
            registration.maintainer.refresh()
            registration.last_result = self._result_of(registration.view)
        return self._result_of(registration.view)

    def notifications(self, name: str) -> list[Notification]:
        """All notifications delivered for one subscription."""
        return list(self._registration(name).notifications)

    def maintenance_cost_ms(self, name: str) -> float:
        """Total engine-measured maintenance cost spent on a subscription."""
        return self._registration(name).maintainer.log.total_actual_cost_ms

    def guarantee_violations(self, name: str) -> int:
        """Notifications whose refresh exceeded the QoS guarantee."""
        return sum(
            1
            for n in self._registration(name).notifications
            if not n.within_guarantee
        )

    def iter_registrations(self) -> Iterator[tuple[str, ViewMaintainer]]:
        """(name, maintainer) pairs, for diagnostics."""
        for name, registration in self._registrations.items():
            yield name, registration.maintainer

    # ------------------------------------------------------------------

    def _registration(self, name: str) -> _Registration:
        try:
            return self._registrations[name]
        except KeyError:
            raise KeyError(f"no subscription {name!r}") from None

    @staticmethod
    def _result_of(view: MaterializedView) -> Any:
        if view.is_aggregate and not view.spec.aggregate.group_by:
            return view.scalar()
        return view.contents()

    def __repr__(self) -> str:
        return f"PubSubBroker(subscriptions={list(self._registrations)})"
