"""SQL tokenizer.

Produces a flat token stream with character positions for error messages.
Keywords are case-insensitive and normalized to upper case; identifiers
keep their case (the engine's table/column names are case-sensitive).
Qualified names (``S.suppkey``) are lexed as a single NAME token, matching
how the engine's expression layer addresses columns.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.sql.errors import SqlError

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND", "OR", "NOT",
        "MIN", "MAX", "SUM", "COUNT", "AVG",
        "ORDER", "ASC", "DESC", "LIMIT", "DISTINCT",
    }
)

#: Token kinds: KEYWORD, NAME, NUMBER, STRING, OP, STAR, COMMA, LPAREN,
#: RPAREN, DOT, EOF.
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)?)
  | (?P<op><>|<=|>=|!=|=|<|>|\+|-|/)
  | (?P<star>\*)
  | (?P<comma>,)
  | (?P<lparen>\()
  | (?P<rparen>\))
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        """Whether this token is one of the given keywords."""
        return self.kind == "KEYWORD" and self.value in words


def tokenize(text: str) -> list[Token]:
    """Tokenize a SQL statement; raises :class:`SqlError` on junk input."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SqlError(
                f"unexpected character {text[position]!r}", text, position
            )
        group = match.lastgroup
        value = match.group()
        if group not in ("ws", "comment"):
            if group == "name":
                bare = value.upper()
                if "." not in value and bare in KEYWORDS:
                    tokens.append(Token("KEYWORD", bare, position))
                else:
                    tokens.append(Token("NAME", value, position))
            elif group == "number":
                tokens.append(Token("NUMBER", value, position))
            elif group == "string":
                tokens.append(Token("STRING", value, position))
            elif group == "op":
                tokens.append(Token("OP", value, position))
            else:
                tokens.append(Token(group.upper(), value, position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens
