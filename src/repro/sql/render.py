"""Rendering a :class:`QuerySpec` back to SQL text.

The inverse of :func:`repro.sql.parse_query`.  Round-tripping is used by
the property tests (``parse(render(spec))`` must execute identically to
``spec``) and is handy for logging: a rebased maintenance query can be
printed as the SQL a DBA would recognize.

Rendering normalizes rather than preserving formatting: predicates print
in the expression layer's canonical parenthesized form, join predicates
come out of the join chain (not the original WHERE order), and aliases are
always explicit via ``AS``.
"""

from __future__ import annotations

from repro.engine.expr import (
    BinOp,
    BoolOp,
    ColumnRef,
    Comparison,
    Const,
    Expression,
    Not,
)
from repro.engine.query import QuerySpec


def render_query(spec: QuerySpec) -> str:
    """SQL text that parses back to an equivalent query."""
    parts = ["SELECT"]
    if spec.distinct:
        parts.append("DISTINCT")
    if spec.aggregate is not None:
        parts.append(
            f"{spec.aggregate.func.upper()}"
            f"({render_expression(spec.aggregate.value)})"
        )
    elif spec.projection is not None:
        parts.append(", ".join(spec.projection))
    else:
        parts.append("*")

    tables = [f"{spec.base_table} AS {spec.base_alias}"] + [
        f"{j.table} AS {j.alias}" for j in spec.joins
    ]
    parts.append("FROM " + ", ".join(tables))

    predicates = [
        f"{j.left_column} = {j.alias}.{j.right_column}" for j in spec.joins
    ] + [render_expression(f) for f in spec.filters]
    if predicates:
        parts.append("WHERE " + " AND ".join(predicates))

    if spec.aggregate is not None and spec.aggregate.group_by:
        parts.append("GROUP BY " + ", ".join(spec.aggregate.group_by))
    if spec.order_by:
        keys = ", ".join(
            f"{o.column} {'DESC' if o.descending else 'ASC'}"
            for o in spec.order_by
        )
        parts.append("ORDER BY " + keys)
    if spec.limit is not None:
        parts.append(f"LIMIT {spec.limit}")
    return " ".join(parts)


def render_expression(expr: Expression) -> str:
    """Canonical SQL text for one expression tree."""
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Const):
        return render_literal(expr.value)
    if isinstance(expr, Comparison):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, BinOp):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, BoolOp):
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(render_expression(e) for e in expr.operands) + ")"
    if isinstance(expr, Not):
        return f"(NOT {render_expression(expr.operand)})"
    raise TypeError(f"cannot render expression type {type(expr).__name__}")


def render_literal(value) -> str:
    """A SQL literal for a Python value."""
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        raise TypeError("the dialect has no boolean literals")
    if isinstance(value, (int, float)):
        if isinstance(value, float) and (value != value or value in
                                         (float("inf"), float("-inf"))):
            raise TypeError(f"cannot render non-finite float {value!r}")
        if isinstance(value, (int, float)) and value < 0:
            # The grammar has no unary minus; render as (0 - x).
            return f"(0 - {abs(value)})"
        return repr(value)
    raise TypeError(f"cannot render literal of type {type(value).__name__}")
