"""SQL front-end errors."""

from __future__ import annotations


class SqlError(Exception):
    """A lexing, parsing, or translation error, with source position.

    ``position`` is a character offset into the statement text; the
    message renders a caret line pointing at it.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.bare_message = message
        self.position = position
        if text and position is not None:
            line_start = text.rfind("\n", 0, position) + 1
            line_end = text.find("\n", position)
            if line_end == -1:
                line_end = len(text)
            line = text[line_start:line_end]
            caret = " " * (position - line_start) + "^"
            message = f"{message}\n  {line}\n  {caret}"
        super().__init__(message)
