"""Recursive-descent SQL parser.

Parses the dialect documented in :mod:`repro.sql` into a
:class:`SelectStatement`, reusing the engine's expression classes
(:mod:`repro.engine.expr`) as the expression AST so no separate
translation pass is needed for predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expr import (
    BinOp,
    ColumnRef,
    Comparison,
    Const,
    Expression,
    and_,
    not_,
    or_,
)
from repro.sql.errors import SqlError
from repro.sql.lexer import Token, tokenize

AGGREGATE_KEYWORDS = ("MIN", "MAX", "SUM", "COUNT", "AVG")


@dataclass
class AggregateCall:
    """``func(expr)`` in a select list."""

    func: str
    value: Expression


@dataclass
class SelectStatement:
    """The parsed form of one SELECT statement."""

    tables: list[tuple[str, str]]  # (table_name, alias)
    projection: list[str] | None = None  # None means SELECT *
    aggregate: AggregateCall | None = None
    where: Expression | None = None
    group_by: list[str] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token plumbing --------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.current
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value or kind
            raise SqlError(
                f"expected {wanted}, found {token.value or 'end of input'!r}",
                self.text,
                token.position,
            )
        return self.advance()

    def accept_keyword(self, *words: str) -> Token | None:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def fail(self, message: str) -> SqlError:
        return SqlError(message, self.text, self.current.position)

    # -- grammar ----------------------------------------------------------

    def parse(self) -> SelectStatement:
        self.expect("KEYWORD", "SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        projection, aggregate = self._select_list()
        if distinct and aggregate is not None:
            raise self.fail("DISTINCT with an aggregate is not supported")
        self.expect("KEYWORD", "FROM")
        tables = self._table_list()
        where = None
        if self.accept_keyword("WHERE"):
            where = self._or_expr()
        group_by: list[str] = []
        if self.accept_keyword("GROUP"):
            self.expect("KEYWORD", "BY")
            group_by = self._name_list()
        if group_by and aggregate is None:
            raise self.fail("GROUP BY requires an aggregate in SELECT")
        order_by: list[tuple[str, bool]] = []
        if self.accept_keyword("ORDER"):
            self.expect("KEYWORD", "BY")
            order_by = self._order_list()
        limit: int | None = None
        if self.accept_keyword("LIMIT"):
            token = self.expect("NUMBER")
            if "." in token.value:
                raise SqlError(
                    "LIMIT takes an integer", self.text, token.position
                )
            limit = int(token.value)
        self.expect("EOF")
        return SelectStatement(
            tables=tables,
            projection=projection,
            aggregate=aggregate,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _order_list(self) -> list[tuple[str, bool]]:
        orders = [self._order_key()]
        while self.current.kind == "COMMA":
            self.advance()
            orders.append(self._order_key())
        return orders

    def _order_key(self) -> tuple[str, bool]:
        # Aggregate outputs are named after the function ("min", "count",
        # ...), so an aggregate keyword is a legal ORDER BY key here.
        if self.current.is_keyword(*AGGREGATE_KEYWORDS):
            name = self.advance().value.lower()
        else:
            name = self.expect("NAME").value
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return name, descending

    def _select_list(self) -> tuple[list[str] | None, AggregateCall | None]:
        if self.current.kind == "STAR":
            self.advance()
            return None, None
        if self.current.is_keyword(*AGGREGATE_KEYWORDS):
            func = self.advance().value.lower()
            self.expect("LPAREN")
            if self.current.kind == "STAR":
                if func != "count":
                    raise self.fail(f"{func.upper()}(*) is not supported")
                self.advance()
                value: Expression = Const(1)
            else:
                value = self._add_expr()
            self.expect("RPAREN")
            return None, AggregateCall(func=func, value=value)
        return self._name_list(), None

    def _name_list(self) -> list[str]:
        names = [self.expect("NAME").value]
        while self.current.kind == "COMMA":
            self.advance()
            names.append(self.expect("NAME").value)
        return names

    def _table_list(self) -> list[tuple[str, str]]:
        tables = [self._table_ref()]
        while self.current.kind == "COMMA":
            self.advance()
            tables.append(self._table_ref())
        seen = set()
        for __, alias in tables:
            if alias in seen:
                raise self.fail(f"duplicate table alias {alias!r}")
            seen.add(alias)
        return tables

    def _table_ref(self) -> tuple[str, str]:
        name_token = self.expect("NAME")
        if "." in name_token.value:
            raise SqlError(
                "table names cannot be qualified",
                self.text,
                name_token.position,
            )
        alias = name_token.value
        if self.accept_keyword("AS"):
            alias = self._bare_name()
        elif self.current.kind == "NAME" and "." not in self.current.value:
            alias = self.advance().value
        return name_token.value, alias

    def _bare_name(self) -> str:
        token = self.expect("NAME")
        if "." in token.value:
            raise SqlError(
                "expected a bare alias name", self.text, token.position
            )
        return token.value

    # -- expressions -------------------------------------------------------

    def _or_expr(self) -> Expression:
        operands = [self._and_expr()]
        while self.accept_keyword("OR"):
            operands.append(self._and_expr())
        return or_(*operands)

    def _and_expr(self) -> Expression:
        operands = [self._not_expr()]
        while self.accept_keyword("AND"):
            operands.append(self._not_expr())
        return and_(*operands)

    def _not_expr(self) -> Expression:
        if self.accept_keyword("NOT"):
            return not_(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._add_expr()
        if self.current.kind == "OP" and self.current.value in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            op = self.advance().value
            if op == "<>":
                op = "!="
            right = self._add_expr()
            return Comparison(op, left, right)
        return left

    def _add_expr(self) -> Expression:
        left = self._mul_expr()
        while self.current.kind == "OP" and self.current.value in ("+", "-"):
            op = self.advance().value
            left = BinOp(op, left, self._mul_expr())
        return left

    def _mul_expr(self) -> Expression:
        left = self._primary()
        while (
            self.current.kind == "STAR"
            or (self.current.kind == "OP" and self.current.value == "/")
        ):
            op = "*" if self.current.kind == "STAR" else "/"
            self.advance()
            left = BinOp(op, left, self._primary())
        return left

    def _primary(self) -> Expression:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Const(value)
        if token.kind == "STRING":
            self.advance()
            return Const(token.value[1:-1].replace("''", "'"))
        if token.kind == "NAME":
            self.advance()
            return ColumnRef(token.value)
        if token.kind == "LPAREN":
            self.advance()
            inner = self._or_expr()
            self.expect("RPAREN")
            return inner
        raise self.fail(
            f"expected an expression, found {token.value or 'end of input'!r}"
        )


def parse_select(text: str) -> SelectStatement:
    """Parse one SELECT statement; raises :class:`SqlError` on bad input."""
    return _Parser(text).parse()
