"""Translation from parsed SQL to an executable :class:`QuerySpec`.

The interesting work is classifying WHERE conjuncts:

* a top-level equality between columns of two *different* aliases is an
  equi-join predicate and becomes part of the join chain;
* everything else (single-alias predicates, constants, disjunctions) stays
  a filter, which the engine's planner pushes down as far as possible.

Join order is a breadth-first walk of the join graph from the first FROM
table -- the same left-deep discipline the engine's planner and the IVM
rebasing machinery assume.  A disconnected join graph (a cross product) is
rejected: nothing in the paper's query class needs one, and accidental
cross products are almost always bugs.
"""

from __future__ import annotations

from repro.engine.expr import BoolOp, ColumnRef, Comparison, Expression
from repro.engine.query import AggregateSpec, JoinSpec, OrderSpec, QuerySpec
from repro.sql.errors import SqlError
from repro.sql.parser import SelectStatement, parse_select


def parse_query(text: str) -> QuerySpec:
    """Parse SQL text straight to a :class:`QuerySpec`."""
    return to_query_spec(parse_select(text), text)


def to_query_spec(statement: SelectStatement, text: str = "") -> QuerySpec:
    """Translate a parsed statement into a :class:`QuerySpec`."""
    aliases = [alias for __, alias in statement.tables]
    table_by_alias = {alias: table for table, alias in statement.tables}

    conjuncts = _split_conjuncts(statement.where)
    join_predicates: list[tuple[str, str, str, str]] = []
    filters: list[Expression] = []
    for conjunct in conjuncts:
        classified = _as_join_predicate(conjunct, set(aliases))
        if classified is not None:
            join_predicates.append(classified)
        else:
            _check_alias_references(conjunct, set(aliases), text)
            filters.append(conjunct)

    joins = _order_joins(
        aliases, table_by_alias, join_predicates, text
    )

    aggregate = None
    projection = None
    if statement.aggregate is not None:
        aggregate = AggregateSpec(
            func=statement.aggregate.func,
            value=statement.aggregate.value,
            group_by=tuple(statement.group_by),
        )
    elif statement.projection is not None:
        projection = tuple(statement.projection)

    base_alias = aliases[0]
    return QuerySpec(
        base_alias=base_alias,
        base_table=table_by_alias[base_alias],
        joins=tuple(joins),
        filters=tuple(filters),
        projection=projection,
        aggregate=aggregate,
        order_by=tuple(
            OrderSpec(column=column, descending=descending)
            for column, descending in statement.order_by
        ),
        limit=statement.limit,
        distinct=statement.distinct,
    )


def _split_conjuncts(where: Expression | None) -> list[Expression]:
    """Flatten top-level ANDs into a conjunct list."""
    if where is None:
        return []
    if isinstance(where, BoolOp) and where.op == "and":
        out: list[Expression] = []
        for operand in where.operands:
            out.extend(_split_conjuncts(operand))
        return out
    return [where]


def _alias_of(name: str) -> str | None:
    """The alias part of a qualified column name, if qualified."""
    alias, dot, __ = name.partition(".")
    return alias if dot else None


def _as_join_predicate(
    conjunct: Expression, aliases: set[str]
) -> tuple[str, str, str, str] | None:
    """``(left_alias, left_col, right_alias, right_col)`` for an equi-join
    conjunct between two different aliases, else None."""
    if not isinstance(conjunct, Comparison):
        return None
    pair = conjunct.equijoin_columns()
    if pair is None:
        return None
    left, right = pair
    left_alias, right_alias = _alias_of(left), _alias_of(right)
    if left_alias is None or right_alias is None:
        return None
    if left_alias not in aliases or right_alias not in aliases:
        return None
    if left_alias == right_alias:
        return None  # self-comparison: stays a filter
    return (left_alias, left, right_alias, right)


def _check_alias_references(
    conjunct: Expression, aliases: set[str], text: str
) -> None:
    """Reject filters naming aliases absent from the FROM clause."""
    for name in conjunct.references():
        alias = _alias_of(name)
        if alias is not None and alias not in aliases:
            raise SqlError(
                f"predicate references unknown alias {alias!r}", text
            )


def _order_joins(
    aliases: list[str],
    table_by_alias: dict[str, str],
    join_predicates: list[tuple[str, str, str, str]],
    text: str,
) -> list[JoinSpec]:
    """BFS the join graph from the first table into a left-deep chain."""
    if len(aliases) == 1:
        if join_predicates:
            raise SqlError("join predicate on a single-table query", text)
        return []
    adjacency: dict[str, list[tuple[str, str, str]]] = {
        alias: [] for alias in aliases
    }
    for left_alias, left_col, right_alias, right_col in join_predicates:
        adjacency[left_alias].append((right_alias, left_col, right_col))
        adjacency[right_alias].append((left_alias, right_col, left_col))

    base = aliases[0]
    seen = {base}
    frontier = [base]
    joins: list[JoinSpec] = []
    while frontier:
        nxt: list[str] = []
        for node in frontier:
            for neighbor, near_col, far_col in adjacency[node]:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                nxt.append(neighbor)
                joins.append(
                    JoinSpec(
                        alias=neighbor,
                        table=table_by_alias[neighbor],
                        left_column=near_col,
                        right_column=far_col.partition(".")[2],
                    )
                )
        frontier = nxt
    missing = [alias for alias in aliases if alias not in seen]
    if missing:
        raise SqlError(
            f"join graph is disconnected: no equi-join predicate reaches "
            f"{missing} (cross products are not supported)",
            text,
        )
    return joins
