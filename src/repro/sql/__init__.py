"""A SQL front-end for the engine and the view-maintenance stack.

Covers the query class the paper maintains -- select-project-join with
conjunctive predicates and a single (optionally grouped) aggregate -- so
views can be declared exactly as the paper writes them::

    from repro.sql import parse_query

    spec = parse_query('''
        SELECT MIN(PS.supplycost)
        FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
        WHERE S.suppkey = PS.suppkey
          AND S.nationkey = N.nationkey
          AND N.regionkey = R.regionkey
          AND R.name = 'MIDDLE EAST'
    ''')

``parse_query`` returns a :class:`~repro.engine.query.QuerySpec`: equi-join
predicates linking different aliases become the join chain (ordered by a
breadth-first walk from the first FROM table), everything else becomes
filters, and the select list becomes a projection or an aggregate.

The dialect, precisely:

* ``SELECT *``, ``SELECT cols...``, or ``SELECT agg(expr)`` with ``agg``
  in MIN/MAX/SUM/COUNT/AVG (one aggregate, optional ``GROUP BY``);
* ``FROM t [AS] a, ...`` (comma joins only -- the paper's own style);
* ``WHERE`` with ``AND``/``OR``/``NOT``, comparisons ``= != <> < <= > >=``,
  arithmetic ``+ - * /``, parentheses, numeric and ``'string'`` literals;
* ``ORDER BY col [ASC|DESC], ...`` and ``LIMIT n`` on the final output.
"""

from repro.sql.errors import SqlError
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import SelectStatement, parse_select
from repro.sql.translate import parse_query, to_query_spec
from repro.sql.render import render_expression, render_query

__all__ = [
    "SelectStatement",
    "SqlError",
    "Token",
    "parse_query",
    "parse_select",
    "render_expression",
    "render_query",
    "to_query_spec",
    "tokenize",
]
