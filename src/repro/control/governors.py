"""The three governors: policy, worker-pool, and block-size feedback loops.

Each governor closes one loop between an existing telemetry stream and
an existing runtime knob:

============  ===============================================  =========================
governor      consumes                                         actuates
============  ===============================================  =========================
policy        ``slo.*`` alert hub + calibration drift hub      ``ViewMaintainer.set_policy``
workers       ``engine.parallel.merge_wait_ms`` / ``.tasks``   ``Database.set_workers``
              / ``.queue_depth``
block_size    ``engine.block.low_fill`` / ``.fill``            ``Database.set_block_size``
============  ===============================================  =========================

Design rules shared by all three:

* **buffer in callbacks, act in ticks** -- alert-hub callbacks fire
  inline from the maintenance path, so they only append to bounded
  buffers; every actuation happens in :meth:`Governor.tick`, which the
  :class:`~repro.control.controller.Controller` calls *between* rounds.
  Settings therefore never change under an executing round.
* **bounded and hysteretic** -- every knob moves within explicit
  [min, max] bounds and only after a configurable amount of evidence,
  with a cooldown before relaxing back, so one noisy interval cannot
  make the loop thrash.
* **auditable** -- every actuation (and every clamped non-actuation)
  emits a :class:`~repro.control.events.ControlEvent` plus fixed
  ``control.<knob>.*`` metrics.
* **disabled == invisible** -- a governor with ``enabled=False`` never
  attaches callbacks, never reads signals, never actuates; runs with
  all governors disabled are byte-identical to runs without the control
  layer (guarded by ``tests/integration/test_control_equivalence.py``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.control import events as control_events
from repro.control.events import ControlEvent
from repro.obs import calibration as obs_calibration
from repro.obs import slo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.engine.database import Database
    from repro.ivm.multiview import MaintenanceCoordinator

#: Policy-mode names, in escalation order (most defensive first).
NAIVE, ONLINE, RECEDING = "naive", "online", "receding"


def _default_policy_factory(mode: str):
    """Fresh policy instances per switch (estimator state must not leak)."""
    from repro.core.naive import NaivePolicy
    from repro.core.online import OnlinePolicy
    from repro.core.receding import RecedingHorizonPolicy

    if mode == NAIVE:
        return NaivePolicy()
    if mode == ONLINE:
        return OnlinePolicy()
    if mode == RECEDING:
        return RecedingHorizonPolicy(window=60)
    raise ValueError(f"unknown policy mode {mode!r}")


def _mode_of(policy) -> str:
    """Best-effort mode name for the policy a maintainer starts with."""
    name = type(policy).__name__.lower()
    for mode in (NAIVE, RECEDING, ONLINE):
        if mode in name:
            return mode
    return name or "custom"


class Governor:
    """Base shape: attach/detach around a run, tick between rounds."""

    name = "governor"

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def attach(self) -> None:  # pragma: no cover - overridden
        pass

    def detach(self) -> None:  # pragma: no cover - overridden
        pass

    def tick(self, t: int) -> None:  # pragma: no cover - overridden
        pass

    # ------------------------------------------------------------------

    def _emit(
        self,
        t: int,
        setting: str,
        old,
        new,
        reason: str,
        signals: dict[str, float],
        view: str | None = None,
        applied: bool = True,
    ) -> ControlEvent:
        return control_events.emit(
            ControlEvent(
                t=t,
                governor=self.name,
                setting=setting,
                old=old,
                new=new,
                reason=reason,
                signals=signals,
                view=view,
                applied=applied,
            )
        )


class PolicyGovernor(Governor):
    """Switch per-view scheduling policy from SLO pressure and drift.

    Escalation ladder (most defensive wins):

    * ``escalate_after`` breach/near-breach events for one view within
      the trailing ``window`` steps -> **NAIVE** (flush-everything keeps
      the post-action backlog at zero, buying maximum headroom for the
      next burst at the price of batching economy);
    * a calibration-drift alert for a view still on ONLINE ->
      **RECEDING** (when the long-horizon cost model is drifting, a
      short re-planned window beats trusting ONLINE's closed-form
      amortized score);
    * ``cooldown`` consecutive quiet steps -> relax back to the
      preferred mode (ONLINE by default).
    """

    name = "policy"

    def __init__(
        self,
        coordinator: "MaintenanceCoordinator",
        enabled: bool = True,
        preferred: str = ONLINE,
        escalate_after: int = 3,
        window: int = 10,
        cooldown: int = 20,
        policy_factory: Callable[[str], object] | None = None,
    ):
        super().__init__(enabled)
        if escalate_after < 1:
            raise ValueError(f"escalate_after must be >= 1, got {escalate_after}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.coordinator = coordinator
        self.preferred = preferred
        self.escalate_after = escalate_after
        self.window = window
        self.cooldown = cooldown
        self.policy_factory = policy_factory or _default_policy_factory
        self._lock = threading.Lock()
        #: view -> recent breach/near-breach step numbers (bounded).
        self._pressure: dict[str, deque[int]] = {}
        #: views with an unconsumed drift alert.
        self._drifted: dict[str, int] = {}
        #: view -> current mode (lazily seeded from the live policy).
        self._modes: dict[str, str] = {}
        #: view -> last step with any pressure event.
        self._last_event: dict[str, int] = {}

    # -- subscriptions --------------------------------------------------

    def attach(self) -> None:
        if not self.enabled:
            return
        slo.on_alert(self._on_slo)
        obs_calibration.on_drift(self._on_drift)

    def detach(self) -> None:
        slo.remove_alert(self._on_slo)
        obs_calibration.remove_drift(self._on_drift)

    def _on_slo(self, event) -> None:
        source = getattr(event, "source", "")
        if not source.startswith("ivm:"):
            return
        view = source[len("ivm:") :]
        t = event.t if event.t is not None else 0
        with self._lock:
            bucket = self._pressure.setdefault(
                view, deque(maxlen=max(self.escalate_after * 4, 16))
            )
            bucket.append(t)
            self._last_event[view] = max(self._last_event.get(view, t), t)

    def _on_drift(self, event) -> None:
        view = getattr(event, "view", None)
        if view is None:
            return
        with self._lock:
            self._drifted[view] = event.t
            self._last_event[view] = max(
                self._last_event.get(view, event.t), event.t
            )

    # -- actuation ------------------------------------------------------

    def _switch(
        self,
        view: str,
        mode: str,
        t: int,
        reason: str,
        signals: dict[str, float],
    ) -> None:
        try:
            maintainer = self.coordinator.maintainer(view)
        except KeyError:
            return  # view removed since the alert fired
        old = self._modes.get(view) or _mode_of(maintainer.policy)
        maintainer.set_policy(self.policy_factory(mode))
        self._modes[view] = mode
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("control.policy.switches")
        self._emit(
            t, "policy", old, mode, reason, signals, view=view
        )

    def tick(self, t: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            pressure = {v: list(q) for v, q in self._pressure.items()}
            drifted = dict(self._drifted)
            self._drifted.clear()
            last_event = dict(self._last_event)
        views = set(pressure) | set(drifted) | set(self._modes)
        for view in sorted(views):
            try:
                maintainer = self.coordinator.maintainer(view)
            except KeyError:
                continue
            mode = self._modes.get(view) or _mode_of(maintainer.policy)
            self._modes.setdefault(view, mode)
            recent = [s for s in pressure.get(view, ()) if s > t - self.window]
            if mode != NAIVE and len(recent) >= self.escalate_after:
                self._switch(
                    view,
                    NAIVE,
                    t,
                    reason=(
                        f"slo pressure: {len(recent)} breach/near-breach "
                        f"step(s) in the last {self.window} steps "
                        f"(threshold {self.escalate_after})"
                    ),
                    signals={
                        "pressure_events": float(len(recent)),
                        "window_steps": float(self.window),
                    },
                )
                continue
            if view in drifted and mode == ONLINE:
                self._switch(
                    view,
                    RECEDING,
                    t,
                    reason=(
                        "calibration drift: the cost model's rolling "
                        "relative error crossed its threshold; "
                        "re-planning over a short window instead of "
                        "trusting the long-horizon estimate"
                    ),
                    signals={"drift_t": float(drifted[view])},
                )
                continue
            quiet_for = t - last_event.get(view, -(10**9))
            if mode != self.preferred and quiet_for >= self.cooldown:
                self._switch(
                    view,
                    self.preferred,
                    t,
                    reason=(
                        f"quiet for {quiet_for} steps "
                        f"(cooldown {self.cooldown}); relaxing back to "
                        f"the preferred mode"
                    ),
                    signals={"quiet_steps": float(quiet_for)},
                )


class WorkerGovernor(Governor):
    """Resize the parallel pool from observed merge waits and task flow.

    Signals are read as per-tick deltas from the ambient recorder's
    registry (``engine.parallel.tasks`` / ``merge_wait_ms``), plus the
    running ``queue_depth`` peak for the event record.  Grow when the
    merge waited more than ``grow_wait_ms`` per task over the interval
    (workers are the bottleneck); shrink when it waited less than
    ``shrink_wait_ms`` while tasks still flowed (pool is oversized).
    One step per tick, bounded to [``min_workers``, ``max_workers``].
    Without a recorder there is nothing to read and the governor holds.
    """

    name = "workers"

    def __init__(
        self,
        database: "Database",
        enabled: bool = True,
        min_workers: int = 0,
        max_workers: int = 8,
        grow_wait_ms: float = 1.0,
        shrink_wait_ms: float = 0.05,
    ):
        super().__init__(enabled)
        if min_workers < 0 or max_workers < min_workers:
            raise ValueError(
                f"need 0 <= min_workers <= max_workers, got "
                f"[{min_workers}, {max_workers}]"
            )
        self.database = database
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.grow_wait_ms = grow_wait_ms
        self.shrink_wait_ms = shrink_wait_ms
        self._last_tasks = 0.0
        self._last_wait_total = 0.0
        self._last_wait_count = 0

    @staticmethod
    def _metric(registry, name: str):
        return registry.get(name)

    def tick(self, t: int) -> None:
        if not self.enabled:
            return
        recorder = obs.get_recorder()
        if recorder is None:
            return
        registry = recorder.registry
        tasks = self._metric(registry, "engine.parallel.tasks")
        wait = self._metric(registry, "engine.parallel.merge_wait_ms")
        tasks_now = float(tasks.value) if tasks is not None else 0.0
        wait_total = float(wait.total) if wait is not None else 0.0
        wait_count = int(wait.count) if wait is not None else 0
        d_tasks = tasks_now - self._last_tasks
        d_total = wait_total - self._last_wait_total
        d_count = wait_count - self._last_wait_count
        self._last_tasks = tasks_now
        self._last_wait_total = wait_total
        self._last_wait_count = wait_count
        if d_tasks <= 0:
            return  # idle interval: no parallel work, no evidence
        mean_wait = d_total / d_count if d_count else 0.0
        depth = self._metric(registry, "engine.parallel.queue_depth")
        depth_peak = (
            float(depth.value) if depth is not None and depth._set else 0.0
        )
        workers = self.database.workers
        signals = {
            "merge_wait_ms_mean": mean_wait,
            "tasks_delta": d_tasks,
            "queue_depth_peak": depth_peak,
        }
        if mean_wait > self.grow_wait_ms and workers < self.max_workers:
            self._resize(
                t,
                workers + 1,
                reason=(
                    f"merge waited {mean_wait:.3f} ms/task over the last "
                    f"interval (> {self.grow_wait_ms} ms): workers are "
                    f"the bottleneck"
                ),
                signals=signals,
            )
        elif (
            mean_wait < self.shrink_wait_ms
            and workers > self.min_workers
        ):
            self._resize(
                t,
                workers - 1,
                reason=(
                    f"merge waited only {mean_wait:.3f} ms/task "
                    f"(< {self.shrink_wait_ms} ms) while "
                    f"{d_tasks:.0f} task(s) flowed: pool is oversized"
                ),
                signals=signals,
            )

    def _resize(
        self, t: int, new: int, reason: str, signals: dict[str, float]
    ) -> None:
        old = self.database.workers
        self.database.set_workers(new)
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("control.workers.resizes")
            recorder.gauge("control.workers.size", new)
        self._emit(t, "workers", old, new, reason, signals)


#: Fill above this is join fan-out (output blocks carry a probe block's
#: matches, so they can exceed ``block_size``), not saturation.
_FANOUT_FILL_CAP = 1.05


class BlockSizeGovernor(Governor):
    """Shrink (and re-grow) the block size from observed fill ratios.

    Two shrink signals, one grow signal, all per-tick registry deltas:

    * ``engine.block.low_fill`` counts queries whose *non-tail* blocks
      ran under 25% full -- mid-stream slack only multi-block queries
      can show.  ``low_fill_after`` such queries in one interval halve
      the block size.
    * ``engine.block.fill`` (tail included) catches the short-query
      regime low_fill is blind to: when every query fits in a fraction
      of one block, mean fill sits far below 1 and each query still
      pays the full block's setup slack.  A sustained interval with
      mean fill under ``shrink_fill`` (and at least ``min_samples``
      observations) also halves.
    * mean fill at or above ``grow_fill`` with no low-fill queries
      doubles back toward the construction-time size.

    Halving roughly doubles the next interval's fill, so with
    ``shrink_fill`` well below ``grow_fill`` the loop converges instead
    of thrashing.  Bounded to [``min_block``, construction-time size];
    row-mode databases (``block_size=None``) are left alone.
    """

    name = "block_size"

    def __init__(
        self,
        database: "Database",
        enabled: bool = True,
        min_block: int = 64,
        low_fill_after: int = 1,
        shrink_fill: float = 0.25,
        grow_fill: float = 0.95,
        min_samples: int = 2,
    ):
        super().__init__(enabled)
        if min_block < 1:
            raise ValueError(f"min_block must be >= 1, got {min_block}")
        if not shrink_fill < grow_fill:
            raise ValueError(
                f"need shrink_fill < grow_fill, got "
                f"{shrink_fill} >= {grow_fill}"
            )
        self.database = database
        self.min_block = min_block
        self.low_fill_after = low_fill_after
        self.shrink_fill = shrink_fill
        self.grow_fill = grow_fill
        self.min_samples = min_samples
        #: Never grow past what the database was configured with.
        self.max_block = database.block_size
        self._last_low_fill = 0.0
        self._last_fill_total = 0.0
        self._last_fill_count = 0

    def tick(self, t: int) -> None:
        if not self.enabled or self.database.block_size is None:
            return
        recorder = obs.get_recorder()
        if recorder is None:
            return
        registry = recorder.registry
        low = registry.get("engine.block.low_fill")
        fill = registry.get("engine.block.fill")
        low_now = float(low.value) if low is not None else 0.0
        fill_total = float(fill.total) if fill is not None else 0.0
        fill_count = int(fill.count) if fill is not None else 0
        d_low = low_now - self._last_low_fill
        d_fill_total = fill_total - self._last_fill_total
        d_fill_count = fill_count - self._last_fill_count
        self._last_low_fill = low_now
        self._last_fill_total = fill_total
        self._last_fill_count = fill_count
        block = self.database.block_size
        if d_low >= self.low_fill_after and block > self.min_block:
            self._resize(
                t,
                max(self.min_block, block // 2),
                reason=(
                    f"{d_low:.0f} low-fill quer{'y' if d_low == 1 else 'ies'} "
                    f"this interval: block_size={block} wastes most of "
                    f"each block as slack"
                ),
                signals={"low_fill_delta": d_low},
            )
            return
        if d_fill_count < self.min_samples:
            return
        mean_fill = d_fill_total / d_fill_count
        if mean_fill < self.shrink_fill and block > self.min_block:
            self._resize(
                t,
                max(self.min_block, block // 2),
                reason=(
                    f"blocks ran only {mean_fill:.0%} full over "
                    f"{d_fill_count} quer{'y' if d_fill_count == 1 else 'ies'} "
                    f"(< {self.shrink_fill:.0%}): block_size={block} is "
                    f"oversized for this workload"
                ),
                signals={
                    "mean_fill": mean_fill,
                    "fill_samples": float(d_fill_count),
                },
            )
            return
        if self.max_block is None:
            return
        # Join fan-out emits blocks *larger* than block_size (one probe
        # block's matches stay together), so fill can exceed 1 -- that
        # signals fan-out, not saturation, and says nothing about slack
        # at a larger size.  Only a mean inside the near-full band is
        # evidence the current size is genuinely tight.
        if (
            d_low == 0
            and self.grow_fill <= mean_fill <= _FANOUT_FILL_CAP
            and block < self.max_block
        ):
            self._resize(
                t,
                min(self.max_block, block * 2),
                reason=(
                    f"blocks ran {mean_fill:.0%} full with no low-fill "
                    f"queries: room to re-grow toward the configured "
                    f"size {self.max_block}"
                ),
                signals={
                    "mean_fill": mean_fill,
                    "fill_samples": float(d_fill_count),
                },
            )

    def _resize(
        self, t: int, new: int, reason: str, signals: dict[str, float]
    ) -> None:
        old = self.database.block_size
        self.database.set_block_size(new)
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("control.block.resizes")
            recorder.gauge("control.block.size", new)
        self._emit(t, "block_size", old, new, reason, signals)
