"""Controller ablation harness: does the closed loop earn its keep?

One SLO-pressure workload (the paper view under a bursty 80:1 arrival
mix, constraint C sized so the ONLINE policy rides the near-breach
band), five runs:

* ``baseline`` -- no controller attached at all;
* ``full`` -- all three governors on;
* ``no-policy`` / ``no-workers`` / ``no-block`` -- one governor
  disabled each.

Every run replays the identical modification stream (same seeds), so
differences in ``slo.breaches`` and wall time are attributable to the
governors alone.  The report ranks each governor by what disabling it
costs relative to the full loop -- the format the ROADMAP's
closed-loop item asks for: baseline plus one run per disabled
controller, ranked importance.

Breaches are counted through the :func:`repro.obs.slo.alerts` hub (not
the metrics registry), so the harness works identically standalone,
under the benchmark recorder, and in CI smoke runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.control import events as control_events
from repro.control.controller import build_controller
from repro.control.events import ControlEvent
from repro.obs import slo

#: (name, governor flags) per run; ``None`` = no controller attached.
VARIANTS: tuple[tuple[str, dict | None], ...] = (
    ("baseline", None),
    ("full", {"policy": True, "workers": True, "block": True}),
    ("no-policy", {"policy": False, "workers": True, "block": True}),
    ("no-workers", {"policy": True, "workers": False, "block": True}),
    ("no-block", {"policy": True, "workers": True, "block": False}),
)

#: Which variant isolates each governor (the run where ONLY it is off).
GOVERNOR_VARIANT = {
    "policy": "no-policy",
    "workers": "no-workers",
    "block_size": "no-block",
}


@dataclass
class VariantRun:
    """One run's outcome: SLO counts, wall time, and the control trail."""

    name: str
    breaches: int
    near_breaches: int
    steps: int
    wall_s: float
    final_workers: int
    final_block: int | None
    events: list[ControlEvent] = field(default_factory=list)
    view_contents: tuple = ()
    charge_snapshot: dict = field(default_factory=dict)

    def actuations(self, governor: str) -> int:
        return sum(
            1 for e in self.events if e.governor == governor and e.applied
        )


@dataclass
class ControlAblationResult:
    """All variants plus the ranked governor-importance table."""

    variants: dict[str, VariantRun]
    limit: float
    params: dict

    def ranking(self) -> list[tuple[str, int, float]]:
        """``(governor, breach_cost, wall_cost_s)`` of disabling each
        governor relative to the full loop, most important first."""
        full = self.variants["full"]
        rows = []
        for governor, variant in GOVERNOR_VARIANT.items():
            run = self.variants[variant]
            rows.append(
                (
                    governor,
                    run.breaches - full.breaches,
                    run.wall_s - full.wall_s,
                )
            )
        rows.sort(key=lambda r: (-r[1], -r[2], r[0]))
        return rows

    def format(self) -> str:
        lines = [
            "Controller ablation: SLO-pressure workload "
            f"(C={self.limit:.1f} ms, {self.params['horizon']} steps, "
            f"bursty x{self.params['burst_factor']} every "
            f"~{self.params['burst_every']})",
            "",
            f"{'variant':<11} {'breaches':>8} {'near':>6} {'wall_s':>8} "
            f"{'actuations':>10} {'workers':>7} {'block':>6}",
        ]
        for name, run in self.variants.items():
            block = "row" if run.final_block is None else str(run.final_block)
            lines.append(
                f"{name:<11} {run.breaches:>8d} {run.near_breaches:>6d} "
                f"{run.wall_s:>8.3f} {len([e for e in run.events if e.applied]):>10d} "
                f"{run.final_workers:>7d} {block:>6}"
            )
        lines.append("")
        lines.append("Governor importance (cost of disabling it, vs full):")
        for rank, (governor, d_breach, d_wall) in enumerate(
            self.ranking(), start=1
        ):
            lines.append(
                f"{rank}. {governor:<11} {d_breach:+d} breaches  "
                f"{d_wall:+.3f} s wall"
            )
        return "\n".join(lines)


def _pressure_workload(scale: float, horizon: int, seed: int):
    """Arrivals + costs + a constraint that keeps ONLINE near the band."""
    from repro.experiments import common
    from repro.workloads.arrivals import bursty_arrivals

    costs = common.cost_functions(scale=scale)
    limit = common.default_limit(costs)
    arrivals = bursty_arrivals(
        common.ARRIVAL_MIX,
        horizon,
        burst_every=_BURST_EVERY,
        burst_factor=_BURST_FACTOR,
        seed=seed,
    )
    return arrivals, costs, limit


_BURST_EVERY = 15
_BURST_FACTOR = 8


def _run_variant(
    name: str,
    flags: dict | None,
    arrivals,
    costs,
    limit: float,
    scale: float,
    seed: int,
    workers: int,
    block_size: int,
) -> VariantRun:
    from repro.core.online import OnlinePolicy
    from repro.experiments import common
    from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig

    setup = common.build_setup(
        scale=scale, update_seed=seed, block_size=block_size
    )
    # build_setup materializes its own view; this harness drives the
    # coordinator's copy instead, so drop the spare subscription.
    setup.view.close()
    db = setup.database
    db.set_workers(workers)
    coordinator = MaintenanceCoordinator(db)
    coordinator.add_view(
        ViewConfig(
            name="paper_view",
            query=common.paper_view_spec(),
            policy=OnlinePolicy(),
            cost_functions=costs,
            limit=limit,
            scheduled_aliases=common.SCHEDULED_ALIASES,
        )
    )
    controller = (
        build_controller(coordinator, **flags) if flags is not None else None
    )
    breaches = 0
    near = 0

    def count(event) -> None:
        nonlocal breaches, near
        if event.source != "ivm:paper_view":
            return
        if event.kind == slo.BREACH:
            breaches += 1
        else:
            near += 1

    try:
        # A fresh per-variant recorder: the worker/block governors read
        # engine.parallel.* / engine.block.* deltas from the registry, so
        # without one they would be blind (and variants would share
        # metric state under an outer benchmark recorder).
        with obs.recording(), control_events.collecting() as log, \
                slo.alerts(count):
            if controller is not None:
                controller.attach()
            start = time.perf_counter()
            try:
                for t, step_arrivals in enumerate(arrivals):
                    setup.apply_arrivals(step_arrivals)
                    coordinator.step(t)
                    if controller is not None:
                        controller.tick(t)
            finally:
                if controller is not None:
                    controller.detach()
            wall = time.perf_counter() - start
        view = coordinator.maintainer("paper_view").view
        return VariantRun(
            name=name,
            breaches=breaches,
            near_breaches=near,
            steps=len(arrivals),
            wall_s=wall,
            final_workers=db.workers,
            final_block=db.block_size,
            events=log.events(),
            view_contents=tuple(sorted(view.contents().items())),
            charge_snapshot=dict(db.counter.snapshot()),
        )
    finally:
        db.close()


def run_control_ablation(
    scale: float = 0.01,
    horizon: int = 120,
    seed: int = 11,
    workers: int = 1,
    block_size: int = 2048,
) -> ControlAblationResult:
    """Run the five-variant ablation; see the module docstring.

    ``block_size`` is deliberately oversized for the workload so the
    block governor has real slack to reclaim, and ``workers`` starts the
    pool small so the worker governor has headroom both ways.
    """
    arrivals, costs, limit = _pressure_workload(scale, horizon, seed)
    variants: dict[str, VariantRun] = {}
    for name, flags in VARIANTS:
        variants[name] = _run_variant(
            name, flags, arrivals, costs, limit,
            scale=scale, seed=seed, workers=workers, block_size=block_size,
        )
    return ControlAblationResult(
        variants=variants,
        limit=limit,
        params={
            "scale": scale,
            "horizon": horizon,
            "seed": seed,
            "workers": workers,
            "block_size": block_size,
            "burst_every": _BURST_EVERY,
            "burst_factor": _BURST_FACTOR,
        },
    )


def run_control_sample(
    scale: float = 0.01,
    horizon: int = 80,
    seed: int = 11,
    workers: int = 1,
    block_size: int = 2048,
) -> list[ControlEvent]:
    """One adaptive run (all governors on) for ``repro control-log``.

    Returns the control trail; when a process-global control log is
    installed (the ``--control-log`` flag), the events are fed into it
    too, so the rendered trail and the dumped JSONL agree.
    """
    arrivals, costs, limit = _pressure_workload(scale, horizon, seed)
    run = _run_variant(
        "full",
        {"policy": True, "workers": True, "block": True},
        arrivals, costs, limit,
        scale=scale, seed=seed, workers=workers, block_size=block_size,
    )
    installed = control_events.get_control_log()
    if installed is not None:
        for event in run.events:
            installed.record(event)
    return run.events
