"""Structured control-plane events: every actuation leaves a record.

The adaptive runtime (:mod:`repro.control`) changes live settings --
scheduling policy, worker-pool size, execution block size -- from
observed telemetry.  A closed loop that cannot explain itself is worse
than no loop: when a run misbehaves, the first question is "what did the
controller do, when, and on what evidence?".  This module answers it
with the same shape the planner's decision log uses
(:mod:`repro.obs.decisions`):

* every (attempted) actuation is a :class:`ControlEvent` carrying the
  governor, the setting's old and new values, a human-readable reason,
  and the raw signal values that triggered it;
* events land in a bounded, thread-safe :class:`ControlLog` ring
  (process-global via :func:`set_control_log`, the ``--control-log``
  CLI flag's sink) and feed ``control.*`` metrics through the ambient
  recorder;
* :func:`render_control_log` renders the trail as the text tree behind
  ``repro control-log``, and the ``/control`` HTTP route serves it as
  JSON.

Strictly observational: recording an event never touches the operation
counter.  The *actuations themselves* change wall-clock behavior by
design, but never simulated costs (policy switches change the schedule,
which is the point; worker/block resizes are cost-neutral by the
charge-on-merge and block-equivalence invariants).
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = [
    "ControlEvent",
    "ControlLog",
    "collecting",
    "emit",
    "get_control_log",
    "render_control_log",
    "set_control_log",
]

#: Default ring capacity of a :class:`ControlLog`; old events are
#: evicted (and counted in :attr:`ControlLog.dropped`) beyond this.
DEFAULT_CAPACITY = 4096


@dataclass
class ControlEvent:
    """One control-loop actuation (or explicitly suppressed actuation).

    ``old``/``new`` are the setting's values before and after --
    strings for policy modes, integers for pool/block sizes.
    ``signals`` holds the raw numeric evidence the governor acted on,
    keyed by signal name.  ``applied`` is ``False`` for events a
    governor recorded without actually changing anything (e.g. a
    resize clamped at its bound), so suppressed decisions are auditable
    too.
    """

    t: int | None
    governor: str  # "policy" | "workers" | "block_size"
    setting: str  # the knob changed, e.g. "policy", "workers"
    old: object
    new: object
    reason: str
    signals: dict[str, float] = field(default_factory=dict)
    view: str | None = None
    applied: bool = True

    def to_dict(self) -> dict:
        data: dict = {
            "t": self.t,
            "governor": self.governor,
            "setting": self.setting,
            "old": self.old,
            "new": self.new,
            "reason": self.reason,
            "signals": dict(self.signals),
            "applied": self.applied,
        }
        if self.view is not None:
            data["view"] = self.view
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ControlEvent":
        return cls(
            t=data.get("t"),
            governor=data["governor"],
            setting=data["setting"],
            old=data.get("old"),
            new=data.get("new"),
            reason=data.get("reason", ""),
            signals={
                k: float(v) for k, v in data.get("signals", {}).items()
            },
            view=data.get("view"),
            applied=bool(data.get("applied", True)),
        )


class ControlLog:
    """A bounded in-memory ring of control events (thread-safe)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.dropped = 0
        self._events: deque[ControlEvent] = deque()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._events)

    def record(self, event: ControlEvent) -> None:
        with self._lock:
            if len(self._events) >= self.capacity:
                self._events.popleft()
                self.dropped += 1
            self._events.append(event)

    def events(self) -> list[ControlEvent]:
        with self._lock:
            return list(self._events)

    def filtered(
        self, governor: str | None = None, view: str | None = None
    ) -> list[ControlEvent]:
        """Events matching the optional governor / view filters, in order."""
        return [
            e
            for e in self.events()
            if (governor is None or e.governor == governor)
            and (view is None or e.view == view)
        ]


# --------------------------------------------------------------------------
# Process-global sink (same install/restore contract as the decision log).

_log_lock = threading.Lock()
_log: ControlLog | None = None


def set_control_log(log: ControlLog | None) -> ControlLog | None:
    """Install ``log`` as the process-global sink; returns the previous."""
    global _log
    with _log_lock:
        previous = _log
        _log = log
    return previous


def get_control_log() -> ControlLog | None:
    return _log


@contextmanager
def collecting(capacity: int = DEFAULT_CAPACITY) -> Iterator[ControlLog]:
    """Collect control events into a fresh log for the block's duration."""
    log = ControlLog(capacity)
    previous = set_control_log(log)
    try:
        yield log
    finally:
        set_control_log(previous)


def emit(event: ControlEvent) -> ControlEvent:
    """Record ``event`` in the global log and export its metrics.

    ``control.events`` counts every emission; ``control.actuations``
    only the ones that actually changed a setting.  Governors layer
    their own per-knob counters/gauges on top.
    """
    log = _log
    if log is not None:
        log.record(event)
    from repro import obs

    recorder = obs.get_recorder()
    if recorder is not None:
        recorder.counter("control.events")
        if event.applied:
            recorder.counter("control.actuations")
    return event


# --------------------------------------------------------------------------
# Rendering (the `repro control-log` text tree)


def _event_lines(event: ControlEvent) -> list[str]:
    where = f" view={event.view}" if event.view else ""
    verb = "set" if event.applied else "held"
    head = (
        f"t={event.t} {event.governor}{where}: "
        f"{verb} {event.setting} {event.old!r} -> {event.new!r}"
    )
    items = [f"reason: {event.reason}"]
    if event.signals:
        rendered = ", ".join(
            f"{k}={v:.3f}" for k, v in sorted(event.signals.items())
        )
        items.append(f"signals: {rendered}")
    items.append("applied: yes" if event.applied else "applied: no")
    lines = [head]
    for i, item in enumerate(items):
        connector = "└─" if i == len(items) - 1 else "├─"
        lines.append(f"{connector} {item}")
    return lines


def render_control_log(
    events: Sequence[ControlEvent],
    governor: str | None = None,
    view: str | None = None,
) -> str:
    """Render control events as a text tree (``repro control-log``)."""
    picked = [
        e
        for e in events
        if (governor is None or e.governor == governor)
        and (view is None or e.view == view)
    ]
    if not picked:
        scope_bits = []
        if governor is not None:
            scope_bits.append(f"governor={governor}")
        if view is not None:
            scope_bits.append(f"view={view}")
        suffix = f" matching {' '.join(scope_bits)}" if scope_bits else ""
        return f"control log: no events{suffix}"
    lines = [f"control log: {len(picked)} event(s)"]
    for event in picked:
        lines.extend(_event_lines(event))
    return "\n".join(lines)
