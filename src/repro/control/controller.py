"""The controller: wires governors to a live coordinator and ticks them.

Usage sketch::

    coordinator = MaintenanceCoordinator(db)
    coordinator.add_view(...)
    controller = build_controller(coordinator)
    with controller:                       # attach alert subscriptions
        for t, arrivals in enumerate(stream):
            apply(arrivals)
            coordinator.step(t)
            controller.tick(t)             # read signals, maybe actuate

Alert-hub callbacks (SLO pressure, calibration drift) buffer evidence
inline during the round; all actuation happens in :meth:`Controller.tick`
*between* rounds, so policies, worker pools, and block sizes never
change under an executing query.  Detaching (context-manager exit)
removes every subscription, leaving the process-global hubs as they
were.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.control.governors import (
    BlockSizeGovernor,
    Governor,
    PolicyGovernor,
    WorkerGovernor,
)

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.ivm.multiview import MaintenanceCoordinator


class Controller:
    """Owns a set of governors; attach/detach around a run, tick between
    rounds.  Disabled governors are never attached and never ticked, so
    a controller whose governors are all disabled is behaviorally
    identical to no controller at all (differentially tested)."""

    def __init__(self, governors: Sequence[Governor]):
        self.governors = tuple(governors)
        self._attached = False

    def governor(self, name: str) -> Governor:
        """Look up a governor by its ``name`` attribute."""
        for governor in self.governors:
            if governor.name == name:
                return governor
        raise KeyError(f"no governor {name!r}")

    def attach(self) -> "Controller":
        """Subscribe enabled governors to their alert hubs (idempotent)."""
        if not self._attached:
            for governor in self.governors:
                if governor.enabled:
                    governor.attach()
            self._attached = True
        return self

    def detach(self) -> None:
        """Remove every subscription (idempotent, safe if never attached)."""
        if self._attached:
            for governor in self.governors:
                governor.detach()
            self._attached = False

    def tick(self, t: int) -> None:
        """One control interval: let each enabled governor read its
        signals and actuate.  Call between maintenance rounds."""
        for governor in self.governors:
            if governor.enabled:
                governor.tick(t)

    def __enter__(self) -> "Controller":
        return self.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{g.name}={'on' if g.enabled else 'off'}" for g in self.governors
        )
        return f"Controller({parts})"


def build_controller(
    coordinator: "MaintenanceCoordinator",
    policy: bool = True,
    workers: bool = True,
    block: bool = True,
    policy_options: dict | None = None,
    worker_options: dict | None = None,
    block_options: dict | None = None,
) -> Controller:
    """A controller with the three standard governors over one coordinator.

    The boolean flags gate each governor (disabled governors stay
    constructed but inert, so ablation runs keep an identical object
    graph); the ``*_options`` dicts pass tuning keywords through to the
    governor constructors.
    """
    database = coordinator.database
    return Controller(
        (
            PolicyGovernor(
                coordinator, enabled=policy, **(policy_options or {})
            ),
            WorkerGovernor(
                database, enabled=workers, **(worker_options or {})
            ),
            BlockSizeGovernor(
                database, enabled=block, **(block_options or {})
            ),
        )
    )
