"""Closed-loop adaptive runtime: governors that consume the telemetry.

Every signal the observability layer grew -- ``slo.*`` margins with
alert callbacks, ``engine.parallel.*`` queue/merge-wait metrics,
``engine.block.low_fill``, calibration drift residuals -- feeds a
controller here that actuates the matching runtime knob: scheduling
policy (:meth:`~repro.ivm.maintainer.ViewMaintainer.set_policy`),
worker-pool size (:meth:`~repro.engine.database.Database.set_workers`),
and block size (:meth:`~repro.engine.database.Database.set_block_size`).
Every actuation is recorded as a :class:`~repro.control.events.ControlEvent`
in a bounded log with ``control.*`` metrics, a ``/control`` HTTP route,
and the ``repro control-log`` CLI renderer.  The ablation harness
(:mod:`repro.control.ablation`, ``benchmarks/bench_ablations_control.py``)
scores each governor's contribution.
"""

from repro.control.controller import Controller, build_controller
from repro.control.events import (
    ControlEvent,
    ControlLog,
    collecting,
    get_control_log,
    render_control_log,
    set_control_log,
)
from repro.control.governors import (
    BlockSizeGovernor,
    Governor,
    PolicyGovernor,
    WorkerGovernor,
)

__all__ = [
    "BlockSizeGovernor",
    "ControlEvent",
    "ControlLog",
    "Controller",
    "Governor",
    "PolicyGovernor",
    "WorkerGovernor",
    "build_controller",
    "collecting",
    "get_control_log",
    "render_control_log",
    "set_control_log",
]
