"""Plan and policy execution against a problem instance.

The paper's experimental methodology (Section 5, "Simulation and
validation") executes maintenance plans in two ways: *actually* running the
maintenance SQL on a live system, and *simulating* the plan against
measured cost functions.  This module is the simulation half; the live half
is :mod:`repro.ivm.maintainer`, and Figure 5 compares the two.

Both entry points return a :class:`~repro.core.plan.PlanTrace`, so every
experiment driver consumes one uniform result shape regardless of whether
the schedule came from a precomputed plan, an online policy, or a live run.
"""

from __future__ import annotations

import time

from repro import obs
from repro.obs import decisions, slo
from repro.core.plan import Plan, PlanTrace
from repro.core.policies import Policy, PolicyError
from repro.core.problem import (
    ProblemInstance,
    Vector,
    add_vectors,
    is_nonnegative,
    sub_vectors,
    zero_vector,
)


def execute_plan(problem: ProblemInstance, plan: Plan) -> PlanTrace:
    """Simulate a fully specified plan; validate it as a side effect."""
    with obs.trace("simulator.execute_plan", horizon=problem.horizon) as span:
        plan.check_valid(problem)
        trace = _trace(problem, plan.actions, metadata={"source": "plan"})
        span.set(total_cost=trace.total_cost, actions=trace.action_count)
    return trace


def simulate_policy(
    problem: ProblemInstance, policy: Policy, reset: bool = True
) -> PlanTrace:
    """Drive an online policy over the instance's arrival sequence.

    The policy sees arrivals step by step (via :meth:`Policy.observe`) and
    is asked to act at every step except the horizon, where the refresh is
    forced and the entire pre-action state is processed (``p_T = s_T``).
    Each emitted action is checked against Definition 1; violations raise
    :class:`~repro.core.policies.PolicyError` rather than being silently
    repaired, because a policy that breaks the response-time constraint is
    a bug, not a degraded mode.
    """
    if reset:
        policy.reset(problem.cost_functions, problem.limit)
    recorder = obs.get_recorder()  # fetched once: per-step hooks gate on it
    state = zero_vector(problem.n)
    actions: list[Vector] = []
    with obs.trace(
        "simulator.simulate_policy", policy=repr(policy),
        horizon=problem.horizon,
    ) as span:
        for t in range(problem.horizon + 1):
            arrivals = problem.arrivals[t]
            policy.observe(t, arrivals)
            pre = add_vectors(state, arrivals)
            if t == problem.horizon:
                action = pre  # forced refresh
            elif recorder is None:
                action = tuple(int(x) for x in policy.decide(t, pre))
            else:
                decide_start = time.perf_counter()
                action = tuple(int(x) for x in policy.decide(t, pre))
                recorder.observe(
                    "simulator.decide_ms",
                    (time.perf_counter() - decide_start) * 1e3,
                )
            post = sub_vectors(pre, action)
            if not is_nonnegative(post):
                raise PolicyError(
                    f"{policy!r} at t={t}: action {action} exceeds backlog {pre}"
                )
            if t < problem.horizon and problem.is_full(post):
                raise PolicyError(
                    f"{policy!r} at t={t}: post-action state {post} violates "
                    f"C={problem.limit}"
                )
            cost = problem.refresh_cost(action)
            policy.record_action(t, action, cost)
            if t < problem.horizon:
                # Join the policy's decision with its executed cost.  The
                # horizon step is a forced refresh (no decision emitted).
                log = decisions.get_decision_log()
                if log is not None:
                    view, _ = decisions.current_scope()
                    log.join(view, t, actual_ms=cost)
            if recorder is not None:
                recorder.counter("simulator.steps")
                recorder.observe(
                    "simulator.backlog", problem.refresh_cost(post)
                )
                if any(action):
                    recorder.counter("simulator.actions")
                    recorder.observe("simulator.action_size", sum(action))
                    recorder.observe("simulator.action_cost", cost)
            actions.append(action)
            state = post
        trace = _trace(
            problem, actions,
            metadata={"source": "policy", "policy": repr(policy)},
        )
        span.set(total_cost=trace.total_cost, actions=trace.action_count)
    return trace


def _trace(
    problem: ProblemInstance, actions: list[Vector] | tuple[Vector, ...], metadata: dict
) -> PlanTrace:
    """Compute the full execution trace for a known-valid action sequence."""
    plan = Plan(actions)
    pre_states: list[Vector] = []
    post_states: list[Vector] = []
    action_costs: list[float] = []
    state = zero_vector(problem.n)
    peak = 0.0
    total = 0.0
    recorder = obs.get_recorder()  # per-step SLO hooks gate on it
    source = metadata.get("source", "simulator")
    for t in range(problem.horizon + 1):
        state = add_vectors(state, problem.arrivals[t])
        pre_states.append(state)
        if recorder is not None:
            # The paper's operational guarantee, step by step: had a
            # refresh been demanded *now*, would it have met C?
            slo.observe_refresh(
                problem.limit, problem.refresh_cost(state),
                t=t, source=source,
            )
        cost = problem.refresh_cost(plan.actions[t])
        action_costs.append(cost)
        total += cost
        state = sub_vectors(state, plan.actions[t])
        post_states.append(state)
        peak = max(peak, problem.refresh_cost(state))
    return PlanTrace(
        plan=plan,
        total_cost=total,
        action_costs=tuple(action_costs),
        pre_states=tuple(pre_states),
        post_states=tuple(post_states),
        peak_refresh_cost=peak,
        metadata=metadata,
    )
