"""Human-readable rendering of maintenance plans and traces.

Turns a :class:`~repro.core.plan.PlanTrace` into an ASCII timeline: one
row per (possibly bucketed) time step, showing the refresh-cost backlog as
a bar against the constraint ``C`` and marking which delta tables each
action flushed.  Asymmetric plans become visually obvious: the cheap table
flushes often (many small marks), the batch-friendly one rarely (sparse
marks preceded by long backlog build-ups).
"""

from __future__ import annotations

from repro.core.plan import PlanTrace
from repro.core.problem import ProblemInstance
from repro.obs import slo

_BAR_WIDTH = 40


def render_trace_timeline(
    problem: ProblemInstance,
    trace: PlanTrace,
    max_rows: int = 40,
    table_names: tuple[str, ...] | None = None,
) -> str:
    """An ASCII timeline of one trace.

    At most ``max_rows`` rows are shown; longer horizons are bucketed and
    each row then summarizes its bucket (peak backlog, union of flushed
    tables).  ``table_names`` labels the action marks (defaults to
    ``T0, T1, ...``).
    """
    steps = problem.horizon + 1
    names = (
        tuple(table_names)
        if table_names is not None
        else tuple(f"T{i}" for i in range(problem.n))
    )
    if len(names) != problem.n:
        raise ValueError(
            f"need {problem.n} table names, got {len(names)}"
        )
    if max_rows < 1:
        raise ValueError(f"max_rows must be >= 1, got {max_rows}")
    bucket = max(1, -(-steps // max_rows))  # ceil division
    # Bucketing invariant (regression-tested for indivisible horizons in
    # tests/core/test_report.py): ceil-division buckets cover every step
    # exactly once -- the final row summarizes the shorter tail bucket when
    # ``steps % bucket != 0``, including the forced refresh at t = horizon
    # -- and ceil(steps / bucket) rows never exceed ``max_rows``.
    lines = [
        f"timeline (C = {problem.limit:.0f}; '#' = backlog as share of C; "
        f"marks = tables flushed; bucket = {bucket} step(s))",
    ]
    for start in range(0, steps, bucket):
        end = min(start + bucket, steps)
        peak = max(
            problem.refresh_cost(trace.pre_states[t])
            for t in range(start, end)
        )
        flushed = sorted(
            {
                names[i]
                for t in range(start, end)
                for i in range(problem.n)
                if trace.plan.actions[t][i] > 0
            }
        )
        cost = sum(trace.action_costs[start:end])
        share = 0.0 if problem.limit == 0 else min(1.0, peak / problem.limit)
        bar = "#" * round(share * _BAR_WIDTH)
        marks = f" flush[{','.join(flushed)}] cost={cost:.0f}" if flushed else ""
        lines.append(
            f"t={start:>5d} |{bar:<{_BAR_WIDTH}}|{marks}"
        )
    lines.append(
        f"total cost {trace.total_cost:.0f} over {steps} steps; "
        f"{trace.action_count} actions; peak backlog "
        f"{trace.peak_refresh_cost:.0f} <= C"
    )
    return "\n".join(lines)


def compare_traces(
    problem: ProblemInstance, traces: dict[str, PlanTrace]
) -> str:
    """A side-by-side summary table of several traces on one instance."""
    if not traces:
        raise ValueError("need at least one trace to compare")
    best = min(t.total_cost for t in traces.values())
    header = (
        f"{'plan':<14s} {'total cost':>12s} {'vs best':>8s} "
        f"{'actions':>8s} {'cost/mod':>10s} {'peak':>8s}"
    )
    lines = [header, "-" * len(header)]
    for name, trace in traces.items():
        ratio = trace.total_cost / best if best > 0 else 1.0
        lines.append(
            f"{name:<14s} {trace.total_cost:>12.1f} {ratio:>8.3f} "
            f"{trace.action_count:>8d} "
            f"{trace.cost_per_modification():>10.3f} "
            f"{trace.peak_refresh_cost:>8.1f}"
        )
    return "\n".join(lines)


def slo_summary(
    problem: ProblemInstance,
    traces: dict[str, PlanTrace],
    near_fraction: float = slo.DEFAULT_NEAR_FRACTION,
) -> str:
    """Per-policy refresh-SLO summary over finished traces.

    For every step the *pre-action* state is the moment of truth: had a
    refresh been demanded right then, its cost ``f(s_t)`` must fit the
    constraint ``C``.  The table reports, per trace, how many steps
    breached the deadline (cost > ``C``), how many came within the
    near-breach band (cost >= ``near_fraction * C``), and the worst
    margin.  Classification is shared with the live ``slo.*`` counters
    (:func:`repro.obs.slo.classify`), so this offline table and an
    observed run's ``slo.breaches`` always agree.
    """
    if not traces:
        raise ValueError("need at least one trace to summarize")
    limit = problem.limit
    header = (
        f"{'plan':<14s} {'steps':>7s} {'breaches':>9s} {'near':>6s} "
        f"{'min margin':>11s} {'worst cost':>11s}"
    )
    lines = [
        f"SLO: refresh-deadline margin C - f(s_t) at each step "
        f"(C = {limit:.1f}; near-breach >= {near_fraction:.0%} of C)",
        header,
        "-" * len(header),
    ]
    for name, trace in traces.items():
        costs = [problem.refresh_cost(pre) for pre in trace.pre_states]
        kinds = [slo.classify(limit, cost, near_fraction) for cost in costs]
        breaches = sum(1 for k in kinds if k == slo.BREACH)
        near = sum(1 for k in kinds if k == slo.NEAR_BREACH)
        worst = max(costs) if costs else 0.0
        lines.append(
            f"{name:<14s} {len(costs):>7d} {breaches:>9d} {near:>6d} "
            f"{limit - worst:>+11.1f} {worst:>11.1f}"
        )
    return "\n".join(lines)
