"""Receding-horizon re-planning: an MPC-style policy (extension).

Sits between the paper's ONLINE (no planning, one-step amortized greedy)
and OPT_LGM (full advance knowledge): whenever forced to act, project the
arrival process ``window`` steps ahead from estimated rates, solve that
projected instance *optimally* with the A* planner, and execute the
resulting first action.  Re-planning happens at every forced action, so
estimation errors self-correct -- classic model-predictive control.

Costs one A* solve per forced action (milliseconds at window ~100 on the
paper's instances; the LGM reductions are what make this affordable).
The re-planning ablation (`repro.experiments.ablations2`) measures what
the extra work buys over ONLINE.
"""

from __future__ import annotations

from repro.core.astar import find_optimal_lgm_plan
from repro.core.online import TimeToFullEstimator
from repro.core.policies import Policy
from repro.core.problem import ProblemInstance, Vector, zero_vector
from repro.obs import decisions


def project_arrivals(
    rates: tuple[float, ...], steps: int
) -> list[tuple[int, ...]]:
    """Integer per-step arrivals matching fractional rates in the long run.

    Cumulative rounding: table ``i`` receives ``round((t+1) * r_i) -
    round(t * r_i)`` modifications at step ``t``, so a rate of 0.25 yields
    one arrival every fourth step instead of rounding to zero forever.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    out = []
    previous = [0] * len(rates)
    for t in range(1, steps + 1):
        current = [round(t * r) for r in rates]
        out.append(
            tuple(c - p for c, p in zip(current, previous))
        )
        previous = current
    return out


class RecedingHorizonPolicy(Policy):
    """Re-plan optimally over a projected window at every forced action.

    Parameters
    ----------
    window:
        Projection length in steps.  Longer windows approximate the true
        instance better (and cost more per re-plan); at the paper's
        batching head-room, a window of 2-4 flush cycles suffices.
    estimator:
        Arrival-rate estimator (shared interface with ONLINE); defaults to
        EWMA.
    """

    def __init__(
        self,
        window: int = 120,
        estimator: TimeToFullEstimator | None = None,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.estimator = estimator or TimeToFullEstimator()
        self.replans = 0  # observable for ablations

    def reset(self, cost_functions, limit) -> None:
        super().reset(cost_functions, limit)
        self.estimator.reset(len(self.cost_functions))
        self.replans = 0

    def observe(self, t: int, arrivals: Vector) -> None:
        self.estimator.observe(arrivals)

    def decide(self, t: int, pre_state: Vector) -> Vector:
        if not self.is_full(pre_state):
            action = zero_vector(self.n)
            if decisions.active():
                cost = self.refresh_cost(pre_state)
                decisions.emit_policy_decision(
                    "RECEDING",
                    t,
                    pre_state,
                    self.cost_functions,
                    self.limit,
                    chosen=action,
                    rationale=(
                        f"f(s)={cost:.3f} <= C={self.limit:.3f} "
                        "-> defer (lazy)"
                    ),
                )
            return action
        self.replans += 1
        rates = self.estimator.rates()
        # Projected instance: the current backlog arrives "at step 0",
        # then rate-matched arrivals for `window` further steps.  Solving
        # it optimally and taking the first action is the MPC step.
        arrivals = [tuple(pre_state)] + project_arrivals(rates, self.window)
        projected = ProblemInstance(
            self.cost_functions, self.limit, arrivals
        )
        plan = find_optimal_lgm_plan(projected).plan
        action = plan.actions[0]
        if not any(action):
            # The projected optimum defers even at a full state only when
            # the true pre-state is exactly at the limit boundary; fall
            # back to the first scheduled action to guarantee progress.
            for later in plan.actions[1:]:
                if any(later):
                    action = later
                    break
        clamped = tuple(min(a, s) for a, s in zip(action, pre_state))
        if decisions.active():
            # Emitted after the nested A* search's own OPT_LGM event, so
            # this outer decision -- the action that actually executes --
            # wins the (view, step) join slot.
            decisions.emit_policy_decision(
                "RECEDING",
                t,
                pre_state,
                self.cost_functions,
                self.limit,
                chosen=clamped,
                candidates=(
                    decisions.CandidateAction(
                        clamped,
                        self.refresh_cost(clamped),
                        note="first scheduled action of projected A* plan",
                    ),
                ),
                rationale=(
                    f"replan #{self.replans}: A* over window={self.window} "
                    f"projected at rates="
                    f"{tuple(round(r, 3) for r in rates)}"
                ),
            )
        return clamped

    def __repr__(self) -> str:
        return f"RecedingHorizonPolicy(window={self.window})"
