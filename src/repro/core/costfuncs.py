"""Batch maintenance cost functions (Section 2 of the paper).

The paper models the cost of processing ``k`` batched modifications from
delta table ``dR_i`` with a function ``f_i(k)`` that is:

* **monotone**: ``f(x) >= f(y)`` whenever ``x >= y >= 0``;
* **subadditive**: ``f(0) == 0`` and ``f(x + y) <= f(x) + f(y)``.

Subadditivity is what makes batching attractive: processing a combined batch
never costs more than processing its pieces separately.  Subadditivity does
*not* imply concavity -- the paper's own example is the block-I/O staircase
``ceil(x / B)``, which is reproduced here as :class:`BlockIOCost`.

This module provides the concrete cost families used throughout the
reproduction:

=====================  =========================================================
class                  role in the paper
=====================  =========================================================
:class:`LinearCost`    ``f(k) = a*k + b`` (Section 3.3); setup cost ``b`` plus
                       per-modification cost ``a``.  Theorem 2: with linear
                       costs the best LGM plan is globally optimal.
:class:`ConcaveCost`   ``f(k) = c * k**e`` with ``e <= 1``; a smooth concave
                       family for stress-testing beyond the paper.
:class:`BlockIOCost`   ``ceil(k / B) * io + a*k``; subadditive, non-concave.
:class:`StepCost`      the tightness construction of Section 3.2 that forces
                       ``OPT_LGM >= (2 - eps) * OPT``.
:class:`PiecewiseLinearCost`  general concave piecewise-linear envelopes.
:class:`TabulatedCost` costs measured from a live system (our engine), with
                       monotone linear interpolation -- how the paper's
                       "simulation" mode replays measured curves (Figure 5).
=====================  =========================================================

All functions map non-negative integer batch sizes to non-negative floats.
"""

from __future__ import annotations

import bisect
import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence


class CostFunction(ABC):
    """A batch processing cost function ``f: Z+ -> R+``.

    Subclasses implement :meth:`cost`.  Instances are callable:
    ``f(k)`` is the cost of processing ``k`` modifications in one batch.
    """

    @abstractmethod
    def cost(self, k: int) -> float:
        """Return the cost of processing a batch of ``k`` modifications."""

    def __call__(self, k: int) -> float:
        if k < 0:
            raise ValueError(f"batch size must be non-negative, got {k}")
        if k == 0:
            return 0.0
        return self.cost(k)

    # ------------------------------------------------------------------
    # Property checks.  These are *empirical* checks over a sampled range,
    # used by tests and by calibration code to validate measured curves.
    # ------------------------------------------------------------------

    def is_monotone(self, upto: int) -> bool:
        """Check monotonicity on ``0..upto`` by exhaustive sampling."""
        prev = 0.0
        for k in range(upto + 1):
            cur = self(k)
            if cur < prev - 1e-9:
                return False
            prev = cur
        return True

    def is_subadditive(self, upto: int) -> bool:
        """Check ``f(x+y) <= f(x) + f(y)`` for all ``x + y <= upto``."""
        values = [self(k) for k in range(upto + 1)]
        for x in range(1, upto):
            for y in range(1, upto - x + 1):
                if values[x + y] > values[x] + values[y] + 1e-9:
                    return False
        return True

    def batch_limit(self, budget: float, hi: int = 1 << 24) -> int:
        """Return ``max {b : f(b) <= budget}`` (0 if even ``f(1) > budget``).

        Uses galloping + binary search, relying on monotonicity.  ``hi`` caps
        the search so that unbounded budgets terminate.
        """
        return max_batch_under(self, budget, hi=hi)

    # Convenience used in a few analytical shortcuts ---------------------

    @property
    def setup_cost(self) -> float:
        """The fixed cost paid by any non-empty batch: ``lim_{k->0+} f(k)``.

        Estimated as ``f(1)`` minus the marginal cost ``f(2) - f(1)``,
        clamped at zero.  Exact for :class:`LinearCost`.
        """
        marginal = self(2) - self(1)
        return max(0.0, self(1) - marginal)


def max_batch_under(f: CostFunction, budget: float, hi: int = 1 << 24) -> int:
    """Largest batch size whose one-shot processing cost fits in ``budget``.

    This is the quantity ``max {b | f_i(b) <= C}`` used by the A* heuristic
    (Section 4.1).  Monotonicity of ``f`` makes binary search correct.
    """
    if budget < 0:
        return 0
    if f(1) > budget:
        return 0
    # Gallop to bracket the answer, then binary search.
    lo, cur = 1, 2
    while cur <= hi and f(cur) <= budget:
        lo, cur = cur, cur * 2
    hi_bound = min(cur, hi)
    # Invariant: f(lo) <= budget < f(hi_bound + 1) (or hi cap reached).
    while lo < hi_bound:
        mid = (lo + hi_bound + 1) // 2
        if f(mid) <= budget:
            lo = mid
        else:
            hi_bound = mid - 1
    return lo


class LinearCost(CostFunction):
    """``f(k) = slope * k + setup`` for ``k >= 1``; ``f(0) = 0``.

    The paper's Section 3.3 model: ``setup`` covers parsing, optimization,
    hash-table builds or index loading; ``slope`` is the per-modification
    cost once set up.  Monotone and subadditive for ``slope > 0`` and
    ``setup >= 0``.
    """

    def __init__(self, slope: float, setup: float = 0.0):
        if slope < 0:
            raise ValueError(f"slope must be non-negative, got {slope}")
        if setup < 0:
            raise ValueError(f"setup must be non-negative, got {setup}")
        if slope == 0 and setup == 0:
            raise ValueError("degenerate all-zero cost function")
        self.slope = float(slope)
        self.setup = float(setup)

    def cost(self, k: int) -> float:
        return self.slope * k + self.setup

    @property
    def setup_cost(self) -> float:
        return self.setup

    def batch_limit(self, budget: float, hi: int = 1 << 24) -> int:
        if budget < self.setup + self.slope:
            return 0
        if self.slope == 0:
            return hi
        return min(hi, int((budget - self.setup) / self.slope + 1e-12))

    def __repr__(self) -> str:
        return f"LinearCost(slope={self.slope!r}, setup={self.setup!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinearCost)
            and self.slope == other.slope
            and self.setup == other.setup
        )

    def __hash__(self) -> int:
        return hash((LinearCost, self.slope, self.setup))


class ConcaveCost(CostFunction):
    """``f(k) = coeff * k ** exponent`` with ``0 < exponent <= 1``.

    Concave (hence subadditive) and monotone.  Not in the paper's
    experiments but useful for exercising the general theory: the paper's
    future-work section asks whether concavity tightens the LGM bound.
    """

    def __init__(self, coeff: float, exponent: float = 0.5):
        if coeff <= 0:
            raise ValueError(f"coeff must be positive, got {coeff}")
        if not 0 < exponent <= 1:
            raise ValueError(f"exponent must be in (0, 1], got {exponent}")
        self.coeff = float(coeff)
        self.exponent = float(exponent)

    def cost(self, k: int) -> float:
        return self.coeff * k**self.exponent

    def __repr__(self) -> str:
        return f"ConcaveCost(coeff={self.coeff!r}, exponent={self.exponent!r})"


class BlockIOCost(CostFunction):
    """Staircase I/O cost: ``f(k) = ceil(k / block_size) * io_cost + slope*k``.

    The paper's canonical subadditive-but-not-concave example: scanning a
    compactly stored table costs one I/O per block, so the cost jumps each
    time the batch spills into a new block.
    """

    def __init__(self, io_cost: float, block_size: int, slope: float = 0.0):
        if io_cost <= 0:
            raise ValueError(f"io_cost must be positive, got {io_cost}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if slope < 0:
            raise ValueError(f"slope must be non-negative, got {slope}")
        self.io_cost = float(io_cost)
        self.block_size = int(block_size)
        self.slope = float(slope)

    def cost(self, k: int) -> float:
        blocks = -(-k // self.block_size)  # ceil division
        return blocks * self.io_cost + self.slope * k

    def __repr__(self) -> str:
        return (
            f"BlockIOCost(io_cost={self.io_cost!r}, "
            f"block_size={self.block_size!r}, slope={self.slope!r})"
        )


class StepCost(CostFunction):
    """The tightness construction of Section 3.2.

    With response-time constraint ``C``::

        f(x) = (eps * x / 2) * C          for 0 <= x <= 2 / eps
        f(x) = (1 + eps / 2) * C          for x  > 2 / eps

    Monotone and subadditive.  Feeding ``2/eps + 1`` modifications per step
    forces every LGM plan to pay ``(1 + eps/2) * C`` per step while a
    non-greedy plan can amortize down to ``(1 + eps) * C`` per two steps,
    showing ``OPT_LGM >= (2 - eps) * OPT`` -- i.e. Theorem 1 is tight.
    """

    def __init__(self, eps: float, limit: float):
        if not 0 < eps <= 1:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        if (1.0 / eps) != int(1.0 / eps):
            raise ValueError("1/eps must be an integer for the construction")
        self.eps = float(eps)
        self.limit = float(limit)
        self.knee = int(round(2 / eps))

    def cost(self, k: int) -> float:
        if k <= self.knee:
            return (self.eps * k / 2.0) * self.limit
        return (1.0 + self.eps / 2.0) * self.limit

    def __repr__(self) -> str:
        return f"StepCost(eps={self.eps!r}, limit={self.limit!r})"


class PiecewiseLinearCost(CostFunction):
    """Concave piecewise-linear cost given as ``(batch_size, cost)`` knots.

    Knots must start at ``(0, 0)``, be strictly increasing in batch size,
    non-decreasing in cost, and have non-increasing segment slopes (which
    guarantees concavity, hence subadditivity).  Beyond the last knot the
    final slope is extrapolated.
    """

    def __init__(self, knots: Sequence[tuple[int, float]]):
        knots = [(int(k), float(c)) for k, c in knots]
        if len(knots) < 2:
            raise ValueError("need at least two knots")
        if knots[0] != (0, 0.0):
            raise ValueError(f"first knot must be (0, 0), got {knots[0]}")
        slopes = []
        for (k0, c0), (k1, c1) in zip(knots, knots[1:]):
            if k1 <= k0:
                raise ValueError("knot batch sizes must be strictly increasing")
            if c1 < c0:
                raise ValueError("knot costs must be non-decreasing")
            slopes.append((c1 - c0) / (k1 - k0))
        for s0, s1 in zip(slopes, slopes[1:]):
            if s1 > s0 + 1e-12:
                raise ValueError("segment slopes must be non-increasing (concave)")
        self.knots = knots
        self._keys = [k for k, __ in knots]
        self._final_slope = slopes[-1]

    def cost(self, k: int) -> float:
        last_k, last_c = self.knots[-1]
        if k >= last_k:
            return last_c + self._final_slope * (k - last_k)
        idx = bisect.bisect_right(self._keys, k) - 1
        k0, c0 = self.knots[idx]
        k1, c1 = self.knots[idx + 1]
        return c0 + (c1 - c0) * (k - k0) / (k1 - k0)

    def __repr__(self) -> str:
        return f"PiecewiseLinearCost({self.knots!r})"


class TabulatedCost(CostFunction):
    """Cost function interpolated from measured ``(batch_size, cost)`` samples.

    This is how the reproduction mirrors the paper's methodology: Figures 1
    and 4 *measure* maintenance cost curves on a live system, and Figures
    5-7 replay plans against those measured curves in a simulator.  Samples
    are sorted, then repaired to be monotone by taking a running maximum
    (measurement noise can produce tiny non-monotonicities, as the paper
    notes about its own curves).  Between samples we interpolate linearly;
    beyond the last sample we extrapolate with the tail slope.
    """

    def __init__(self, samples: Iterable[tuple[int, float]]):
        cleaned: dict[int, float] = {}
        for k, c in samples:
            k = int(k)
            if k < 0:
                raise ValueError(f"batch sizes must be non-negative, got {k}")
            if c < 0:
                raise ValueError(f"costs must be non-negative, got {c}")
            cleaned[k] = max(cleaned.get(k, 0.0), float(c))
        if not cleaned or set(cleaned) == {0}:
            raise ValueError("need at least one sample with batch size > 0")
        cleaned.setdefault(0, 0.0)
        points = sorted(cleaned.items())
        # Monotone repair: running maximum.
        repaired: list[tuple[int, float]] = []
        running = 0.0
        for k, c in points:
            running = max(running, c)
            repaired.append((k, running))
        self.samples = repaired
        self._keys = [k for k, __ in repaired]
        if len(repaired) >= 2:
            (k0, c0), (k1, c1) = repaired[-2], repaired[-1]
            self._tail_slope = (c1 - c0) / (k1 - k0)
        else:  # single non-zero sample: extrapolate proportionally
            k1, c1 = repaired[-1]
            self._tail_slope = c1 / k1

    def cost(self, k: int) -> float:
        last_k, last_c = self.samples[-1]
        if k >= last_k:
            return last_c + self._tail_slope * (k - last_k)
        idx = bisect.bisect_right(self._keys, k) - 1
        k0, c0 = self.samples[idx]
        k1, c1 = self.samples[idx + 1]
        return c0 + (c1 - c0) * (k - k0) / (k1 - k0)

    def __repr__(self) -> str:
        head = self.samples[:3]
        return f"TabulatedCost({len(self.samples)} samples, head={head!r})"


def fit_linear(samples: Sequence[tuple[int, float]]) -> LinearCost:
    """Least-squares fit of a :class:`LinearCost` to measured samples.

    Zero-batch samples are excluded (``f(0) = 0`` by definition, but the
    affine model only applies to non-empty batches).  The fitted setup cost
    is clamped at zero, matching the model's ``b >= 0`` requirement; the
    slope is clamped at a tiny positive value so the result is a valid,
    strictly increasing cost function.
    """
    pts = [(float(k), float(c)) for k, c in samples if k > 0]
    if len(pts) < 2:
        raise ValueError("need at least two samples with batch size > 0")
    n = len(pts)
    sx = sum(k for k, __ in pts)
    sy = sum(c for __, c in pts)
    sxx = sum(k * k for k, __ in pts)
    sxy = sum(k * c for k, c in pts)
    denom = n * sxx - sx * sx
    if denom == 0:  # all samples at the same batch size
        slope = pts[0][1] / pts[0][0]
        return LinearCost(slope=max(slope, 1e-12), setup=0.0)
    slope = (n * sxy - sx * sy) / denom
    setup = (sy - slope * sx) / n
    if setup < 0:  # re-fit through the origin
        slope = sxy / sxx
        setup = 0.0
    return LinearCost(slope=max(slope, 1e-12), setup=max(setup, 0.0))


def check_cost_function(f: CostFunction, upto: int = 64) -> None:
    """Raise ``ValueError`` unless ``f`` is monotone and subadditive on a range.

    Used by :class:`~repro.core.problem.ProblemInstance` construction when
    ``validate=True`` and by calibration code before handing measured curves
    to the planners.
    """
    if f(0) != 0.0:
        raise ValueError(f"{f!r}: f(0) must be 0, got {f(0)}")
    if not f.is_monotone(upto):
        raise ValueError(f"{f!r} is not monotone on 0..{upto}")
    if not f.is_subadditive(upto):
        raise ValueError(f"{f!r} is not subadditive on 0..{upto}")
