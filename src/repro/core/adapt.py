"""ADAPT: reusing a plan optimized for an estimated refresh time (Sec 4.2).

The A* search needs the refresh time ``T`` in advance.  ADAPT relaxes
that: optimize an LGM plan ``Q_T0`` for an *estimated* refresh time ``T_0``
and execute it regardless of the actual refresh time ``T``:

* if ``T < T_0``: stop executing ``Q_T0`` at ``T`` and process everything
  outstanding (the forced final refresh);
* if ``T > T_0``: execute ``Q_T0`` repeatedly, period ``T_0 + 1`` (the plan
  ends with a full flush at its own horizon, so delta tables are empty at
  each period boundary), then flush at ``T``.

For linear cost functions Theorem 4 bounds the adapted plan's cost by
``OPT_T + sum_i b_i`` when ``T < T_0`` and ``OPT_T + ceil(T/T_0) * sum_i
b_i`` when ``T > T_0`` (assuming the arrival sequence is periodic with
period ``T_0``).

Implementation note: :class:`AdaptPolicy` replays the precomputed schedule
through the standard online-policy interface so the same simulator drives
it.  When live arrivals deviate from the planned sequence (which the
theorem does not cover but reality produces), the policy clamps the
scheduled action to the available backlog and, if the result would violate
the constraint, falls back to a minimal greedy remedial action -- a
best-effort extension the paper leaves implicit.
"""

from __future__ import annotations

from repro.core.actions import minimize_action
from repro.core.astar import find_optimal_lgm_plan
from repro.core.plan import Plan
from repro.core.policies import Policy
from repro.core.problem import ProblemInstance, Vector


class AdaptPolicy(Policy):
    """Execute a precomputed plan ``Q_T0`` cyclically at runtime."""

    def __init__(self, plan_t0: Plan):
        self.plan_t0 = plan_t0
        self.deviations = 0  # times the live state forced a remedial action

    def decide(self, t: int, pre_state: Vector) -> Vector:
        period = self.plan_t0.horizon + 1
        scheduled = self.plan_t0.actions[t % period]
        # Clamp to what has actually accumulated.
        action = tuple(min(p, s) for p, s in zip(scheduled, pre_state))
        post = tuple(s - a for s, a in zip(pre_state, action))
        if not self.is_full(post):
            return action
        # Live arrivals outran the planned sequence: take a minimal greedy
        # remedial action instead (full flush minimized).
        self.deviations += 1
        view = _View(self.cost_functions, self.limit, self.n)
        return minimize_action(pre_state, pre_state, view)

    def __repr__(self) -> str:
        return f"AdaptPolicy(T0={self.plan_t0.horizon})"


class _View:
    """Minimal ProblemInstance facade for :func:`minimize_action`."""

    def __init__(self, cost_functions, limit, n):
        self.cost_functions = cost_functions
        self.limit = limit
        self.n = n

    def refresh_cost(self, state: Vector) -> float:
        return sum(f(k) for f, k in zip(self.cost_functions, state, strict=True))

    def is_full(self, state: Vector) -> bool:
        return self.refresh_cost(state) > self.limit + 1e-9


def adapt_plan(problem: ProblemInstance, estimated_horizon: int) -> AdaptPolicy:
    """Build an :class:`AdaptPolicy` for ``problem`` from an estimate ``T_0``.

    Computes the optimal LGM plan for the instance restricted (or
    periodically extended) to horizon ``T_0`` and wraps it for cyclic
    execution.  The returned policy can then be run against the *actual*
    instance with :func:`repro.core.simulator.simulate_policy`.
    """
    if estimated_horizon < 0:
        raise ValueError(f"estimated horizon must be >= 0, got {estimated_horizon}")
    if estimated_horizon <= problem.horizon:
        estimate = problem.truncated(estimated_horizon)
    else:
        estimate = problem.extended_periodic(estimated_horizon)
    result = find_optimal_lgm_plan(estimate)
    return AdaptPolicy(result.plan)
