"""Greedy/minimal action machinery shared by all planners (Section 3.2).

A *greedy* action empties a subset of the delta tables and leaves the rest
untouched.  A greedy action taken on a full pre-action state is *minimal*
when no emptied table could be dropped from it while keeping the post-action
state within the response-time constraint.  LGM planners (the A* search,
the ADAPT fallback, and the ONLINE heuristic) all enumerate exactly this set
of candidate actions, so the enumeration lives here in one place.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.problem import ProblemInstance, Vector, sub_vectors

_EPS = 1e-9

# Enumerating greedy actions is exponential in the number of *non-empty*
# delta tables.  The paper notes n <= 5 for its TPC-R views; we allow a
# comfortable margin but refuse clearly pathological widths.
_MAX_ENUMERABLE_TABLES = 20


def enumerate_greedy_minimal_actions(
    state: Vector, problem: ProblemInstance
) -> Iterator[Vector]:
    """Yield every greedy, minimal, valid action for pre-action ``state``.

    Each yielded action empties a subset ``S`` of the non-empty delta tables
    such that (a) the post-action state satisfies the constraint and (b) no
    proper subset of ``S`` does.  If ``state`` itself satisfies the
    constraint, the unique minimal action is to do nothing and nothing is
    yielded -- callers decide whether a zero action is acceptable (lazy
    plans) or not (the final flush at ``T``).

    Yields actions in deterministic order (subsets in increasing bitmask
    order over non-empty tables) so planner results are reproducible.
    """
    # Component costs go through the instance's per-(table, k) memo; a hit
    # returns the bit-identical float the direct call would produce.
    # Duck-typed problem stand-ins (e.g. the online planner's static view)
    # may not carry the memos; fall back to direct calls.
    memos = getattr(problem, "_component_memos", None)
    if memos is None:
        costs = [f(k) for f, k in zip(problem.cost_functions, state, strict=True)]
    else:
        costs = []
        for f, memo, k in zip(problem.cost_functions, memos, state, strict=True):
            c = memo.get(k)
            if c is None:
                c = memo[k] = f(k)
            costs.append(c)
    total = sum(costs)
    if total <= problem.limit + _EPS:
        return  # state is not full; the minimal action is no action
    nonzero = [i for i in range(problem.n) if state[i] > 0]
    if len(nonzero) > _MAX_ENUMERABLE_TABLES:
        raise ValueError(
            f"{len(nonzero)} non-empty delta tables exceeds the subset "
            f"enumeration limit of {_MAX_ENUMERABLE_TABLES}"
        )
    m = len(nonzero)
    for mask in range(1, 1 << m):
        emptied = [nonzero[j] for j in range(m) if mask >> j & 1]
        remaining = total - sum(costs[i] for i in emptied)
        if remaining > problem.limit + _EPS:
            continue  # not valid: leftover backlog still violates C
        # Minimality: restoring any emptied table must overflow the limit.
        if any(
            remaining + costs[i] <= problem.limit + _EPS for i in emptied
        ):
            continue
        action = [0] * problem.n
        for i in emptied:
            action[i] = state[i]
        yield tuple(action)


def cached_greedy_minimal_actions(
    state: Vector, problem: ProblemInstance
) -> tuple[Vector, ...]:
    """The full greedy-minimal-action set for ``state``, memoized.

    Planners revisit the same full pre-action states along many search
    paths (A* reaches one ``(t, s)`` node per path class, but distinct
    timestamps share states); the enumeration's subset scan is pure in
    ``(state, problem)``, so its result tuple is cached on the instance.
    Order and contents are exactly those of
    :func:`enumerate_greedy_minimal_actions`.
    """
    memo = getattr(problem, "_action_memo", None)
    if memo is None:
        return tuple(enumerate_greedy_minimal_actions(state, problem))
    actions = memo.get(state)
    if actions is None:
        actions = memo[state] = tuple(
            enumerate_greedy_minimal_actions(state, problem)
        )
    return actions


def cheapest_greedy_minimal_action(
    state: Vector, problem: ProblemInstance
) -> Vector:
    """The greedy minimal valid action with the lowest immediate cost.

    A convenient deterministic tie-breaker used by fallback paths (e.g.
    ADAPT when live arrivals deviate from the planned sequence).  Raises
    ``ValueError`` when ``state`` is not full (no action is needed then).
    """
    best: Vector | None = None
    best_cost = float("inf")
    for action in cached_greedy_minimal_actions(state, problem):
        cost = problem.refresh_cost(action)
        if cost < best_cost:
            best, best_cost = action, cost
    if best is None:
        raise ValueError(
            f"state {state} is not full; no forced action exists"
        )
    return best


def minimize_action(action: Vector, state: Vector, problem: ProblemInstance) -> Vector:
    """``MinimizeAction(q, s)`` from Section 3.2 of the paper.

    Given a greedy action ``action`` whose post-action state satisfies the
    constraint, return a minimal greedy action that empties a subset of the
    same tables and still satisfies the constraint.  Components are dropped
    in decreasing order of their processing cost, so the minimization sheds
    the most expensive batches first (those benefit most from further
    batching); any drop order yields *a* minimal action, this order is our
    deterministic choice.
    """
    post = sub_vectors(state, action)
    for i in range(problem.n):
        if action[i] not in (0, state[i]):
            raise ValueError(
                f"action {action} is not greedy for state {state} "
                f"(component {i})"
            )
    if problem.is_full(post):
        raise ValueError(
            f"action {action} on state {state} does not satisfy the "
            f"response-time constraint; cannot minimize an invalid action"
        )
    kept = [i for i in range(problem.n) if action[i] > 0]
    kept.sort(key=lambda i: problem.cost_functions[i](state[i]), reverse=True)
    post_cost = problem.refresh_cost(post)
    result = list(action)
    for i in kept:
        restored = post_cost + problem.cost_functions[i](state[i])
        if restored <= problem.limit + _EPS:
            result[i] = 0
            post_cost = restored
    return tuple(result)
