"""Plan transformations from Section 3 of the paper.

* :func:`make_lazy_plan` is ``MakeLazyPlan`` (Lemma 1): defer every action
  until the pre-action state is full.  Subadditivity guarantees the result
  costs no more than the original plan, which is why the search can be
  restricted to lazy plans without losing optimality.
* :func:`make_lgm_plan` is ``MakeLGMPlan`` (Section 3.2): additionally make
  every action greedy (empty-or-ignore each delta table) and minimal.  The
  result is within a factor of two of the input plan's cost (Theorem 1),
  and for linear cost functions takes no more actions per table than the
  input plan (Theorem 2), hence is optimal when the input is.

Both constructions are *constructive proofs*: the property tests in
``tests/core/test_transforms.py`` and ``tests/core/test_bounds.py`` replay
them against randomly generated plans to check the paper's bounds hold.
"""

from __future__ import annotations

from repro.core.actions import minimize_action
from repro.core.plan import Plan
from repro.core.problem import (
    ProblemInstance,
    Vector,
    add_vectors,
    sub_vectors,
    zero_vector,
)


def make_lazy_plan(plan: Plan, problem: ProblemInstance) -> Plan:
    """``MakeLazyPlan`` (Lemma 1): defer accumulated actions until forced.

    Walks time forward keeping a running sum ``p`` of the input plan's
    actions.  Whenever the lazy plan's own pre-action state is full (or the
    final refresh at ``T`` arrives), it discharges the entire accumulated
    action at once.  Because the lazy plan has processed no more than the
    input plan at any time, its backlog per table is a superset of the
    input plan's, so the accumulated action is always available to take,
    and its post-action state equals the input plan's -- which satisfies
    the constraint since the input plan is valid.
    """
    plan.check_valid(problem)
    accumulated = zero_vector(problem.n)
    state = zero_vector(problem.n)
    actions: list[Vector] = []
    for t in range(problem.horizon + 1):
        accumulated = add_vectors(accumulated, plan.actions[t])
        state = add_vectors(state, problem.arrivals[t])
        if problem.is_full(state) or t == problem.horizon:
            actions.append(accumulated)
            state = sub_vectors(state, accumulated)
            accumulated = zero_vector(problem.n)
        else:
            actions.append(zero_vector(problem.n))
    lazy = Plan(actions)
    lazy.check_valid(problem)
    return lazy


def make_lgm_plan(plan: Plan, problem: ProblemInstance) -> Plan:
    """``MakeLGMPlan`` (Section 3.2): derive an LGM plan from any valid plan.

    At every time step where the LGM plan's pre-action state is full, it
    empties exactly those delta tables whose backlog under the LGM plan
    strictly exceeds the input plan's post-action backlog at the same time,
    then minimizes the action.  The comparison against the input plan's
    trajectory is the source of the degree-2 bound in Theorem 1's bipartite
    charging argument.
    """
    plan.check_valid(problem)
    reference_posts = plan.post_action_states(problem)
    state = zero_vector(problem.n)
    actions: list[Vector] = []
    for t in range(problem.horizon + 1):
        state = add_vectors(state, problem.arrivals[t])
        if t == problem.horizon:
            actions.append(state)  # final refresh empties everything
            state = zero_vector(problem.n)
            continue
        if not problem.is_full(state):
            actions.append(zero_vector(problem.n))
            continue
        # Empty each table whose LGM backlog exceeds the reference plan's
        # post-action backlog; by the argument in Lemma 2 the resulting
        # post-action state is dominated by the reference plan's, hence
        # satisfies the constraint.
        tentative = tuple(
            state[i] if state[i] > reference_posts[t][i] else 0
            for i in range(problem.n)
        )
        actions.append(minimize_action(tentative, state, problem))
        state = sub_vectors(state, actions[-1])
    lgm = Plan(actions)
    lgm.check_valid(problem)
    return lgm
