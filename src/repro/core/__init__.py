"""Core algorithms from the paper: plans, cost functions, and schedulers.

This subpackage is self-contained: it depends only on the Python standard
library and numpy, and implements the paper's formal model (Section 2), the
plan-space reductions (Section 3), and all four maintenance strategies
evaluated in Section 5:

* :class:`~repro.core.naive.NaivePolicy` -- the symmetric baseline,
* :func:`~repro.core.astar.find_optimal_lgm_plan` -- A* search for the
  optimal LGM plan (Section 4.1),
* :class:`~repro.core.adapt.AdaptPolicy` -- plan adaptation for unknown
  refresh times (Section 4.2),
* :class:`~repro.core.online.OnlinePolicy` -- the online heuristic
  (Section 4.3).
"""

from repro.core.costfuncs import (
    BlockIOCost,
    ConcaveCost,
    CostFunction,
    LinearCost,
    PiecewiseLinearCost,
    StepCost,
    TabulatedCost,
    fit_linear,
    max_batch_under,
)
from repro.core.problem import ProblemInstance
from repro.core.plan import Plan, PlanTrace
from repro.core.actions import enumerate_greedy_minimal_actions, minimize_action
from repro.core.transforms import make_lazy_plan, make_lgm_plan
from repro.core.astar import AStarResult, find_optimal_lgm_plan
from repro.core.exhaustive import find_optimal_plan_exhaustive
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy, TimeToFullEstimator
from repro.core.adapt import AdaptPolicy, adapt_plan
from repro.core.receding import RecedingHorizonPolicy, project_arrivals
from repro.core.simulator import execute_plan, simulate_policy

__all__ = [
    "AStarResult",
    "AdaptPolicy",
    "BlockIOCost",
    "ConcaveCost",
    "CostFunction",
    "LinearCost",
    "NaivePolicy",
    "OnlinePolicy",
    "PiecewiseLinearCost",
    "Plan",
    "PlanTrace",
    "ProblemInstance",
    "RecedingHorizonPolicy",
    "StepCost",
    "TabulatedCost",
    "TimeToFullEstimator",
    "adapt_plan",
    "enumerate_greedy_minimal_actions",
    "execute_plan",
    "find_optimal_lgm_plan",
    "find_optimal_plan_exhaustive",
    "fit_linear",
    "make_lazy_plan",
    "make_lgm_plan",
    "max_batch_under",
    "minimize_action",
    "project_arrivals",
    "simulate_policy",
]
