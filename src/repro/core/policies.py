"""Online maintenance policy protocol.

A *policy* decides, at each time step, how much of each delta table to
process -- without access to future arrivals.  This is the runtime contract
between the simulator (:mod:`repro.core.simulator`), the live view
maintainer (:mod:`repro.ivm.maintainer`), and the paper's strategies:

* :class:`~repro.core.naive.NaivePolicy` (symmetric baseline),
* :class:`~repro.core.adapt.AdaptPolicy` (precomputed plan, Section 4.2),
* :class:`~repro.core.online.OnlinePolicy` (heuristic, Section 4.3).

Policies are deliberately blinded: ``decide`` receives only the current
time, the current pre-action state, and the static problem parameters
(cost functions and constraint) bound at :meth:`Policy.reset`.  Anything a
policy wants to know about the arrival process it must learn through
:meth:`Policy.observe`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.costfuncs import CostFunction
from repro.core.problem import Vector


class PolicyError(RuntimeError):
    """Raised when a policy emits an action that violates Definition 1."""


class Policy(ABC):
    """Base class for online batch-maintenance scheduling policies."""

    def reset(
        self,
        cost_functions: Sequence[CostFunction],
        limit: float,
    ) -> None:
        """Bind the policy to an instance's static parameters.

        Called once before the first time step and again whenever the view
        is refreshed and accounting restarts.  Subclasses overriding this
        must call ``super().reset(...)``.
        """
        self.cost_functions = tuple(cost_functions)
        self.limit = float(limit)

    @property
    def n(self) -> int:
        """Number of base tables (available after :meth:`reset`)."""
        return len(self.cost_functions)

    def observe(self, t: int, arrivals: Vector) -> None:
        """Notify the policy of the modifications arriving at time ``t``.

        Called before :meth:`decide` at the same step.  Default: ignore.
        Policies that estimate arrival rates (ONLINE) override this.
        """

    @abstractmethod
    def decide(self, t: int, pre_state: Vector) -> Vector:
        """Return the action to take at time ``t`` given pre-state ``s_t``.

        Must return an n-vector ``p`` with ``0 <= p <= pre_state`` whose
        post-action state satisfies the response-time constraint.  Returning
        the zero vector is legal whenever ``pre_state`` is not full.
        """

    def refresh_cost(self, state: Vector) -> float:
        """``f(s)`` under the bound cost functions (helper for subclasses)."""
        return sum(f(k) for f, k in zip(self.cost_functions, state, strict=True))

    def is_full(self, state: Vector) -> bool:
        """Whether ``state`` violates the response-time constraint."""
        return self.refresh_cost(state) > self.limit + 1e-9

    def record_action(self, t: int, action: Vector, cost: float) -> None:
        """Notify the policy its action was executed at cost ``cost``.

        The simulator calls this after applying each step's action
        (including the forced final refresh).  Default: ignore.  ONLINE
        uses it to maintain the running cost ``F_t``.
        """


class ReplayPolicy(Policy):
    """Replays a precomputed action sequence through the policy interface.

    Lets precomputed plans (OPT_LGM from the A* search) run on the same
    runtime as the online strategies -- in particular against the *live*
    view maintainer for the Figure 5 simulation-validation experiment.
    Actions are clamped to the available backlog, which is a no-op when the
    live arrivals match the arrivals the plan was computed for.
    """

    def __init__(self, actions):
        self.actions = [tuple(int(x) for x in a) for a in actions]

    def decide(self, t: int, pre_state: Vector) -> Vector:
        if not 0 <= t < len(self.actions):
            raise PolicyError(
                f"ReplayPolicy has no action for t={t} "
                f"(plan covers 0..{len(self.actions) - 1})"
            )
        scheduled = self.actions[t]
        return tuple(min(p, s) for p, s in zip(scheduled, pre_state))

    def __repr__(self) -> str:
        return f"ReplayPolicy(T={len(self.actions) - 1})"
