"""Maintenance plans and execution traces (Definitions 1-3 of the paper).

A plan is a sequence of actions ``p_0 .. p_T``, one n-vector per time step;
``p_t[i]`` says how many of the oldest modifications to remove from delta
table ``dR_i`` and propagate into the view at time ``t``.  This module
implements:

* :class:`Plan` -- an immutable action sequence with validity checking
  (Definition 1) and the Lazy / Greedy / Minimal structural predicates
  (Definitions 2 and 3);
* :class:`PlanTrace` -- the result of executing a plan or an online policy
  against a problem instance: per-step states, per-action costs, and
  summary statistics used by every experiment driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.problem import (
    ProblemInstance,
    Vector,
    add_vectors,
    is_nonnegative,
    sub_vectors,
    zero_vector,
)


class Plan:
    """An immutable maintenance plan ``p_0 .. p_T``.

    Plans are ordinary values: they can be compared, hashed, sliced, and
    re-validated against any compatible problem instance.
    """

    def __init__(self, actions: Sequence[Sequence[int]]):
        if not actions:
            raise ValueError("a plan must cover at least time step 0")
        cleaned = []
        width = None
        for t, a in enumerate(actions):
            a = tuple(int(x) for x in a)
            if width is None:
                width = len(a)
            elif len(a) != width:
                raise ValueError(
                    f"action at t={t} has {len(a)} components, expected {width}"
                )
            if not is_nonnegative(a):
                raise ValueError(f"action at t={t} has negative components")
            cleaned.append(a)
        self.actions: tuple[Vector, ...] = tuple(cleaned)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.actions)

    def __getitem__(self, t: int) -> Vector:
        return self.actions[t]

    def __iter__(self) -> Iterator[Vector]:
        return iter(self.actions)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Plan) and self.actions == other.actions

    def __hash__(self) -> int:
        return hash(self.actions)

    def __repr__(self) -> str:
        nonzero = sum(1 for a in self.actions if any(a))
        return f"Plan(T={len(self.actions) - 1}, actions={nonzero})"

    @property
    def horizon(self) -> int:
        """The refresh time ``T`` covered by this plan."""
        return len(self.actions) - 1

    @property
    def n(self) -> int:
        """Number of base tables the plan addresses."""
        return len(self.actions[0])

    # -- bookkeeping over a problem instance --------------------------------

    def pre_action_states(self, problem: ProblemInstance) -> list[Vector]:
        """Pre-action state ``s_t`` at every time step under this plan."""
        self._check_shape(problem)
        states = []
        state = zero_vector(problem.n)
        for t in range(len(self.actions)):
            state = add_vectors(state, problem.arrivals[t])
            states.append(state)
            state = sub_vectors(state, self.actions[t])
        return states

    def post_action_states(self, problem: ProblemInstance) -> list[Vector]:
        """Post-action state ``s_{t+}`` at every time step under this plan."""
        return [
            sub_vectors(s, a)
            for s, a in zip(self.pre_action_states(problem), self.actions)
        ]

    def cost(self, problem: ProblemInstance) -> float:
        """Total maintenance cost ``f(P) = sum_t f(p_t)``."""
        self._check_shape(problem)
        return sum(problem.refresh_cost(a) for a in self.actions)

    def action_count(self, i: int) -> int:
        """``|P(i)|``: number of actions touching base table ``i``.

        For linear costs ``f_i = a_i k + b_i`` this is the decisive plan
        statistic (Section 3.3): total cost = ``sum_i a_i K_i + b_i |P(i)|``.
        """
        return sum(1 for a in self.actions if a[i] > 0)

    # -- validity (Definition 1) ---------------------------------------------

    def check_valid(self, problem: ProblemInstance) -> None:
        """Raise ``ValueError`` with a diagnostic if the plan is invalid."""
        self._check_shape(problem)
        state = zero_vector(problem.n)
        for t, action in enumerate(self.actions):
            state = add_vectors(state, problem.arrivals[t])
            post = sub_vectors(state, action)
            if not is_nonnegative(post):
                raise ValueError(
                    f"t={t}: action {action} removes more than accumulated {state}"
                )
            if t < self.horizon and problem.is_full(post):
                raise ValueError(
                    f"t={t}: post-action state {post} is full "
                    f"(refresh cost {problem.refresh_cost(post):.4g} > "
                    f"C={problem.limit:.4g})"
                )
            if t == self.horizon and any(post):
                raise ValueError(
                    f"t=T={t}: final action must empty all delta tables, "
                    f"residual state {post}"
                )
            state = post

    def is_valid(self, problem: ProblemInstance) -> bool:
        """True when the plan satisfies Definition 1 for ``problem``."""
        try:
            self.check_valid(problem)
        except ValueError:
            return False
        return True

    # -- structural predicates (Definitions 2, 3) ----------------------------

    def is_lazy(self, problem: ProblemInstance) -> bool:
        """True when every non-zero action before ``T`` fires on a full state."""
        pre = self.pre_action_states(problem)
        for t in range(self.horizon):  # p_T is exempt
            if any(self.actions[t]) and not problem.is_full(pre[t]):
                return False
        return True

    def is_greedy(self, problem: ProblemInstance) -> bool:
        """True when every action empties-or-ignores each delta table."""
        pre = self.pre_action_states(problem)
        for t, action in enumerate(self.actions):
            for i in range(problem.n):
                if action[i] not in (0, pre[t][i]):
                    return False
        return True

    def is_minimal(self, problem: ProblemInstance) -> bool:
        """True when no pre-``T`` action could drop a component and stay valid."""
        pre = self.pre_action_states(problem)
        for t in range(self.horizon):
            action = self.actions[t]
            if not any(action):
                continue
            post = sub_vectors(pre[t], action)
            for i in range(problem.n):
                if action[i] == 0:
                    continue
                # Restoring component i must overflow the constraint;
                # otherwise the action was not minimal.
                restored = list(post)
                restored[i] += action[i]
                if not problem.is_full(tuple(restored)):
                    return False
        return True

    def is_lgm(self, problem: ProblemInstance) -> bool:
        """True when the plan is simultaneously Lazy, Greedy, and Minimal."""
        return (
            self.is_lazy(problem)
            and self.is_greedy(problem)
            and self.is_minimal(problem)
        )

    # -- helpers -------------------------------------------------------------

    def _check_shape(self, problem: ProblemInstance) -> None:
        if self.n != problem.n:
            raise ValueError(
                f"plan is over {self.n} tables but problem has {problem.n}"
            )
        if len(self.actions) != problem.horizon + 1:
            raise ValueError(
                f"plan covers {len(self.actions)} steps but problem horizon "
                f"is T={problem.horizon}"
            )


@dataclass
class PlanTrace:
    """The record of executing a plan (or online policy) on an instance.

    Produced by :func:`repro.core.simulator.execute_plan` and
    :func:`repro.core.simulator.simulate_policy`, and consumed by every
    experiment driver and benchmark.
    """

    plan: Plan
    total_cost: float
    action_costs: tuple[float, ...]
    pre_states: tuple[Vector, ...]
    post_states: tuple[Vector, ...]
    peak_refresh_cost: float
    metadata: dict = field(default_factory=dict)

    @property
    def horizon(self) -> int:
        """The refresh time covered by the trace."""
        return self.plan.horizon

    @property
    def action_count(self) -> int:
        """Number of non-zero actions taken."""
        return sum(1 for a in self.plan.actions if any(a))

    def cost_per_modification(self) -> float:
        """Average maintenance cost per arrived modification.

        The metric used in the paper's introduction example (0.97 ms vs
        0.42 ms per modification).
        """
        total_mods = sum(sum(a) for a in self.plan.actions)
        if total_mods == 0:
            return 0.0
        return self.total_cost / total_mods

    def summary(self) -> dict:
        """A compact dict of headline statistics, for reports and tests."""
        return {
            "total_cost": self.total_cost,
            "actions": self.action_count,
            "horizon": self.horizon,
            "peak_refresh_cost": self.peak_refresh_cost,
            "cost_per_modification": self.cost_per_modification(),
        }
