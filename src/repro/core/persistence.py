"""Plan and cost-function persistence.

Section 4.2's ADAPT strategy precomputes an optimal LGM plan for an
estimated horizon and replays it at runtime; the paper notes "the cost of
precomputing and remembering the plan can be expensive".  This module is
the *remembering* half: plans, traces, and calibrated cost functions
serialize to plain JSON so a plan computed offline (possibly on a beefier
machine) can be shipped to the maintenance runtime.

Only the cost-function families with value semantics round-trip
(:class:`LinearCost`, :class:`TabulatedCost`, :class:`BlockIOCost`,
:class:`ConcaveCost`); exotic callables must be re-measured at load time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.costfuncs import (
    BlockIOCost,
    ConcaveCost,
    CostFunction,
    LinearCost,
    TabulatedCost,
)
from repro.core.plan import Plan


def plan_to_dict(plan: Plan) -> dict[str, Any]:
    """A JSON-ready representation of a plan."""
    return {
        "format": "repro-plan-v1",
        "horizon": plan.horizon,
        "tables": plan.n,
        "actions": [list(a) for a in plan.actions],
    }


def plan_from_dict(data: dict[str, Any]) -> Plan:
    """Reconstruct a plan; validates shape and format."""
    if data.get("format") != "repro-plan-v1":
        raise ValueError(f"not a repro plan: format={data.get('format')!r}")
    plan = Plan(data["actions"])
    if plan.horizon != data["horizon"] or plan.n != data["tables"]:
        raise ValueError(
            "plan body does not match its declared shape "
            f"(T={data['horizon']}, n={data['tables']})"
        )
    return plan


def save_plan(plan: Plan, path: str | Path) -> None:
    """Write a plan as JSON."""
    Path(path).write_text(json.dumps(plan_to_dict(plan)))


def load_plan(path: str | Path) -> Plan:
    """Read a plan written by :func:`save_plan`."""
    return plan_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Cost functions
# ----------------------------------------------------------------------


def cost_function_to_dict(f: CostFunction) -> dict[str, Any]:
    """A JSON-ready representation of a serializable cost function."""
    if isinstance(f, LinearCost):
        return {"kind": "linear", "slope": f.slope, "setup": f.setup}
    if isinstance(f, TabulatedCost):
        return {"kind": "tabulated", "samples": [list(s) for s in f.samples]}
    if isinstance(f, BlockIOCost):
        return {
            "kind": "block-io",
            "io_cost": f.io_cost,
            "block_size": f.block_size,
            "slope": f.slope,
        }
    if isinstance(f, ConcaveCost):
        return {"kind": "concave", "coeff": f.coeff, "exponent": f.exponent}
    raise TypeError(f"{type(f).__name__} is not serializable")


def cost_function_from_dict(data: dict[str, Any]) -> CostFunction:
    """Reconstruct a cost function from :func:`cost_function_to_dict`."""
    kind = data.get("kind")
    if kind == "linear":
        return LinearCost(slope=data["slope"], setup=data["setup"])
    if kind == "tabulated":
        return TabulatedCost([tuple(s) for s in data["samples"]])
    if kind == "block-io":
        return BlockIOCost(
            io_cost=data["io_cost"],
            block_size=data["block_size"],
            slope=data["slope"],
        )
    if kind == "concave":
        return ConcaveCost(coeff=data["coeff"], exponent=data["exponent"])
    raise ValueError(f"unknown cost-function kind {kind!r}")


def save_cost_functions(
    functions: dict[str, CostFunction], path: str | Path
) -> None:
    """Persist a named set of calibrated cost functions."""
    payload = {
        "format": "repro-costs-v1",
        "functions": {
            name: cost_function_to_dict(f) for name, f in functions.items()
        },
    }
    Path(path).write_text(json.dumps(payload))


def load_cost_functions(path: str | Path) -> dict[str, CostFunction]:
    """Read cost functions written by :func:`save_cost_functions`."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != "repro-costs-v1":
        raise ValueError(
            f"not a repro cost-function file: format={data.get('format')!r}"
        )
    return {
        name: cost_function_from_dict(body)
        for name, body in data["functions"].items()
    }
