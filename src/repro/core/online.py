"""The ONLINE heuristic policy (Section 4.3 of the paper).

ONLINE needs no advance knowledge of the arrival sequence or the refresh
time.  When the response-time constraint is violated at time ``t`` with
pre-action state ``s_t``, it chooses among the greedy, minimal, valid
actions the one minimizing the amortized-cost figure of merit

    H(q) = (F_t + f(q)) / (t + TimeToFull(s_t - q))

where ``F_t`` is the maintenance cost already paid since the last refresh
and ``TimeToFull(s)`` predicts how many further time steps of arrivals it
takes to make state ``s`` full again.  Minimizing ``H`` greedily minimizes
the running average cost per unit time.

``TimeToFull`` requires an arrival-rate estimate; the paper maintains a
per-table recent-rate vector.  :class:`TimeToFullEstimator` implements
three estimators:

* ``"ewma"`` (default) -- exponentially weighted moving average of observed
  per-step arrivals, the practical choice;
* ``"window"`` -- plain moving average over a fixed window;
* ``"fixed"`` -- externally supplied constant rates (an oracle given the
  true process mean; used by the estimator-quality ablation to explain the
  ONLINE gap on unstable streams in Figure 7).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro import obs
from repro.obs import decisions
from repro.core.actions import enumerate_greedy_minimal_actions
from repro.core.costfuncs import CostFunction
from repro.core.policies import Policy
from repro.core.problem import ProblemInstance, Vector, zero_vector

_HORIZON_CAP = 1 << 22  # "never" for TimeToFull purposes


class TimeToFullEstimator:
    """Predicts how long until incoming modifications make a state full.

    Parameters
    ----------
    mode:
        ``"ewma"``, ``"window"``, or ``"fixed"`` (see module docstring).
    alpha:
        EWMA smoothing factor (only for ``mode="ewma"``).
    window:
        Window length in steps (only for ``mode="window"``).
    fixed_rates:
        Constant per-table rates (required for ``mode="fixed"``).
    """

    def __init__(
        self,
        mode: str = "ewma",
        alpha: float = 0.2,
        window: int = 20,
        fixed_rates: Sequence[float] | None = None,
    ):
        if mode not in ("ewma", "window", "fixed"):
            raise ValueError(f"unknown TimeToFull mode {mode!r}")
        if mode == "fixed" and fixed_rates is None:
            raise ValueError("mode='fixed' requires fixed_rates")
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.mode = mode
        self.alpha = alpha
        self.window = window
        self._fixed = tuple(float(r) for r in fixed_rates) if fixed_rates else None
        self._rates: list[float] | None = None
        self._history: deque[Vector] = deque(maxlen=window)

    def reset(self, n: int) -> None:
        """Forget learned rates (new instance or post-refresh restart)."""
        if self.mode == "fixed":
            if self._fixed is None or len(self._fixed) != n:
                raise ValueError(
                    f"fixed_rates has wrong width for n={n}: {self._fixed!r}"
                )
            self._rates = list(self._fixed)
        else:
            self._rates = None
        self._history.clear()

    def observe(self, arrivals: Vector) -> None:
        """Fold one step's arrivals into the rate estimate."""
        if self.mode == "fixed":
            return
        if self.mode == "window":
            self._history.append(arrivals)
            n = len(arrivals)
            self._rates = [
                sum(d[i] for d in self._history) / len(self._history)
                for i in range(n)
            ]
            return
        # EWMA
        if self._rates is None:
            self._rates = [float(x) for x in arrivals]
        else:
            a = self.alpha
            self._rates = [
                a * x + (1 - a) * r for x, r in zip(arrivals, self._rates)
            ]

    def rates(self) -> tuple[float, ...]:
        """Current per-table arrival-rate estimate."""
        if self._rates is None:
            raise RuntimeError("no observations yet; call observe() first")
        return tuple(self._rates)

    def time_to_full(
        self,
        state: Vector,
        cost_functions: Sequence[CostFunction],
        limit: float,
    ) -> int:
        """Predicted steps until ``state`` plus projected arrivals is full.

        Projects each table forward at its estimated rate and finds, by
        galloping + binary search over the (monotone) projected refresh
        cost, the smallest step count whose projected state exceeds the
        constraint.  Returns a large cap when the projected cost never
        exceeds the limit (e.g. all rates are zero).
        """
        if self._rates is None:
            return _HORIZON_CAP
        rates = self._rates

        def projected_cost(steps: int) -> float:
            return sum(
                f(s + int(r * steps))
                for f, s, r in zip(cost_functions, state, rates)
            )

        if projected_cost(0) > limit:
            return 0
        lo, hi = 0, 1
        while hi < _HORIZON_CAP and projected_cost(hi) <= limit:
            lo, hi = hi, hi * 2
        if hi >= _HORIZON_CAP:
            return _HORIZON_CAP
        # Invariant: projected_cost(lo) <= limit < projected_cost(hi).
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if projected_cost(mid) <= limit:
                lo = mid
            else:
                hi = mid
        return hi

    def __repr__(self) -> str:
        return f"TimeToFullEstimator(mode={self.mode!r})"


class OnlinePolicy(Policy):
    """The paper's online heuristic (Section 4.3).

    Lazy by construction (acts only on full states), chooses greedy minimal
    valid actions, minimizes the amortized cost measure ``H``.  Requires no
    precomputation; bookkeeping is the running cost ``F_t`` plus the
    estimator state.
    """

    def __init__(self, estimator: TimeToFullEstimator | None = None):
        self.estimator = estimator or TimeToFullEstimator()
        self._spent = 0.0

    def reset(self, cost_functions, limit) -> None:
        super().reset(cost_functions, limit)
        self.estimator.reset(len(self.cost_functions))
        self._spent = 0.0

    def observe(self, t: int, arrivals: Vector) -> None:
        self.estimator.observe(arrivals)

    def record_action(self, t: int, action: Vector, cost: float) -> None:
        self._spent += cost

    @property
    def spent(self) -> float:
        """``F_t``: total maintenance cost paid since the last reset."""
        return self._spent

    def decide(self, t: int, pre_state: Vector) -> Vector:
        tracing = decisions.active()
        if not self.is_full(pre_state):
            action = zero_vector(self.n)
            if tracing:
                cost = self.refresh_cost(pre_state)
                decisions.emit_policy_decision(
                    "ONLINE",
                    t,
                    pre_state,
                    self.cost_functions,
                    self.limit,
                    chosen=action,
                    rationale=(
                        f"f(s)={cost:.3f} <= C={self.limit:.3f} "
                        "-> defer (lazy)"
                    ),
                )
            return action
        # Score every greedy minimal valid action by amortized cost H.
        problem_view = _StaticView(self.cost_functions, self.limit, self.n)
        best_action: Vector | None = None
        best_score = float("inf")
        best_cost = float("inf")
        scored = 0
        candidates: list[decisions.CandidateAction] = []
        for action in enumerate_greedy_minimal_actions(pre_state, problem_view):
            scored += 1
            cost = self.refresh_cost(action)
            post = tuple(s - a for s, a in zip(pre_state, action))
            horizon = self.estimator.time_to_full(
                post, self.cost_functions, self.limit
            )
            denom = t + horizon
            score = (self._spent + cost) / max(denom, 1e-9)
            if tracing:
                candidates.append(
                    decisions.CandidateAction(
                        tuple(action), cost, score=score,
                        note=f"time_to_full={horizon}",
                    )
                )
            if score < best_score - 1e-12 or (
                abs(score - best_score) <= 1e-12 and cost < best_cost
            ):
                best_action, best_score, best_cost = action, score, cost
        if best_action is None:
            raise RuntimeError(
                f"no greedy minimal valid action for full state {pre_state}"
            )
        if tracing:
            decisions.emit_policy_decision(
                "ONLINE",
                t,
                pre_state,
                self.cost_functions,
                self.limit,
                chosen=best_action,
                candidates=tuple(candidates),
                rationale=(
                    f"min H over {scored} candidate(s): "
                    f"H={best_score:.6f} with f(q)={best_cost:.3f} "
                    f"(spent F_t={self._spent:.3f})"
                ),
            )
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("online.decisions")
            recorder.counter("online.candidates_scored", scored)
            predicted = self.estimator.time_to_full(
                tuple(s - a for s, a in zip(pre_state, best_action)),
                self.cost_functions, self.limit,
            )
            recorder.observe("online.predicted_time_to_full", predicted)
            # TimeToFull *is* a predicted steps-until-the-margin-hits-zero
            # estimate, so surface it in the SLO family too.
            recorder.observe("slo.predicted_steps_to_breach", predicted)
        return best_action

    def __repr__(self) -> str:
        return f"OnlinePolicy(estimator={self.estimator!r})"


class _StaticView:
    """Duck-typed stand-in for :class:`ProblemInstance` used by the action
    enumerator: exposes only cost functions, the limit, ``n`` and
    fullness -- never arrivals, preserving the policy's blindness to the
    future."""

    def __init__(self, cost_functions, limit, n):
        self.cost_functions = cost_functions
        self.limit = limit
        self.n = n

    def refresh_cost(self, state: Vector) -> float:
        return sum(f(k) for f, k in zip(self.cost_functions, state, strict=True))

    def is_full(self, state: Vector) -> bool:
        return self.refresh_cost(state) > self.limit + 1e-9


def make_oracle_online_policy(problem: ProblemInstance) -> OnlinePolicy:
    """ONLINE with a rate oracle: fixed rates equal to the true mean rates.

    Used by the estimator-quality ablation to separate the heuristic's
    intrinsic gap from the error introduced by rate estimation.
    """
    total = problem.total_arrivals()
    steps = problem.horizon + 1
    rates = [k / steps for k in total]
    estimator = TimeToFullEstimator(mode="fixed", fixed_rates=rates)
    return OnlinePolicy(estimator=estimator)
