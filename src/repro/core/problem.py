"""The batch view-maintenance problem instance (Section 2 of the paper).

A :class:`ProblemInstance` bundles everything Section 2's problem statement
fixes in advance:

* ``n`` base tables with cost functions ``f_1..f_n``,
* a modification arrival sequence ``d_0..d_T`` (one n-vector per discrete
  time step; component ``i`` counts modifications to base table ``R_i``
  arriving at that step),
* the response-time constraint ``C``.

States and actions are plain tuples of non-negative ints, indexed by base
table.  The *pre-action* state at time ``t`` is the delta-table sizes after
the arrivals ``d_t`` land; the *post-action* state subtracts the action
taken at ``t``.  A state is **full** when its refresh cost exceeds ``C``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.costfuncs import CostFunction, check_cost_function

Vector = tuple[int, ...]


def zero_vector(n: int) -> Vector:
    """The all-zeros n-vector."""
    return (0,) * n


def add_vectors(a: Vector, b: Vector) -> Vector:
    """Componentwise sum of two n-vectors."""
    return tuple(x + y for x, y in zip(a, b, strict=True))


def sub_vectors(a: Vector, b: Vector) -> Vector:
    """Componentwise difference ``a - b`` of two n-vectors."""
    return tuple(x - y for x, y in zip(a, b, strict=True))


def is_nonnegative(v: Vector) -> bool:
    """True when every component of ``v`` is >= 0."""
    return all(x >= 0 for x in v)


class ProblemInstance:
    """An instance of the batch incremental maintenance problem.

    Parameters
    ----------
    cost_functions:
        One monotone subadditive :class:`CostFunction` per base table.
    limit:
        The response-time constraint ``C >= 0``: every post-action state
        must have refresh cost at most ``C``.
    arrivals:
        The modification arrival sequence ``d_0 .. d_T``.  Length ``T + 1``
        where ``T`` is the refresh time.  Each element is an n-vector of
        non-negative modification counts.
    validate:
        When true, empirically check monotonicity and subadditivity of each
        cost function over a small sample range.  Disable for expensive
        tabulated functions that were validated at calibration time.

    Notes
    -----
    The instance is immutable; planners treat it as a value.  All heavy
    per-instance precomputation (cumulative and suffix arrival totals, the
    A* heuristic's per-table batch bounds) is cached lazily.
    """

    def __init__(
        self,
        cost_functions: Sequence[CostFunction],
        limit: float,
        arrivals: Sequence[Sequence[int]],
        validate: bool = False,
    ):
        if not cost_functions:
            raise ValueError("need at least one base table")
        if limit < 0:
            raise ValueError(f"response-time constraint must be >= 0, got {limit}")
        if not arrivals:
            raise ValueError("arrival sequence must cover at least time step 0")
        self.cost_functions: tuple[CostFunction, ...] = tuple(cost_functions)
        self.limit = float(limit)
        n = len(self.cost_functions)
        cleaned: list[Vector] = []
        for t, d in enumerate(arrivals):
            d = tuple(int(x) for x in d)
            if len(d) != n:
                raise ValueError(
                    f"arrival vector at t={t} has {len(d)} components, expected {n}"
                )
            if not is_nonnegative(d):
                raise ValueError(f"arrival vector at t={t} has negative components")
            cleaned.append(d)
        self.arrivals: tuple[Vector, ...] = tuple(cleaned)
        if validate:
            for f in self.cost_functions:
                check_cost_function(f)
        self._suffix_totals: list[Vector] | None = None
        self._prefix_totals: list[Vector] | None = None
        self._batch_bounds: Vector | None = None
        self._min_rates: tuple[float, ...] | None = None
        # Value caches for the planners' hot loops.  Cost functions are
        # pure, so caching changes which calls happen, never any value:
        # a memoized result is the bit-identical float the call would
        # have produced.  ``_cost_memo`` maps state -> f(state);
        # ``_component_memos[i]`` maps k -> f_i(k); ``_action_memo`` maps
        # a full state -> its greedy-minimal-action tuple (filled by
        # :func:`repro.core.actions.cached_greedy_minimal_actions`).
        self._cost_memo: dict[Vector, float] = {}
        self._component_memos: tuple[dict[int, float], ...] = tuple(
            {} for __ in self.cost_functions
        )
        self._action_memo: dict[Vector, tuple[Vector, ...]] = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of base tables."""
        return len(self.cost_functions)

    @property
    def horizon(self) -> int:
        """The refresh time ``T`` (arrivals cover ``0..T``)."""
        return len(self.arrivals) - 1

    def total_arrivals(self) -> Vector:
        """Total modifications per table over the whole period."""
        total = zero_vector(self.n)
        for d in self.arrivals:
            total = add_vectors(total, d)
        return total

    # ------------------------------------------------------------------
    # Cost / fullness
    # ------------------------------------------------------------------

    def refresh_cost(self, state: Vector) -> float:
        """``f(s) = sum_i f_i(s[i])`` -- cost of refreshing the view now.

        Memoized per state (and per component): planners probe the same
        states and batch sizes over and over, and tabulated cost functions
        pay a bisect per call.  Summation stays left-to-right over the
        component values, so the cached total is bit-identical to the
        uncached expression.
        """
        cached = self._cost_memo.get(state)
        if cached is not None:
            return cached
        total = 0
        for f, memo, k in zip(
            self.cost_functions, self._component_memos, state, strict=True
        ):
            c = memo.get(k)
            if c is None:
                c = memo[k] = f(k)
            total = total + c
        self._cost_memo[state] = total
        return total

    def is_full(self, state: Vector) -> bool:
        """True when the refresh cost of ``state`` exceeds the constraint."""
        return self.refresh_cost(state) > self.limit + 1e-9

    # ------------------------------------------------------------------
    # Derived arrival statistics
    # ------------------------------------------------------------------

    def suffix_totals(self) -> list[Vector]:
        """``suffix_totals()[t][i]`` = modifications to R_i arriving in (t, T].

        Used by the A* heuristic: ``K_i`` for a node with timestamp ``t`` is
        exactly ``suffix_totals()[t][i]``.  Index ``t`` ranges over ``-1..T``
        (shifted by one: entry 0 corresponds to ``t = -1``), but to keep
        call sites simple the returned list has ``T + 2`` entries and is
        indexed via :meth:`future_arrivals`.
        """
        if self._suffix_totals is None:
            totals: list[Vector] = [zero_vector(self.n)] * (self.horizon + 2)
            acc = zero_vector(self.n)
            for t in range(self.horizon, -1, -1):
                acc = add_vectors(acc, self.arrivals[t])
                totals[t] = acc
            totals[self.horizon + 1] = zero_vector(self.n)
            self._suffix_totals = totals
        return self._suffix_totals

    def prefix_totals(self) -> list[Vector]:
        """``prefix_totals()[t + 1][i]`` = modifications to R_i in ``[0, t]``.

        Entry 0 is the zero vector (nothing has arrived before time 0), so
        the arrivals in the half-open window ``(t1, t2]`` are exactly
        ``prefix_totals()[t2 + 1] - prefix_totals()[t1 + 1]`` -- all integer
        arithmetic, hence exact.  This is what lets the A* expansion locate
        the first full time step by binary search instead of re-summing
        arrivals along every edge.
        """
        if self._prefix_totals is None:
            totals = [zero_vector(self.n)]
            acc = totals[0]
            for d in self.arrivals:
                acc = add_vectors(acc, d)
                totals.append(acc)
            self._prefix_totals = totals
        return self._prefix_totals

    def state_at(self, t1: int, state: Vector, t2: int) -> Vector:
        """The pre-action state at ``t2`` reached from post-action ``state``
        at ``t1`` with no action in between: ``state`` plus all arrivals in
        ``(t1, t2]``."""
        prefix = self.prefix_totals()
        upto, since = prefix[t2 + 1], prefix[t1 + 1]
        return tuple(
            s + a - b for s, a, b in zip(state, upto, since, strict=True)
        )

    def future_arrivals(self, t: int) -> Vector:
        """Total modifications per table arriving strictly after time ``t``."""
        idx = t + 1
        if idx < 0:
            idx = 0
        if idx > self.horizon + 1:
            idx = self.horizon + 1
        return self.suffix_totals()[idx]

    def max_step_arrival(self, i: int) -> int:
        """``m_i``: the largest single-step arrival count for table ``i``."""
        return max((d[i] for d in self.arrivals), default=0)

    def batch_bounds(self) -> Vector:
        """``b_i = m_i + max{b : f_i(b) <= C}`` per table (A* heuristic).

        ``b_i`` bounds the number of ``R_i`` modifications one action can
        ever need to process: a lazy plan acts as soon as the state is full,
        so the backlog at action time is at most one constraint-sized batch
        plus the single largest arrival burst.
        """
        if self._batch_bounds is None:
            bounds = []
            for i, f in enumerate(self.cost_functions):
                base = f.batch_limit(self.limit)
                bounds.append(max(1, self.max_step_arrival(i) + base))
            self._batch_bounds = tuple(bounds)
        return self._batch_bounds

    def min_batch_rates(self) -> tuple[float, ...]:
        """Per-table ``min_{1 <= k <= b_i} f_i(k) / k``: the cheapest
        possible per-modification processing rate any legal batch achieves.

        Used by the A* heuristic's consistent lower bound: any plan pays at
        least this rate for every remaining modification, and the bound
        decreases by exactly ``rate * q_i <= f_i(q_i)`` across an action,
        which is what makes the heuristic consistent (see
        :mod:`repro.core.astar` for why the paper's floor-based estimate is
        not).  Exact up to batch sizes of 65536; beyond that the rate is
        conservatively set to the best sampled rate including ``b_i``
        itself, or 0 for genuinely unbounded batches.
        """
        if self._min_rates is None:
            rates = []
            for i, f in enumerate(self.cost_functions):
                b = self.batch_bounds()[i]
                if b <= 65536:
                    rate = min(f(k) / k for k in range(1, b + 1))
                else:
                    # The exact minimum could hide between samples; a too-
                    # high rate would make the heuristic inadmissible, so
                    # degrade to no guidance (h = 0) for this table.
                    rate = 0.0
                rates.append(rate)
            self._min_rates = tuple(rates)
        return self._min_rates

    # ------------------------------------------------------------------
    # Instance surgery (used by ADAPT and the experiment drivers)
    # ------------------------------------------------------------------

    def truncated(self, new_horizon: int) -> "ProblemInstance":
        """The same instance with the arrival sequence cut at ``new_horizon``."""
        if not 0 <= new_horizon <= self.horizon:
            raise ValueError(
                f"new horizon {new_horizon} outside [0, {self.horizon}]"
            )
        return ProblemInstance(
            self.cost_functions, self.limit, self.arrivals[: new_horizon + 1]
        )

    def extended_periodic(self, new_horizon: int) -> "ProblemInstance":
        """Extend the arrival sequence periodically up to ``new_horizon``.

        Section 4.2 analyses ADAPT for ``T > T_0`` under the assumption that
        the arrival sequence is periodic with period ``T_0``; this helper
        materializes that assumption.
        """
        if new_horizon < self.horizon:
            raise ValueError("use truncated() to shrink the horizon")
        period = len(self.arrivals)
        arrivals = [self.arrivals[t % period] for t in range(new_horizon + 1)]
        return ProblemInstance(self.cost_functions, self.limit, arrivals)

    def __repr__(self) -> str:
        return (
            f"ProblemInstance(n={self.n}, T={self.horizon}, C={self.limit}, "
            f"total={self.total_arrivals()})"
        )
