"""The NAIVE symmetric baseline (Sections 1 and 5 of the paper).

Traditional deferred view maintenance batches *all* modifications and, when
the response-time constraint is about to be violated, processes *all* of
them together.  It is lazy and greedy, but deliberately not minimal: every
action empties every delta table.  All prior batch-maintenance work the
paper surveys uses this symmetric shape; the paper's contribution is
showing (and exploiting) how much asymmetric plans can beat it.
"""

from __future__ import annotations

from repro.core.policies import Policy
from repro.core.problem import Vector, zero_vector


class NaivePolicy(Policy):
    """Flush every delta table whenever the pre-action state is full."""

    def decide(self, t: int, pre_state: Vector) -> Vector:
        if self.is_full(pre_state):
            return pre_state
        return zero_vector(self.n)

    def __repr__(self) -> str:
        return "NaivePolicy()"
