"""The NAIVE symmetric baseline (Sections 1 and 5 of the paper).

Traditional deferred view maintenance batches *all* modifications and, when
the response-time constraint is about to be violated, processes *all* of
them together.  It is lazy and greedy, but deliberately not minimal: every
action empties every delta table.  All prior batch-maintenance work the
paper surveys uses this symmetric shape; the paper's contribution is
showing (and exploiting) how much asymmetric plans can beat it.
"""

from __future__ import annotations

from repro.core.policies import Policy
from repro.core.problem import Vector, zero_vector
from repro.obs import decisions


class NaivePolicy(Policy):
    """Flush every delta table whenever the pre-action state is full."""

    def decide(self, t: int, pre_state: Vector) -> Vector:
        full = self.is_full(pre_state)
        action = pre_state if full else zero_vector(self.n)
        if decisions.active():
            cost = self.refresh_cost(pre_state)
            op = ">" if full else "<="
            verdict = "flush everything" if full else "defer"
            decisions.emit_policy_decision(
                "NAIVE",
                t,
                pre_state,
                self.cost_functions,
                self.limit,
                chosen=action,
                candidates=(
                    decisions.CandidateAction(
                        zero_vector(self.n), 0.0, note="defer"
                    ),
                    decisions.CandidateAction(
                        tuple(pre_state), cost, note="flush-all"
                    ),
                ),
                rationale=(
                    f"f(s)={cost:.3f} {op} C={self.limit:.3f} -> {verdict}"
                ),
            )
        return action

    def __repr__(self) -> str:
        return "NaivePolicy()"
