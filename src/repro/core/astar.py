"""A* search for the optimal LGM plan (Section 4.1 of the paper).

The space of LGM plans is modeled as a weighted DAG:

* a node is a ``(timestamp, post-action state)`` pair reachable by some
  valid LGM plan; the *source* is ``(-1, 0)`` and the *destination* is
  ``(T, 0)``;
* from a node at time ``t1`` with state ``s``, arrivals accumulate until
  the first time ``t2`` the pre-action state becomes full; each greedy
  minimal valid action ``q`` at ``t2`` is an edge of weight ``f(q)``; if
  the state never becomes full before ``T`` (or becomes full exactly at
  ``T``), the single edge goes to the destination with the cost of the
  final full refresh.

Shortest source-to-destination paths correspond exactly to minimum-cost
LGM plans (Theorem 3).

**Heuristic (deviation from the paper, documented in DESIGN.md).**  The
paper proposes ``h(x) = sum_i floor((s[i] + K_i) / b_i) * f_i(b_i)`` where
``K_i`` counts future arrivals and ``b_i = m_i + max{b : f_i(b) <= C}``
bounds any single action's batch, and claims it is consistent (Lemma 7).
It is not: across an action that moves the remaining total ``M_i = s[i] +
K_i`` over a multiple of ``b_i``, the floor term drops by a full
``f_i(b_i)`` while the action itself may cost far less, violating
``h(x) <= f(q) + h(x')`` (we hit such violations with calibrated TPC-R
cost curves, producing 0.01%-suboptimal answers).  We therefore use the
tightened-but-consistent per-modification-rate bound

    h(x) = sum_i (s[i] + K_i) * r_i,     r_i = min_{1<=k<=b_i} f_i(k) / k

which is admissible (every modification must be processed in some batch of
size at most ``b_i``, paying at least rate ``r_i``) and consistent
(``h(x) - h(x') = sum_i q_i * r_i <= f(q)``).  Consistency makes the first
expansion of every node optimal, so each node is expanded at most once.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

from repro import obs
from repro.obs import decisions
from repro.core.actions import cached_greedy_minimal_actions
from repro.core.plan import Plan
from repro.core.problem import (
    ProblemInstance,
    Vector,
    add_vectors,
    sub_vectors,
    zero_vector,
)

Node = tuple[int, Vector]  # (timestamp, post-action state)


@dataclass
class AStarResult:
    """Outcome of :func:`find_optimal_lgm_plan`.

    ``expanded`` and ``generated`` node counts feed the heuristic-quality
    ablation (A* vs Dijkstra) in ``repro.experiments.ablations``; they are
    also registered as ``astar.expanded`` / ``astar.generated`` counters in
    the :mod:`repro.obs` metrics registry (via :meth:`register_metrics`),
    so any observed run reports search effort uniformly alongside the
    engine and simulator metrics.
    """

    plan: Plan
    cost: float
    expanded: int
    generated: int

    def register_metrics(self) -> None:
        """Fold the search statistics into the active metrics registry."""
        obs.counter("astar.searches")
        obs.counter("astar.expanded", self.expanded)
        obs.counter("astar.generated", self.generated)
        obs.observe("astar.plan_cost", self.cost)


def _heuristic(node: Node, problem: ProblemInstance) -> float:
    """Consistent lower bound on remaining maintenance cost.

    ``sum_i (remaining_i) * min-rate_i`` -- see the module docstring for
    why this replaces the paper's floor-based estimate.
    """
    t, state = node
    future = problem.future_arrivals(t)
    rates = problem.min_batch_rates()
    return sum(
        (s + k) * r for s, k, r in zip(state, future, rates)
    )


def _expand(node: Node, problem: ProblemInstance) -> list[tuple[Node, float]]:
    """Successors of ``node``: ``(successor, edge_weight)`` pairs.

    Implements the edge rule of Section 4.1, including the destination
    special case (the final refresh is exempt from laziness and must
    process everything).

    The first full time step is located by binary search rather than a
    linear walk: the pre-action state grows componentwise with ``t2``
    (arrivals are non-negative) and the cost functions are monotone, so
    fullness is monotone in ``t2`` and the same ``is_full`` predicate that
    the walk would evaluate step by step identifies the boundary.  States
    come from exact integer prefix sums, so every probed state -- and hence
    every edge -- is identical to the linear walk's.
    """
    t1, state = node
    horizon = problem.horizon
    if t1 >= horizon:
        # t1 == horizon with a non-zero state cannot happen: destination
        # nodes are terminal and all other nodes at T are never created.
        return []
    prefix = problem.prefix_totals()
    # base + prefix[t2 + 1] == state + arrivals in (t1, t2]: exact ints.
    base = tuple(s - b for s, b in zip(state, prefix[t1 + 1]))
    refresh_cost = problem.refresh_cost
    full_above = problem.limit + 1e-9  # the is_full threshold, verbatim
    # Smallest t2 in (t1, horizon) whose pre-action state is full, if any.
    first_full = None
    lo, hi = t1 + 1, horizon - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        if refresh_cost(tuple(map(sum, zip(base, prefix[mid + 1])))) > full_above:
            first_full = mid
            hi = mid - 1
        else:
            lo = mid + 1
    if first_full is None:
        # Never full before the refresh time: one edge, flush everything.
        cur = tuple(map(sum, zip(base, prefix[horizon + 1])))
        return [((horizon, zero_vector(problem.n)), problem.refresh_cost(cur))]
    cur = tuple(map(sum, zip(base, prefix[first_full + 1])))
    return [
        ((first_full, sub_vectors(cur, action)), problem.refresh_cost(action))
        for action in cached_greedy_minimal_actions(cur, problem)
    ]


def find_optimal_lgm_plan(problem: ProblemInstance, use_heuristic: bool = True) -> AStarResult:
    """Find a minimum-cost LGM plan via A* (Section 4.1).

    Parameters
    ----------
    problem:
        The instance, with full advance knowledge of arrivals and ``T``.
    use_heuristic:
        When false, run with ``h = 0`` (Dijkstra).  Same optimal answer,
        more node expansions; exposed for the heuristic ablation.

    Returns
    -------
    AStarResult
        The optimal plan, its cost ``OPT_LGM``, and search statistics.

    Raises
    ------
    ValueError
        If no valid LGM plan exists -- i.e. some single time step's
        arrivals already exceed what any greedy minimal action can clear.
        (With subadditive costs this happens only when even emptying every
        delta table leaves a full state, which is impossible since the
        empty state costs 0; so in practice search always succeeds.)
    """
    source: Node = (-1, zero_vector(problem.n))
    destination: Node = (problem.horizon, zero_vector(problem.n))

    heuristic_evals = 0

    def h(node: Node) -> float:
        nonlocal heuristic_evals
        if not use_heuristic:
            return 0.0
        heuristic_evals += 1
        return _heuristic(node, problem)

    counter = itertools.count()  # tie-breaker for heap stability
    g: dict[Node, float] = {source: 0.0}
    parent: dict[Node, Node] = {}
    open_heap: list[tuple[float, int, Node]] = [(h(source), next(counter), source)]
    closed: set[Node] = set()
    expanded = 0
    generated = 1
    heap_peak = 1
    inconsistencies = 0
    started = time.perf_counter()

    with obs.trace(
        "astar.search", horizon=problem.horizon, n=problem.n,
        heuristic=use_heuristic,
    ) as span:
        while open_heap:
            __, __, node = heapq.heappop(open_heap)
            if node in closed:
                continue  # stale heap entry
            if node == destination:
                plan = _reconstruct_plan(parent, destination, problem)
                plan.check_valid(problem)
                result = AStarResult(
                    plan=plan, cost=g[node], expanded=expanded,
                    generated=generated,
                )
                span.set(
                    cost=result.cost, expanded=expanded, generated=generated,
                )
                result.register_metrics()
                if decisions.active():
                    first = next(
                        (a for a in plan.actions if any(a)),
                        zero_vector(problem.n),
                    )
                    flushes = sum(1 for a in plan.actions if any(a))
                    decisions.emit_policy_decision(
                        "OPT_LGM",
                        -1,  # plans the whole horizon before time starts
                        zero_vector(problem.n),
                        problem.cost_functions,
                        problem.limit,
                        chosen=first,
                        rationale=(
                            f"optimal LGM plan: cost={result.cost:.3f} over "
                            f"{flushes} flush(es), expanded={expanded}, "
                            f"generated={generated}"
                        ),
                    )
                obs.counter("astar.heuristic_evals", heuristic_evals)
                obs.counter(
                    "astar.heuristic.inconsistency_detected", inconsistencies
                )
                obs.gauge_max("astar.heap_peak", heap_peak)
                obs.observe(
                    "astar.time_to_solution_ms",
                    (time.perf_counter() - started) * 1e3,
                )
                return result
            closed.add(node)
            expanded += 1
            for successor, weight in _expand(node, problem):
                tentative = g[node] + weight
                if successor in closed:
                    # A consistent heuristic guarantees closed nodes hold
                    # their optimal g; a strictly better path arriving now
                    # is exactly where the paper's floor-based Lemma-7
                    # heuristic misfires (see module docstring).  Counted,
                    # never repaired: the rate heuristic keeps this at 0.
                    if tentative < g[successor] - 1e-12:
                        inconsistencies += 1
                    continue
                if tentative < g.get(successor, float("inf")) - 1e-12:
                    g[successor] = tentative
                    parent[successor] = node
                    heapq.heappush(
                        open_heap,
                        (tentative + h(successor), next(counter), successor),
                    )
                    generated += 1
                    if len(open_heap) > heap_peak:
                        heap_peak = len(open_heap)
    raise ValueError("no valid LGM plan exists for this instance")


def check_heuristic_consistency(
    problem: ProblemInstance, max_nodes: int = 2000
) -> list[tuple[Node, Node, float, float]]:
    """Search for consistency violations ``h(x) > f(q) + h(x')``.

    Explores the LGM plan graph breadth-first (up to ``max_nodes`` nodes)
    and returns every violating edge as ``(node, successor, h(node),
    edge_cost + h(successor))``.  An empty list certifies consistency over
    the explored region.  This is the tool that exposed the paper's
    Lemma 7 heuristic as inconsistent; for the rate-based heuristic used
    by :func:`find_optimal_lgm_plan` it provably returns no violations,
    and a property test re-checks that on randomized instances.
    """
    source: Node = (-1, zero_vector(problem.n))
    violations: list[tuple[Node, Node, float, float]] = []
    seen = {source}
    frontier = [source]
    while frontier and len(seen) < max_nodes:
        next_frontier: list[Node] = []
        for node in frontier:
            h_node = _heuristic(node, problem)
            for successor, weight in _expand(node, problem):
                bound = weight + _heuristic(successor, problem)
                if h_node > bound + 1e-9:
                    violations.append((node, successor, h_node, bound))
                    obs.counter("astar.heuristic.inconsistency_detected")
                if successor not in seen:
                    seen.add(successor)
                    next_frontier.append(successor)
        frontier = next_frontier
    return violations


def _reconstruct_plan(
    parent: dict[Node, Node], destination: Node, problem: ProblemInstance
) -> Plan:
    """Turn the A* parent chain into a concrete :class:`Plan` (Theorem 3)."""
    path: list[Node] = [destination]
    while path[-1] in parent:
        path.append(parent[path[-1]])
    path.reverse()  # source .. destination
    actions = [zero_vector(problem.n)] * (problem.horizon + 1)
    for (t_prev, s_prev), (t_cur, s_cur) in zip(path, path[1:]):
        pre = s_prev
        for t in range(t_prev + 1, t_cur + 1):
            pre = add_vectors(pre, problem.arrivals[t])
        actions[t_cur] = sub_vectors(pre, s_cur)
    return Plan(actions)
