"""Exhaustive optimal-plan oracle over *all* valid plans (not just LGM).

The paper's analytical results compare the best LGM plan against the
globally optimal plan ``OPT`` over the unrestricted plan space.  ``OPT`` is
never computed in the paper (its search space is prohibitive -- the very
motivation for Section 3), but for small synthetic instances we can compute
it exactly by dynamic programming over reachable delta-table states.  This
oracle exists to *verify* the paper's bounds mechanically:

* Theorem 1: ``OPT_LGM <= 2 * OPT`` for monotone subadditive costs;
* Theorem 2: ``OPT_LGM == OPT`` for linear costs;
* Section 3.2 tightness: the :class:`~repro.core.costfuncs.StepCost`
  construction drives ``OPT_LGM / OPT`` arbitrarily close to 2.

Complexity is exponential in both the state space and the per-state action
space, so instances are guarded by ``max_states``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.plan import Plan
from repro.core.problem import (
    ProblemInstance,
    Vector,
    add_vectors,
    sub_vectors,
    zero_vector,
)


@dataclass
class ExhaustiveResult:
    """Outcome of :func:`find_optimal_plan_exhaustive`."""

    plan: Plan
    cost: float
    states_explored: int


def _valid_actions(state: Vector, problem: ProblemInstance) -> list[Vector]:
    """Every action ``p`` with ``0 <= p <= state`` and non-full post-state.

    This is the unrestricted action space of Definition 1 -- not merely
    greedy or minimal actions.  Exponential in ``sum(state)``; callers
    guard instance size.
    """
    ranges = [range(k + 1) for k in state]
    actions = []
    for p in itertools.product(*ranges):
        post = sub_vectors(state, p)
        if not problem.is_full(post):
            actions.append(p)
    return actions


def find_optimal_plan_exhaustive(
    problem: ProblemInstance, max_states: int = 200_000
) -> ExhaustiveResult:
    """Compute the globally optimal valid plan by forward DP.

    The DP key is the post-action state at each time step; the value is the
    cheapest cost of any valid prefix reaching it, plus backpointers for
    plan reconstruction.  At the horizon the plan is forced to flush the
    entire pre-action state (``p_T = s_T``).

    Raises ``MemoryError``-flavoured ``ValueError`` when the reachable
    state count exceeds ``max_states``; this oracle is for small instances
    only.
    """
    # layer: post_state -> (cost, prev_post_state, action)
    layer: dict[Vector, tuple[float, Vector | None, Vector | None]] = {
        zero_vector(problem.n): (0.0, None, None)
    }
    history: list[dict[Vector, tuple[float, Vector | None, Vector | None]]] = []
    states_explored = 0

    for t in range(problem.horizon + 1):
        arrivals = problem.arrivals[t]
        next_layer: dict[Vector, tuple[float, Vector | None, Vector | None]] = {}
        final = t == problem.horizon
        for prev_post, (cost, __, __) in layer.items():
            pre = add_vectors(prev_post, arrivals)
            if final:
                candidate_actions: list[Vector] = [pre]
            else:
                candidate_actions = _valid_actions(pre, problem)
            for action in candidate_actions:
                post = sub_vectors(pre, action)
                new_cost = cost + problem.refresh_cost(action)
                existing = next_layer.get(post)
                if existing is None or new_cost < existing[0] - 1e-12:
                    next_layer[post] = (new_cost, prev_post, action)
            states_explored += len(candidate_actions)
            if states_explored > max_states:
                raise ValueError(
                    f"exhaustive search exceeded max_states={max_states}; "
                    f"instance too large for the oracle"
                )
        history.append(next_layer)
        layer = next_layer

    zero = zero_vector(problem.n)
    if zero not in layer:
        raise ValueError("no valid plan exists for this instance")
    best_cost = layer[zero][0]

    # Reconstruct the action sequence by walking backpointers.
    actions: list[Vector] = []
    post = zero
    for t in range(problem.horizon, -1, -1):
        cost, prev_post, action = history[t][post]
        assert action is not None
        actions.append(action)
        assert prev_post is not None or t == 0
        post = prev_post if prev_post is not None else zero
    actions.reverse()
    plan = Plan(actions)
    plan.check_valid(problem)
    return ExhaustiveResult(plan=plan, cost=best_cost, states_explored=states_explored)


def find_optimal_lazy_plan_exhaustive(
    problem: ProblemInstance, max_states: int = 200_000
) -> ExhaustiveResult:
    """Optimal plan restricted to *lazy* plans (actions only on full states).

    Used by tests of Lemma 1: the optimal lazy cost must equal the
    unrestricted optimum.  Same DP as
    :func:`find_optimal_plan_exhaustive`, but non-full pre-action states
    admit only the zero action.
    """
    layer: dict[Vector, tuple[float, Vector | None, Vector | None]] = {
        zero_vector(problem.n): (0.0, None, None)
    }
    history: list[dict[Vector, tuple[float, Vector | None, Vector | None]]] = []
    states_explored = 0

    for t in range(problem.horizon + 1):
        arrivals = problem.arrivals[t]
        next_layer: dict[Vector, tuple[float, Vector | None, Vector | None]] = {}
        final = t == problem.horizon
        for prev_post, (cost, __, __) in layer.items():
            pre = add_vectors(prev_post, arrivals)
            if final:
                candidate_actions: list[Vector] = [pre]
            elif problem.is_full(pre):
                candidate_actions = [
                    a for a in _valid_actions(pre, problem) if any(a)
                ]
            else:
                candidate_actions = [zero_vector(problem.n)]
            for action in candidate_actions:
                post = sub_vectors(pre, action)
                new_cost = cost + problem.refresh_cost(action)
                existing = next_layer.get(post)
                if existing is None or new_cost < existing[0] - 1e-12:
                    next_layer[post] = (new_cost, prev_post, action)
            states_explored += len(candidate_actions)
            if states_explored > max_states:
                raise ValueError(
                    f"exhaustive lazy search exceeded max_states={max_states}"
                )
        history.append(next_layer)
        layer = next_layer

    zero = zero_vector(problem.n)
    if zero not in layer:
        raise ValueError("no valid lazy plan exists for this instance")
    best_cost = layer[zero][0]
    actions = []
    post = zero
    for t in range(problem.horizon, -1, -1):
        cost, prev_post, action = history[t][post]
        assert action is not None
        actions.append(action)
        post = prev_post if prev_post is not None else zero
    actions.reverse()
    plan = Plan(actions)
    plan.check_valid(problem)
    return ExhaustiveResult(plan=plan, cost=best_cost, states_explored=states_explored)
